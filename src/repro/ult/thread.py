"""User-level thread contexts (Sec. IV-D1).

Each physical core runs a user-level scheduler that executes jobs on a
bounded pool of worker-thread contexts (the paper spawns 32-64 per
core).  A context is tiny — saved general-purpose registers plus the
AstriFlash resume register — which is what makes the 100 ns switch
possible.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional

from repro.errors import ProtocolError


class ThreadState(Enum):
    NEW = "new"            # job assigned, never scheduled
    RUNNING = "running"    # executing on the core
    PENDING = "pending"    # halted on a DRAM-cache miss, waiting for flash
    READY = "ready"        # flash data arrived, waiting to be rescheduled
    DONE = "done"          # job finished, context free


class UserThread:
    """One worker-thread context bound to one job at a time."""

    __slots__ = ("thread_id", "core_id", "state", "job", "spawned_at",
                 "pending_since", "data_ready_at", "miss_page",
                 "forward_progress", "switches", "current_step",
                 "wait_signal")

    def __init__(self, thread_id: int, core_id: int) -> None:
        self.thread_id = thread_id
        self.core_id = core_id
        self.state = ThreadState.DONE  # free until a job is bound
        self.job: Optional[Any] = None
        self.spawned_at = 0.0
        self.pending_since: Optional[float] = None
        self.data_ready_at: Optional[float] = None
        self.miss_page: Optional[int] = None
        # Set when the scheduler forces this thread to retire at least
        # one instruction on its next dispatch (Sec. IV-C3).
        self.forward_progress = False
        self.switches = 0
        # Runner-facing state: the step being (re)executed and the
        # install signal this thread is parked on.
        self.current_step = None
        self.wait_signal = None

    # -- lifecycle ------------------------------------------------------------

    def bind(self, job: Any, now: float) -> None:
        """Assign a new job to this (free) context."""
        if self.state is not ThreadState.DONE:
            raise ProtocolError(f"binding job to busy thread {self.thread_id}")
        self.job = job
        self.state = ThreadState.NEW
        self.spawned_at = now
        self.pending_since = None
        self.data_ready_at = None
        self.miss_page = None
        self.forward_progress = False
        self.current_step = None
        self.wait_signal = None

    def dispatch(self) -> None:
        """The scheduler switched this thread onto the core."""
        if self.state not in (ThreadState.NEW, ThreadState.READY,
                              ThreadState.PENDING):
            raise ProtocolError(
                f"dispatch of thread {self.thread_id} in state {self.state}"
            )
        self.state = ThreadState.RUNNING
        self.switches += 1

    def halt_on_miss(self, page: int, now: float) -> None:
        """A DRAM-cache miss descheduled this thread (Sec. IV-D1)."""
        if self.state is not ThreadState.RUNNING:
            raise ProtocolError("halt of a thread that is not running")
        self.state = ThreadState.PENDING
        self.pending_since = now
        self.data_ready_at = None
        self.miss_page = page

    def data_arrived(self, now: float) -> None:
        """The flash refill for the missed page landed."""
        if self.state is not ThreadState.PENDING:
            raise ProtocolError("data arrival for a thread that is not pending")
        self.state = ThreadState.READY
        self.data_ready_at = now

    def finish(self) -> Any:
        """The job ran to completion; the context becomes free."""
        if self.state is not ThreadState.RUNNING:
            raise ProtocolError("finish of a thread that is not running")
        job, self.job = self.job, None
        self.state = ThreadState.DONE
        return job

    # -- scheduler queries --------------------------------------------------------

    def pending_age(self, now: float) -> float:
        """Time spent in the pending queue (aging input, Sec. IV-D2)."""
        if self.pending_since is None:
            raise ProtocolError("pending_age of a thread that never halted")
        return now - self.pending_since

    def __repr__(self) -> str:
        return (
            f"<UserThread {self.core_id}.{self.thread_id} "
            f"{self.state.value}>"
        )
