"""Strict JSON serialization helpers.

Python's ``json.dumps`` happily emits ``Infinity``/``NaN`` — tokens
that are *not* JSON and break strict parsers (``jq``, browsers,
``json.loads(..., parse_constant=...)`` consumers in CI).  Simulation
results can legitimately contain non-finite floats (e.g.
``ClosedLoop.rate_per_second`` is ``inf``), so every ``--json`` emitter
in the repo routes its payload through :func:`dumps`, which maps
non-finite floats to ``null`` and then serializes with
``allow_nan=False`` as a backstop: a non-finite value that somehow
survives sanitizing raises instead of corrupting the artifact.
"""

from __future__ import annotations

import json
import math
from typing import Any, Optional


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None``.

    Dicts, lists, and tuples are rebuilt (tuples become lists, as JSON
    would anyway); every other value passes through untouched.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return value


def dumps(value: Any, indent: Optional[int] = 2) -> str:
    """Standard-compliant ``json.dumps``: non-finite floats -> null.

    ``indent=None`` emits the compact single-line form (no spaces
    after separators) — the run-ledger JSONL line format.
    """
    separators = (",", ":") if indent is None else None
    return json.dumps(json_safe(value), indent=indent,
                      separators=separators, allow_nan=False)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps` (plain ``json.loads``; here so ledger
    readers and writers share one serialization module)."""
    return json.loads(text)
