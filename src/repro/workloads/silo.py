"""Silo workload: OCC transactions over the Masstree index (Sec. V-A).

Silo is an in-memory OLTP engine using optimistic concurrency control
over Masstree.  Each transaction collects a read set and a write set
through index lookups, then validates (re-touching the read-set leaf
pages to check TIDs) and commits (writing value pages and appending to
a log region) — the classic Silo protocol phases, which is what shapes
its page-access pattern: re-visits to recently-read pages plus a
sequential write stream.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.masstree import Masstree
from repro.workloads.pagedheap import SpreadHeap
from repro.workloads.zipf import ZipfianGenerator

LOG_RECORDS_PER_PAGE = 64


class SiloWorkload(Workload):
    """Read-mostly OCC transactions against a Masstree-indexed store."""

    name = "silo"
    rob_occupancy = 64.0

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_keys: Optional[int] = None, zipf_s: float = 1.55,
                 transactions_per_job: int = 3,
                 reads_per_txn: int = 3, writes_per_txn: int = 1,
                 compute_ns: float = 160.0) -> None:
        super().__init__(dataset_pages, seed)
        if num_keys is None:
            num_keys = min(1 << 16, max(1024, dataset_pages * 2))
        self.num_keys = num_keys
        self.transactions_per_job = transactions_per_job
        self.reads_per_txn = reads_per_txn
        self.writes_per_txn = writes_per_txn
        self.compute_ns = compute_ns

        index_budget = max(16, dataset_pages // 8)
        log_budget = max(4, dataset_pages // 16)
        value_budget = dataset_pages - index_budget - log_budget
        expected_nodes = max(16, 2 * num_keys // 32)
        self.tree = Masstree(SpreadHeap(0, index_budget, expected_nodes))
        value_heap = SpreadHeap(index_budget, value_budget, num_keys)
        for key in range(num_keys):
            self.tree.insert(key, value_heap.allocate().page)
        self._log_base = index_budget + value_budget
        self._log_budget = log_budget
        self._log_cursor = 0
        self._zipf = ZipfianGenerator(num_keys, zipf_s, seed=seed + 1,
                                         permute=False)
        # OCC state: per-leaf TIDs plus abort/commit accounting.
        self._leaf_versions: dict = {}
        self.max_retries = 3
        self.aborts = 0
        self.commits = 0
        self.retry_exhaustions = 0

    def _next_log_page(self) -> int:
        page = self._log_base + \
            (self._log_cursor // LOG_RECORDS_PER_PAGE) % self._log_budget
        self._log_cursor += 1
        return page

    def _lookup(self, key: int) -> Tuple[int, List[int]]:
        value_page, path = self.tree.get(key)
        if value_page is None:
            raise WorkloadError(f"key {key} missing from Silo store")
        return value_page, path

    def _leaf_version(self, leaf_page: int) -> int:
        return self._leaf_versions.get(leaf_page, 0)

    def _transaction_steps(self) -> Iterator[Step]:
        """One OCC transaction, retried on validation conflicts.

        Leaf TIDs (version counters per index leaf) provide genuine
        conflict detection: because job step generators from different
        simulated cores interleave, a concurrent commit to a read-set
        leaf between this transaction's read and its validation bumps
        the TID and forces a real abort-and-retry, wasting the executed
        steps exactly as Silo would.
        """
        compute = self.compute_ns
        for _attempt in range(self.max_retries + 1):
            read_set: List[Tuple[int, int]] = []   # (leaf page, TID seen)
            write_set: List[Tuple[int, int]] = []  # (leaf page, value page)

            # Execution phase: index lookups + value reads, recording
            # the TID of every read-set leaf.
            for _ in range(self.reads_per_txn):
                key = self._zipf.sample()
                value_page, path = self._lookup(key)
                for page in path:
                    yield Step(self._compute(compute), page)
                yield Step(self._compute(compute), value_page)
                read_set.append((path[-1], self._leaf_version(path[-1])))
            for _ in range(self.writes_per_txn):
                key = self._zipf.sample()
                value_page, path = self._lookup(key)
                for page in path:
                    yield Step(self._compute(compute), page)
                write_set.append((path[-1], value_page))

            # Validation phase: re-check TIDs on read-set leaf pages.
            conflicted = False
            for leaf_page, seen_version in read_set:
                yield Step(self._compute(compute * 0.5), leaf_page)
                if self._leaf_version(leaf_page) != seen_version:
                    conflicted = True
            if conflicted:
                self.aborts += 1
                continue  # retry the whole transaction

            # Commit phase: install writes, bump leaf TIDs, append log.
            for leaf_page, value_page in write_set:
                yield Step(self._compute(compute), value_page, is_write=True)
                yield Step(self._compute(compute * 0.5), leaf_page,
                           is_write=True)
                self._leaf_versions[leaf_page] = \
                    self._leaf_version(leaf_page) + 1
            yield Step(self._compute(compute * 0.5), self._next_log_page(),
                       is_write=True)
            self.commits += 1
            return
        # Retries exhausted: count it and move on (Silo would back off).
        self.retry_exhaustions += 1

    def abort_rate(self) -> float:
        total = self.aborts + self.commits
        if total == 0:
            return 0.0
        return self.aborts / total

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.transactions_per_job):
            yield from self._transaction_steps()
