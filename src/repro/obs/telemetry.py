"""Time-series telemetry: periodic snapshots of simulator state.

The :class:`TelemetrySampler` is a self-rescheduling engine event that
wakes every ``interval_ns`` of simulated time and snapshots the queues
and occupancies the paper's tail-latency story turns on: MSR occupancy,
per-core run/pending queue depths, dirty-way counts, flash in-flight
depth, BC miss-queue depth and core busy fraction.  Rows accumulate on
the active tracer (``tracer.telemetry_rows``) and, doubled as Chrome
``C`` counter events, render as counter tracks in Perfetto.

Determinism: sampling is **read-only**.  The sampler never touches the
simulation RNG, never fires signals, and never mutates model state; its
events only consume engine sequence numbers, which shifts nothing
observable (relative order of all other events is preserved) — the
golden determinism test pins this.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List

#: Aggregate columns every row carries (per-core ``core{i}_new`` /
#: ``core{i}_pending`` columns follow, one pair per core).
TELEMETRY_FIELDS = (
    "run",
    "time_us",
    "msr_occupancy",
    "runq_jobs",
    "new_threads",
    "pending_threads",
    "dirty_ways",
    "flash_inflight",
    "bc_queue_depth",
    "core_busy",
    # Flash/GC health columns (chaos runs in time series).  Appended
    # at the end: telemetry_fieldnames() ordering promises aggregates
    # in TELEMETRY_FIELDS order, and downstream CSV consumers index
    # the earlier columns by position.
    "gc_blocked_fraction",
    "erase_count_max",
    "erase_count_mean",
    "fault_stall_ns",
)

#: Aggregate fields also emitted as Chrome counter tracks.
_COUNTER_FIELDS = TELEMETRY_FIELDS[2:]


class TelemetrySampler:
    """Periodic, read-only state snapshotter for one runner."""

    def __init__(self, runner, tracer, interval_ns: float) -> None:
        if interval_ns <= 0.0:
            raise ValueError("telemetry interval must be positive")
        self.runner = runner
        self.tracer = tracer
        self.interval_ns = interval_ns
        self.samples = 0
        self._last_busy_ns = runner._busy_ns

    def start(self) -> None:
        """Schedule the first sample one interval from now."""
        self.runner.machine.engine.schedule(self.interval_ns, self._sample)

    # -- one snapshot ---------------------------------------------------------

    def _sample(self) -> None:
        runner = self.runner
        machine = runner.machine
        engine = machine.engine
        tracer = self.tracer
        now = engine.now

        row: Dict[str, float] = {
            "run": tracer.current_run,
            "time_us": now / 1000.0,
        }
        cache = machine.dram_cache
        if cache is not None:
            row["msr_occupancy"] = float(len(cache.backside.msr))
            row["dirty_ways"] = float(cache.organization.dirty_count())
            row["bc_queue_depth"] = float(len(cache.backside.miss_queue))
        else:
            row["msr_occupancy"] = 0.0
            row["dirty_ways"] = 0.0
            row["bc_queue_depth"] = 0.0
        flash = machine.flash
        if flash is not None:
            row["flash_inflight"] = float(sum(
                plane.busy + plane.queue_length for plane in flash.planes
            ))
            # Flash/GC health: GC contention, wear profile, cumulative
            # fault-induced BC stall time.  All read-only probes — the
            # sampler's determinism contract holds.
            row["gc_blocked_fraction"] = flash.gc.blocked_fraction()
            erase_counts = flash.ftl.erase_counts()
            if erase_counts:
                row["erase_count_max"] = float(max(erase_counts))
                row["erase_count_mean"] = (sum(erase_counts)
                                           / len(erase_counts))
            else:
                row["erase_count_max"] = 0.0
                row["erase_count_mean"] = 0.0
            row["fault_stall_ns"] = flash.stats.get("bc_fault_stall_ns")
        else:
            row["flash_inflight"] = 0.0
            row["gc_blocked_fraction"] = 0.0
            row["erase_count_max"] = 0.0
            row["erase_count_mean"] = 0.0
            row["fault_stall_ns"] = 0.0

        row["runq_jobs"] = float(sum(
            len(queue) for queue in runner._queues.values()
        ))
        new_threads = 0
        pending_threads = 0
        for core_id, library in enumerate(machine.libraries):
            if library is None:
                continue
            scheduler = library.scheduler
            row[f"core{core_id}_new"] = float(scheduler.new_count)
            row[f"core{core_id}_pending"] = float(scheduler.pending_count)
            new_threads += scheduler.new_count
            pending_threads += scheduler.pending_count
        row["new_threads"] = float(new_threads)
        row["pending_threads"] = float(pending_threads)

        # Busy fraction over the elapsed interval, across all cores.
        busy_ns = runner._busy_ns
        capacity = self.interval_ns * runner.config.num_cores
        row["core_busy"] = min(1.0, (busy_ns - self._last_busy_ns) / capacity)
        self._last_busy_ns = busy_ns

        self.samples += 1
        tracer.telemetry_rows.append(row)
        for field in _COUNTER_FIELDS:
            tracer.counter(field, now, row[field])
        engine.schedule(self.interval_ns, self._sample)


# ------------------------------------------------------------------ output --


def telemetry_fieldnames(rows: List[Dict[str, float]]) -> List[str]:
    """Stable column order: aggregates first, per-core columns after."""
    extras: List[str] = []
    seen = set(TELEMETRY_FIELDS)
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                extras.append(key)
    return list(TELEMETRY_FIELDS) + sorted(extras)


def write_telemetry_csv(rows: List[Dict[str, float]], path: str) -> None:
    """Write the sampled series as CSV (one row per sample)."""
    fieldnames = telemetry_fieldnames(rows)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames,
                                restval=0.0)
        writer.writeheader()
        writer.writerows(rows)


def write_telemetry_json(rows: List[Dict[str, float]], path: str) -> None:
    """Write the sampled series as a JSON list of row objects.

    Goes through :func:`repro.jsonutil.json_safe` so a non-finite
    sample (e.g. an infinite rate from an empty window) serializes as
    ``null`` instead of a non-standard ``Infinity`` token.
    """
    from repro.jsonutil import json_safe

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(json_safe(rows), handle, allow_nan=False)
