"""Reorder buffer and store buffer models.

These are functional structures used by the switch-on-miss sandbox
(:mod:`repro.cpu.speculation`) to demonstrate that a committed store in
the Store Buffer can be aborted and the core rewound to the last
finished instruction — the microarchitectural crux of Sec. IV-C.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import CapacityError, ConfigurationError, ProtocolError


class InstructionKind:
    ALU = "alu"
    LOAD = "load"
    STORE = "store"


class RobEntry:
    """One in-flight instruction."""

    __slots__ = ("seq", "kind", "dest_arch_reg", "new_preg", "old_preg",
                 "page", "completed")

    def __init__(self, seq: int, kind: str, dest_arch_reg: Optional[int],
                 new_preg: Optional[int], old_preg: Optional[int],
                 page: Optional[int]) -> None:
        self.seq = seq
        self.kind = kind
        self.dest_arch_reg = dest_arch_reg
        self.new_preg = new_preg
        self.old_preg = old_preg
        self.page = page       # memory page touched (loads/stores)
        self.completed = False

    def __repr__(self) -> str:
        done = "done" if self.completed else "pending"
        return f"<RobEntry #{self.seq} {self.kind} {done}>"


class ReorderBuffer:
    """A bounded FIFO of in-flight instructions."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[RobEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def head(self) -> Optional[RobEntry]:
        return self._entries[0] if self._entries else None

    def allocate(self, entry: RobEntry) -> None:
        if self.is_full:
            raise CapacityError("ROB full")
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise ProtocolError("ROB entries must be allocated in program order")
        self._entries.append(entry)

    def retire_head(self) -> RobEntry:
        """Retire the oldest instruction (must be completed, except
        stores which retire into the SB once address+data are ready)."""
        if not self._entries:
            raise ProtocolError("retire from empty ROB")
        head = self._entries[0]
        if head.kind != InstructionKind.STORE and not head.completed:
            raise ProtocolError(f"retiring incomplete instruction {head!r}")
        return self._entries.popleft()

    def flush_from(self, seq: int) -> List[RobEntry]:
        """Squash instruction ``seq`` and everything younger.

        Returns the squashed entries youngest-first, which is the order
        in which rename state must be unwound."""
        kept: Deque[RobEntry] = deque()
        squashed: List[RobEntry] = []
        for entry in self._entries:
            if entry.seq >= seq:
                squashed.append(entry)
            else:
                kept.append(entry)
        if not squashed:
            raise ProtocolError(f"no ROB entry with seq >= {seq} to flush")
        self._entries = kept
        squashed.reverse()
        return squashed

    def flush_all(self) -> List[RobEntry]:
        """Squash every in-flight instruction (miss-signal path)."""
        squashed = list(self._entries)
        squashed.reverse()
        self._entries.clear()
        return squashed

    def entries(self) -> List[RobEntry]:
        return list(self._entries)


class StoreBufferEntry:
    """A retired-but-incomplete store with its ASO rollback snapshot."""

    __slots__ = ("seq", "page", "map_snapshot", "speculative_regs")

    def __init__(self, seq: int, page: int, map_snapshot: List[int],
                 speculative_regs: List[int]) -> None:
        self.seq = seq
        self.page = page
        # Rename-map snapshot taken *before* the store renamed anything;
        # restoring it rewinds the core to just before the store.
        self.map_snapshot = map_snapshot
        # Physical registers allocated by this store and by younger
        # instructions up to the next store; freed when the store
        # completes (leaves the SB) or the abort path reclaims them.
        self.speculative_regs = speculative_regs

    def __repr__(self) -> str:
        return f"<SBEntry #{self.seq} page={self.page}>"


class StoreBuffer:
    """Post-retirement stores awaiting completion in program order."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("store buffer capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[StoreBufferEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def head(self) -> Optional[StoreBufferEntry]:
        return self._entries[0] if self._entries else None

    def push(self, entry: StoreBufferEntry) -> None:
        if self.is_full:
            raise CapacityError("store buffer full")
        if self._entries and entry.seq <= self._entries[-1].seq:
            raise ProtocolError("stores must enter the SB in program order")
        self._entries.append(entry)

    def complete_head(self) -> StoreBufferEntry:
        """The oldest store's write reached the memory system."""
        if not self._entries:
            raise ProtocolError("complete on empty store buffer")
        return self._entries.popleft()

    def abort_from(self, seq: int) -> List[StoreBufferEntry]:
        """Abort store ``seq`` and all younger SB stores (miss path).

        Returns them youngest-first for rollback."""
        kept: Deque[StoreBufferEntry] = deque()
        aborted: List[StoreBufferEntry] = []
        for entry in self._entries:
            if entry.seq >= seq:
                aborted.append(entry)
            else:
                kept.append(entry)
        if not aborted:
            raise ProtocolError(f"no SB entry with seq >= {seq} to abort")
        self._entries = kept
        aborted.reverse()
        return aborted

    def entries(self) -> List[StoreBufferEntry]:
        return list(self._entries)
