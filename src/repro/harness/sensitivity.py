"""Sensitivity studies beyond the paper's figures.

Two sweeps the paper's design discussion motivates but does not plot:

* :func:`dram_fraction_sweep` — AstriFlash throughput (vs DRAM-only) as
  the DRAM-cache fraction shrinks below / grows above the 3 % design
  point.  Complements Fig. 1 (which only measures miss ratio) by
  closing the loop through the full simulator.
* :func:`thread_count_sweep` — throughput vs user threads per core:
  the multiprogramming level must cover the flash stall
  (Sec. III-A's M/M/k argument predicts a knee around
  service/compute ≈ 6-8 threads; beyond that returns diminish).

Every sweep point is one :class:`~repro.harness.parallel.RunSpec` with
a config override, so the sweeps fan out across worker processes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.common import ExperimentResult, resolve_scale
from repro.harness.parallel import RunSpec, run_specs

DRAM_FRACTIONS: Sequence[float] = (0.01, 0.02, 0.03, 0.05, 0.10)
THREAD_COUNTS: Sequence[int] = (1, 2, 4, 8, 16, 48)


def dram_fraction_sweep(scale="quick", workload_name: str = "tatp",
                        seed: int = 42,
                        fractions: Sequence[float] = DRAM_FRACTIONS,
                        jobs: Optional[int] = None) -> ExperimentResult:
    """AstriFlash throughput vs DRAM-cache capacity fraction."""
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="sensitivity-dram-fraction",
        title=(f"Sensitivity: AstriFlash throughput vs DRAM fraction "
               f"({workload_name})"),
        columns=["dram_fraction", "throughput_vs_dram_only", "miss_ratio"],
        notes="The paper's 3% design point sits at the knee.",
    )
    specs = [RunSpec("dram-only", workload_name, scale, seed=seed)]
    specs.extend(
        RunSpec("astriflash", workload_name, scale, seed=seed,
                config_overrides=(("scale.dram_fraction", fraction),))
        for fraction in fractions
    )
    outcomes = run_specs(specs, jobs=jobs)
    baseline, sweep = outcomes[0], outcomes[1:]
    for fraction, outcome in zip(fractions, sweep):
        result.add_row(
            fraction,
            outcome.throughput_jobs_per_s / baseline.throughput_jobs_per_s,
            outcome.miss_ratio,
        )
    return result


def thread_count_sweep(scale="quick", workload_name: str = "tatp",
                       seed: int = 42,
                       thread_counts: Sequence[int] = THREAD_COUNTS,
                       jobs: Optional[int] = None) -> ExperimentResult:
    """AstriFlash throughput vs user-level threads per core."""
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="sensitivity-threads",
        title=(f"Sensitivity: AstriFlash throughput vs threads/core "
               f"({workload_name})"),
        columns=["threads_per_core", "throughput_jobs_per_s",
                 "core_busy_fraction"],
        notes=("One thread degenerates to Flash-Sync; the knee sits "
               "where the pool covers the flash stall (M/M/k)."),
    )
    specs = [
        RunSpec("astriflash", workload_name, scale, seed=seed,
                config_overrides=(
                    ("ult.pending_queue_limit", max(1, threads)),
                    ("ult.threads_per_core", threads),
                ))
        for threads in thread_counts
    ]
    outcomes = run_specs(specs, jobs=jobs)
    for threads, outcome in zip(thread_counts, outcomes):
        result.add_row(threads, outcome.throughput_jobs_per_s,
                       outcome.core_busy_fraction)
    return result
