"""AstriFlash (HPCA 2023) reproduction library.

A discrete-event simulator and analytic toolkit for flash-based memory
systems serving online services: a hardware-managed DRAM cache over
NAND flash with a microsecond-scale switch-on-miss architecture and
user-level threading, plus the OS-paging and synchronous-flash
baselines the paper evaluates against.
"""

__version__ = "1.0.0"
