"""Analytic models: queueing (Fig. 3), Equation-1 bandwidth (Fig. 1),
and the 20x memory-cost claim."""

from repro.analytic.bandwidth import (
    AVERAGE_DRAM_BANDWIDTH_PER_CORE_GBPS,
    PCIE_GEN5_BANDWIDTH_GBPS,
    fits_in_pcie_gen5,
    flash_bandwidth_per_core_gbps,
    flash_bandwidth_total_gbps,
)
from repro.analytic.costmodel import (
    FLASH_PRICE_ADVANTAGE,
    astriflash_cost,
    cost_reduction_factor,
    dram_only_cost,
)
from repro.analytic.silicon import (
    AsoSiliconEstimate,
    aso_silicon_estimate,
)
from repro.analytic.queueing import (
    OverlapModel,
    erlang_c,
    mm1_response_percentile,
    mmk_response_percentile,
    mmk_response_survival,
    paper_figure3_models,
)

__all__ = [
    "AVERAGE_DRAM_BANDWIDTH_PER_CORE_GBPS",
    "FLASH_PRICE_ADVANTAGE",
    "AsoSiliconEstimate",
    "OverlapModel",
    "aso_silicon_estimate",
    "PCIE_GEN5_BANDWIDTH_GBPS",
    "astriflash_cost",
    "cost_reduction_factor",
    "dram_only_cost",
    "erlang_c",
    "fits_in_pcie_gen5",
    "flash_bandwidth_per_core_gbps",
    "flash_bandwidth_total_gbps",
    "mm1_response_percentile",
    "mmk_response_percentile",
    "mmk_response_survival",
    "paper_figure3_models",
]
