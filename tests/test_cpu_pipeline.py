"""Differential tests: switch-on-miss aborts preserve architecture.

Random programs run through the full rename/ROB/SB machinery with
injected DRAM-cache misses (load aborts + post-retirement store aborts)
must produce exactly the registers and memory of an abort-free in-order
interpreter — the semantic guarantee of Sec. IV-C.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import InstructionKind
from repro.cpu.pipeline import (
    Instruction,
    PipelinedMachine,
    ReferenceMachine,
    random_program,
)

ALU = InstructionKind.ALU
LOAD = InstructionKind.LOAD
STORE = InstructionKind.STORE


def run_both(program, miss_points=()):
    reference = ReferenceMachine()
    reference.execute(program)
    pipelined = PipelinedMachine(miss_points=set(miss_points))
    pipelined.execute(program)
    return reference, pipelined


def assert_equivalent(reference, pipelined):
    assert pipelined.architectural_registers() == reference.registers
    # Memory: every page either matches or was never written (0).
    pages = set(reference.memory) | set(pipelined.memory)
    for page in pages:
        assert pipelined.memory.get(page, 0) == \
            reference.memory.get(page, 0), f"page {page} differs"


class TestBasicPrograms:
    def test_alu_chain(self):
        program = [
            Instruction(ALU, dest=1, src=0, immediate=5),
            Instruction(ALU, dest=2, src=1, immediate=7),
            Instruction(ALU, dest=1, src=2, immediate=1),
        ]
        reference, pipelined = run_both(program)
        assert_equivalent(reference, pipelined)
        assert reference.registers[1] == 13

    def test_store_then_load(self):
        program = [
            Instruction(ALU, dest=1, src=0, immediate=42),
            Instruction(STORE, src=1, page=3),
            Instruction(LOAD, dest=2, page=3),
        ]
        reference, pipelined = run_both(program)
        assert_equivalent(reference, pipelined)
        assert reference.registers[2] == 42

    def test_forwarding_from_uncommitted_store(self):
        # The load executes while the store is still pending: the value
        # must come from store-to-load forwarding, not stale memory.
        program = [
            Instruction(ALU, dest=1, src=0, immediate=9),
            Instruction(STORE, src=1, page=0),
            Instruction(LOAD, dest=2, page=0),
            Instruction(ALU, dest=3, src=2, immediate=1),
        ]
        reference, pipelined = run_both(program)
        assert_equivalent(reference, pipelined)
        assert pipelined.architectural_registers()[3] == 10


class TestMissInjection:
    def test_load_miss_replays_correctly(self):
        program = [
            Instruction(ALU, dest=1, src=0, immediate=3),
            Instruction(LOAD, dest=2, page=5),
            Instruction(ALU, dest=3, src=2, immediate=4),
        ]
        reference, pipelined = run_both(program, miss_points={1})
        assert pipelined.aborts == 1
        assert_equivalent(reference, pipelined)

    def test_committed_store_miss_replays_correctly(self):
        program = [
            Instruction(ALU, dest=1, src=0, immediate=8),
            Instruction(STORE, src=1, page=2),
            Instruction(ALU, dest=2, src=1, immediate=1),
            Instruction(ALU, dest=1, src=2, immediate=1),
            Instruction(LOAD, dest=3, page=2),
        ]
        reference, pipelined = run_both(program, miss_points={1})
        assert pipelined.aborts == 1
        assert_equivalent(reference, pipelined)
        assert pipelined.memory[2] == 8

    def test_store_miss_rolls_back_younger_register_writes(self):
        # The essence of ASO: r1 is overwritten by retired instructions
        # younger than the store; the abort must revive the old value
        # so the replayed store writes the correct data.
        program = [
            Instruction(ALU, dest=1, src=0, immediate=100),
            Instruction(STORE, src=1, page=0),      # must store 100
            Instruction(ALU, dest=1, src=1, immediate=1),   # r1 -> 101
            Instruction(ALU, dest=1, src=1, immediate=1),   # r1 -> 102
            Instruction(STORE, src=1, page=1),      # must store 102
        ]
        reference, pipelined = run_both(program, miss_points={1})
        assert pipelined.aborts == 1
        assert_equivalent(reference, pipelined)
        assert pipelined.memory[0] == 100
        assert pipelined.memory[1] == 102

    def test_multiple_misses(self):
        program = [
            Instruction(ALU, dest=1, src=0, immediate=5),
            Instruction(STORE, src=1, page=0),
            Instruction(LOAD, dest=2, page=0),
            Instruction(ALU, dest=2, src=2, immediate=5),
            Instruction(STORE, src=2, page=1),
            Instruction(LOAD, dest=3, page=1),
        ]
        reference, pipelined = run_both(program,
                                        miss_points={1, 2, 4, 5})
        assert pipelined.aborts == 4
        assert_equivalent(reference, pipelined)


class TestDifferentialRandom:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=120, deadline=None)
    def test_random_programs_with_random_misses(self, program_seed,
                                                miss_seed):
        rng = random.Random(program_seed)
        program = random_program(rng, length=rng.randrange(5, 40))
        miss_rng = random.Random(miss_seed)
        memory_indices = [
            index for index, instr in enumerate(program)
            if instr.kind in (LOAD, STORE)
        ]
        miss_points = {
            index for index in memory_indices
            if miss_rng.random() < 0.3
        }
        reference, pipelined = run_both(program, miss_points)
        assert_equivalent(reference, pipelined)
        # Every injected miss actually triggered an abort... unless it
        # was squashed by an older abort and refetched (then its miss
        # point was consumed exactly once either way).
        assert pipelined.aborts <= len(miss_points)
        # Rename state is clean after the run.
        pipelined.core.check_invariants()
        assert pipelined.core.prf.allocated_count == \
            pipelined.core.quiesced_register_count()

    @given(st.integers(0, 5_000))
    @settings(max_examples=60, deadline=None)
    def test_all_memory_ops_missing(self, seed):
        """Worst case: every memory instruction misses once."""
        rng = random.Random(seed)
        program = random_program(rng, length=24)
        miss_points = {
            index for index, instr in enumerate(program)
            if instr.kind in (LOAD, STORE)
        }
        reference, pipelined = run_both(program, miss_points)
        assert_equivalent(reference, pipelined)
