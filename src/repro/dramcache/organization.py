"""Set-associative, page-granularity DRAM-cache organization.

The DRAM cache stores 4 KiB pages; each DRAM row is one set holding
``associativity`` ways plus an 8-byte tag per way in the same row
(Sec. IV-B, Fig. 5a).  Tags therefore cost a serialized RAS+CAS before
data access — the timing model in :mod:`repro.dramcache.timing` charges
for that.

This module is purely functional state: lookups, LRU, installs,
reservations (ways claimed for in-flight refills) and evictions.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError, ProtocolError
from repro.stats import CounterSet


class Way:
    """One way of one set: a page frame plus tag metadata."""

    __slots__ = ("page", "dirty", "last_touch", "reserved_for",
                 "access_count")

    def __init__(self) -> None:
        self.page: Optional[int] = None
        self.dirty = False
        self.last_touch = 0
        # Logical page this way is reserved for while a refill is in
        # flight; the way cannot be victimized meanwhile.
        self.reserved_for: Optional[int] = None
        # Accesses during the current residency (footprint training).
        self.access_count = 0

    @property
    def valid(self) -> bool:
        return self.page is not None

    @property
    def reserved(self) -> bool:
        return self.reserved_for is not None


class EvictedPage:
    """A victim page pushed out by a refill."""

    __slots__ = ("page", "dirty", "access_count")

    def __init__(self, page: int, dirty: bool, access_count: int = 0) -> None:
        self.page = page
        self.dirty = dirty
        self.access_count = access_count

    def __repr__(self) -> str:
        flag = "dirty" if self.dirty else "clean"
        return f"<EvictedPage {self.page} {flag}>"


class DramCacheOrganization:
    """Tag/data state for the whole DRAM cache."""

    def __init__(self, num_pages: int, associativity: int) -> None:
        if associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if num_pages < associativity:
            raise ConfigurationError("cache smaller than one set")
        self.associativity = associativity
        self.num_sets = num_pages // associativity
        self.capacity_pages = self.num_sets * associativity
        self._sets: List[List[Way]] = [
            [Way() for _ in range(associativity)] for _ in range(self.num_sets)
        ]
        self._clock = 0  # LRU timestamp source
        self.stats = CounterSet("dram-cache-org")

    # -- indexing -------------------------------------------------------------

    def set_index(self, page: int) -> int:
        return page % self.num_sets

    def _ways(self, page: int) -> List[Way]:
        return self._sets[self.set_index(page)]

    # -- lookup ---------------------------------------------------------------

    def lookup(self, page: int, is_write: bool = False) -> bool:
        """Probe the tags; on a hit, touch LRU (and dirty for writes)."""
        self._clock += 1
        for way in self._ways(page):
            if way.page == page:
                way.last_touch = self._clock
                way.access_count += 1
                if is_write:
                    way.dirty = True
                self.stats.add("hits")
                return True
        self.stats.add("misses")
        return False

    def contains(self, page: int) -> bool:
        """Tag probe without LRU side effects."""
        return any(way.page == page for way in self._ways(page))

    def is_reserved(self, page: int) -> bool:
        """True if a refill for ``page`` already holds a way."""
        return any(way.reserved_for == page for way in self._ways(page))

    # -- refill path ------------------------------------------------------------

    def reserve_victim(self, page: int) -> Optional[EvictedPage]:
        """Claim a way for an incoming refill of ``page``.

        Picks an invalid way if possible, otherwise evicts the LRU
        non-reserved way.  Returns the evicted page (None if a free way
        was available).  Raises :class:`ProtocolError` when every way in
        the set is already reserved — the backside controller must bound
        outstanding misses per set to avoid this.
        """
        ways = self._ways(page)
        if any(way.reserved_for == page for way in ways):
            raise ProtocolError(f"page {page} already has a reserved way")
        # Prefer an invalid, unreserved way.
        for way in ways:
            if not way.valid and not way.reserved:
                way.reserved_for = page
                return None
        # Evict the LRU valid, unreserved way.
        victim: Optional[Way] = None
        for way in ways:
            if way.valid and not way.reserved:
                if victim is None or way.last_touch < victim.last_touch:
                    victim = way
        if victim is None:
            raise ProtocolError(
                f"all ways of set {self.set_index(page)} are reserved; "
                "too many concurrent misses to one set"
            )
        evicted = EvictedPage(victim.page, victim.dirty,
                              victim.access_count)
        victim.page = None
        victim.dirty = False
        victim.access_count = 0
        victim.reserved_for = page
        self.stats.add("evictions")
        if evicted.dirty:
            self.stats.add("dirty_evictions")
        return evicted

    def install(self, page: int, dirty: bool = False) -> None:
        """Fill the reserved way with the arrived page."""
        self._clock += 1
        for way in self._ways(page):
            if way.reserved_for == page:
                way.page = page
                way.dirty = dirty
                way.last_touch = self._clock
                way.access_count = 1  # the access that missed replays
                way.reserved_for = None
                self.stats.add("installs")
                return
        raise ProtocolError(f"install of page {page} without a reservation")

    def cancel_reservation(self, page: int) -> None:
        """Release a reservation without installing (error paths)."""
        for way in self._ways(page):
            if way.reserved_for == page:
                way.reserved_for = None
                return
        raise ProtocolError(f"no reservation to cancel for page {page}")

    # -- direct manipulation (warmup / tests) -----------------------------------

    def populate(self, page: int) -> Optional[EvictedPage]:
        """Insert a page immediately (used for cache warmup)."""
        if self.contains(page):
            self.lookup(page)
            return None
        evicted = self.reserve_victim(page)
        self.install(page)
        return evicted

    def occupancy(self) -> int:
        """Number of valid pages currently cached."""
        return sum(
            1 for ways in self._sets for way in ways if way.valid
        )

    def dirty_count(self) -> int:
        return sum(
            1 for ways in self._sets for way in ways if way.valid and way.dirty
        )

    def miss_ratio(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["misses"] / total
