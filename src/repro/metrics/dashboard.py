"""``repro dashboard``: the ledger + bench artifacts as one HTML page.

Dependency-free on both ends: the input is the run ledger plus any
``BENCH_*.json`` / ``PROFILE_*.json`` files on disk, the output is a
single self-contained HTML document — inline CSS, inline SVG charts,
no scripts, no external fetches — that renders the kernel-throughput
trajectory, chaos degradation curves, loadgen knee curves, and the
latest tail-latency attribution.  Every section degrades gracefully:
an empty ledger or a missing bench file renders a placeholder note,
never an error (the dashboard must work on a fresh clone).
"""

from __future__ import annotations

import html
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.jsonutil import loads as json_loads
from repro.metrics.ledger import RunRecord, read_ledger
from repro.metrics.registry import parse_key

#: Colorblind-safe categorical palette (Observable 10 ordering).
PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0")

Point = Tuple[float, float]


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _color(index: int) -> str:
    return PALETTE[index % len(PALETTE)]


# ----------------------------------------------------------- SVG helpers --


def svg_sparkline(values: Sequence[float], width: int = 200,
                  height: int = 36, color: str = PALETTE[0]) -> str:
    """A minimal inline-SVG line for a metric trajectory."""
    finite = [float(v) for v in values if v is not None]
    if not finite:
        return "<span class='muted'>no data</span>"
    if len(finite) == 1:
        finite = finite * 2  # a single run still draws a flat line
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    pad = 3
    points = " ".join(
        f"{pad + i * (width - 2 * pad) / (len(finite) - 1):.1f},"
        f"{height - pad - (v - low) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(finite)
    )
    last_x = width - pad
    last_y = height - pad - (finite[-1] - low) / span * (height - 2 * pad)
    return (
        f"<svg width='{width}' height='{height}' viewBox='0 0 {width} "
        f"{height}' role='img'>"
        f"<polyline fill='none' stroke='{color}' stroke-width='1.5' "
        f"points='{points}'/>"
        f"<circle cx='{last_x:.1f}' cy='{last_y:.1f}' r='2.5' "
        f"fill='{color}'/></svg>"
    )


def svg_chart(series: Mapping[str, Sequence[Point]], width: int = 460,
              height: int = 220, x_label: str = "",
              y_label: str = "") -> str:
    """Named (x, y) series as an inline-SVG chart with min/max ticks."""
    points = [(x, y) for pts in series.values() for x, y in pts
              if x is not None and y is not None]
    if not points:
        return "<p class='muted'>no plottable points</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    left, right, top, bottom = 52, 12, 10, 34

    def sx(x: float) -> float:
        return left + (x - x_low) / x_span * (width - left - right)

    def sy(y: float) -> float:
        return height - bottom - (y - y_low) / y_span \
            * (height - top - bottom)

    parts = [
        f"<svg width='{width}' height='{height}' viewBox='0 0 {width} "
        f"{height}' role='img'>",
        f"<line x1='{left}' y1='{height - bottom}' x2='{width - right}' "
        f"y2='{height - bottom}' stroke='#aaa'/>",
        f"<line x1='{left}' y1='{top}' x2='{left}' "
        f"y2='{height - bottom}' stroke='#aaa'/>",
        f"<text x='{left}' y='{height - 8}' class='tick'>"
        f"{x_low:.4g}</text>",
        f"<text x='{width - right}' y='{height - 8}' class='tick' "
        f"text-anchor='end'>{x_high:.4g}</text>",
        f"<text x='{left - 6}' y='{height - bottom}' class='tick' "
        f"text-anchor='end'>{y_low:.4g}</text>",
        f"<text x='{left - 6}' y='{top + 8}' class='tick' "
        f"text-anchor='end'>{y_high:.4g}</text>",
    ]
    if x_label:
        parts.append(f"<text x='{(left + width - right) / 2}' "
                     f"y='{height - 8}' class='tick' "
                     f"text-anchor='middle'>{_esc(x_label)}</text>")
    if y_label:
        parts.append(f"<text x='12' y='{top + 2}' class='tick'>"
                     f"{_esc(y_label)}</text>")
    for index, (name, pts) in enumerate(series.items()):
        color = _color(index)
        clean = sorted((x, y) for x, y in pts
                       if x is not None and y is not None)
        if not clean:
            continue
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in clean)
        parts.append(f"<polyline fill='none' stroke='{color}' "
                     f"stroke-width='1.8' points='{path}'/>")
        for x, y in clean:
            parts.append(f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' "
                         f"r='2.6' fill='{color}'><title>"
                         f"{_esc(name)}: ({x:.5g}, {y:.5g})"
                         f"</title></circle>")
    parts.append("</svg>")
    legend = "".join(
        f"<span class='legend'><span class='swatch' "
        f"style='background:{_color(i)}'></span>{_esc(name)}</span>"
        for i, name in enumerate(series)
    )
    return "".join(parts) + f"<div>{legend}</div>"


def _table(headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> str:
    if not rows:
        return "<p class='muted'>no rows</p>"
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{body}</tbody></table>")


def _fmt(value: object, spec: str = ",.4g") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, spec)
    return str(value)


def _section(title: str, body: str, note: str = "") -> str:
    note_html = f"<p class='muted'>{_esc(note)}</p>" if note else ""
    return (f"<section><h2>{_esc(title)}</h2>{note_html}{body}"
            "</section>")


# --------------------------------------------------------- input loading --


def discover_bench_files(directory: os.PathLike = ".") -> List[Path]:
    """``BENCH_*.json`` and ``PROFILE_*.json`` files, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(
        list(root.glob("BENCH_*.json")) + list(root.glob("PROFILE_*.json"))
    )


def load_bench_payloads(paths: Sequence[os.PathLike],
                        ) -> List[Tuple[str, dict]]:
    """Readable JSON objects from ``paths`` (unreadable files skipped)."""
    payloads: List[Tuple[str, dict]] = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json_loads(handle.read())
        except (OSError, ValueError):
            continue
        if isinstance(payload, dict):
            payloads.append((os.path.basename(str(path)), payload))
    return payloads


def _classify_payload(payload: Mapping) -> str:
    if "ops_per_job" in payload and "entries" in payload:
        return "kernel"
    if "rber_points" in payload:
        return "chaos"
    if "knees" in payload:
        return "loadgen"
    if "wall_seconds_snapshots_off" in payload:
        return "sweep"
    if "hotspots" in payload:
        return "profile"
    return "unknown"


# ------------------------------------------------------- panel builders --


def _ledger_panel(records: Sequence[RunRecord]) -> str:
    if not records:
        return _section("Run ledger", "<p class='muted'>ledger is empty "
                        "— measuring verbs append here</p>")
    rows = [
        (index, record.record_id[:8] or "-", record.timestamp,
         record.verb, record.experiment or "-",
         f"{record.preset or '-'}/{record.workload or '-'}",
         record.backend or "-", record.scale or "-",
         _fmt(record.wall_seconds, ".2f"),
         _fmt(record.events_per_second, ",.0f"),
         (record.fingerprint[:8] or "-"))
        for index, record in enumerate(records)
    ][-50:]
    table = _table(("#", "id", "timestamp (UTC)", "verb", "experiment",
                    "preset/workload", "backend", "scale", "wall s",
                    "events/s", "fingerprint"), rows)
    return _section("Run ledger", table,
                    note=f"{len(records)} records (newest last, "
                         "showing up to 50)")


def _kernel_trajectory_panel(records: Sequence[RunRecord]) -> str:
    """Per-backend kernel events/s sparkline across ledger history."""
    kernel_records = [r for r in records if r.verb == "bench-kernel"]
    series: Dict[str, List[float]] = {}
    for record in kernel_records:
        for key, value in record.metrics.items():
            name, labels = parse_key(key)
            if name == "kernel/events_per_second":
                backend = labels.get("backend", "?")
                series.setdefault(backend, []).append(value)
    if not series:
        return _section("Kernel throughput trajectory",
                        "<p class='muted'>no bench-kernel ledger records "
                        "yet</p>")
    rows = []
    for index, (backend, values) in enumerate(sorted(series.items())):
        rows.append(f"<div class='spark'><b>{_esc(backend)}</b> "
                    f"{svg_sparkline(values, color=_color(index))} "
                    f"<span class='muted'>latest "
                    f"{_fmt(values[-1], ',.0f')} events/s over "
                    f"{len(values)} runs</span></div>")
    return _section("Kernel throughput trajectory", "".join(rows),
                    note="events/s per backend across ledger history "
                         "(wall-clock: trend, not a gate)")


def _kernel_panel(payload: Mapping) -> str:
    rows = []
    for entry in payload.get("entries", ()):
        stats = entry.get("vector_stats") or {}
        reasons = entry.get("fallback_reasons") or {}
        reason_text = "; ".join(f"{k} x{v}" for k, v in sorted(
            reasons.items())) or "-"
        rows.append((entry.get("backend", "?"),
                     _fmt(entry.get("wall_seconds"), ".4f"),
                     _fmt(entry.get("events_executed"), ",.0f"),
                     _fmt(entry.get("events_per_second"), ",.0f"),
                     _fmt(float(stats["scalar_fallbacks"])
                          if "scalar_fallbacks" in stats else None, ".0f"),
                     reason_text,
                     (entry.get("state_fingerprint") or "")[:10]))
    verdict = payload.get("bit_identical")
    badge = ("<span class='ok'>bit-identical</span>" if verdict
             else "<span class='bad'>DIVERGED</span>"
             if verdict is False else "")
    speedup = payload.get("speedup")
    speed_text = (f" &middot; speedup {_esc(_fmt(speedup, '.2f'))}x "
                  "(vector/scalar)" if speedup is not None else "")
    body = _table(("backend", "wall s", "events", "events/s",
                   "fallbacks", "fallback reasons", "fingerprint"),
                  rows) + f"<p>{badge}{speed_text}</p>"
    return _section(
        "Kernel bench (scalar vs vector)", body,
        note=f"workload={payload.get('workload', '?')} "
             f"scale={payload.get('scale', '?')} "
             f"ops_per_job={payload.get('ops_per_job', '?')}")


def _sweep_panel(payload: Mapping) -> str:
    rows = [("snapshots off",
             _fmt(payload.get("wall_seconds_snapshots_off"), ".3f")),
            ("snapshots cold",
             _fmt(payload.get("wall_seconds_snapshots_cold"), ".3f")),
            ("snapshots on",
             _fmt(payload.get("wall_seconds_snapshots_on"), ".3f")),
            ("speedup (off/on)",
             _fmt(payload.get("speedup"), ".2f") + "x")]
    return _section("Sweep bench (snapshot amortization)",
                    _table(("timing", "value"), rows),
                    note=f"experiment={payload.get('experiment', '?')} "
                         f"scale={payload.get('scale', '?')}")


def _chaos_panel(payload: Mapping) -> str:
    series: Dict[str, List[Point]] = {}
    for cell in payload.get("cells", ()):
        if cell.get("failed") or cell.get("service_p99_ns") is None:
            continue
        series.setdefault(cell.get("preset", "?"), []).append(
            (float(cell.get("rber", 0.0)),
             float(cell["service_p99_ns"]) / 1000.0))
    chart = svg_chart(series, x_label="injected RBER",
                      y_label="service p99 (us)")
    failed = [(cell.get("preset", "?"), format(cell.get("rber", 0.0), "g"))
              for cell in payload.get("cells", ()) if cell.get("failed")]
    failed_note = ""
    if failed:
        items = ", ".join(f"{preset}@rber={rber}"
                          for preset, rber in failed)
        failed_note = (f"<p class='bad'>device failed at: "
                       f"{_esc(items)}</p>")
    return _section(
        "Chaos degradation curves", chart + failed_note,
        note=f"workload={payload.get('workload', '?')} "
             f"fault_seed={payload.get('fault_seed', '?')} "
             f"monotonic_p99="
             f"{bool(payload.get('monotonic_p99'))}")


def _loadgen_panel(payload: Mapping) -> str:
    series: Dict[str, List[Point]] = {}
    for cell in payload.get("cells", ()):
        p99 = cell.get("p99_us")
        if p99 is None:
            p99 = cell.get("p99_lower_bound_us")
        if p99 is None:
            continue
        series.setdefault(cell.get("preset", "?"), []).append(
            (float(cell.get("offered_qps", 0.0)), float(p99)))
    chart = svg_chart(series, x_label="offered QPS",
                      y_label="response p99 (us)")
    knee_rows = [
        (knee.get("preset", "?"),
         _fmt(knee.get("sustained_qps"), ",.0f"),
         (_fmt(knee["sustained_fraction_of_dram"], ".1%")
          if knee.get("sustained_fraction_of_dram") is not None else "-"),
         knee.get("status", "-"))
        for knee in payload.get("knees", ())
    ]
    knees = _table(("preset", "sustained QPS under SLO",
                    "fraction of DRAM saturation", "status"), knee_rows)
    return _section(
        "Loadgen knee curves", chart + knees,
        note=f"SLO p99 <= {_fmt(payload.get('slo_us'), ',.1f')} us; "
             "censored cells plot their censoring-corrected lower "
             "bound")


def _profile_panel(payloads: Sequence[Tuple[str, Mapping]]) -> str:
    parts = []
    for source, payload in payloads:
        rows = [(spot.get("function", "?"),
                 _fmt(spot.get("calls"), ",.0f"),
                 _fmt(spot.get("total_s"), ".3f"),
                 _fmt(spot.get("cumulative_s"), ".3f"))
                for spot in (payload.get("hotspots") or ())[:10]]
        fallbacks = payload.get("scalar_fallbacks")
        fallback_note = ""
        if fallbacks:
            reasons = "; ".join(
                f"{k} x{v}" for k, v in sorted(
                    (payload.get("fallback_reasons") or {}).items()))
            fallback_note = (f"<p class='bad'>scalar fallbacks: "
                             f"{_esc(_fmt(float(fallbacks), '.0f'))}"
                             f" ({_esc(reasons)})</p>")
        parts.append(
            f"<h3>{_esc(source)} &mdash; "
            f"{_esc(payload.get('experiment', '?'))} on "
            f"{_esc(payload.get('backend', '?'))}, "
            f"{_esc(_fmt(payload.get('events_per_second'), ',.0f'))} "
            "events/s</h3>" + fallback_note
            + _table(("function", "calls", "tottime s", "cumtime s"),
                     rows))
    return _section("Profile hotspots", "".join(parts))


def _tail_panel(records: Sequence[RunRecord]) -> str:
    """Latest report/simulate record's latency attribution metrics."""
    latest: Optional[RunRecord] = None
    for record in records:
        if record.verb in ("report", "simulate"):
            latest = record
    if latest is None:
        return _section("Tail-latency attribution",
                        "<p class='muted'>no report/simulate ledger "
                        "records yet</p>")
    rows = [(key, _fmt(value))
            for key, value in latest.metrics.items()
            if any(token in key for token in
                   ("p99", "p50", "mean", "miss_ratio", "backlog"))]
    return _section(
        "Tail-latency attribution", _table(("metric", "value"), rows),
        note=f"from {latest.verb} record {latest.record_id[:8]} "
             f"({latest.timestamp})")


# ------------------------------------------------------------- assembly --

_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 960px; color: #1a1a2e;
       padding: 0 1em; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 1.8em; }
h3 { font-size: 1.0em; }
table { border-collapse: collapse; margin: 0.6em 0; width: 100%; }
th, td { border-bottom: 1px solid #ddd; padding: 3px 8px;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f4f4f8; }
.muted { color: #777; } .ok { color: #2a7a2a; font-weight: 600; }
.bad { color: #b33; font-weight: 600; }
.tick { font-size: 10px; fill: #666; }
.legend { margin-right: 1.2em; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; border-radius: 2px; }
.spark { margin: 0.4em 0; }
section { page-break-inside: avoid; }
"""


def build_dashboard(records: Sequence[RunRecord],
                    payloads: Sequence[Tuple[str, dict]] = ()) -> str:
    """Assemble the full HTML document from ledger + bench payloads."""
    grouped: Dict[str, List[Tuple[str, dict]]] = {}
    for source, payload in payloads:
        grouped.setdefault(_classify_payload(payload), []).append(
            (source, payload))

    sections = [_ledger_panel(records),
                _kernel_trajectory_panel(records)]
    if grouped.get("kernel"):
        sections.append(_kernel_panel(grouped["kernel"][-1][1]))
    if grouped.get("sweep"):
        sections.append(_sweep_panel(grouped["sweep"][-1][1]))
    if grouped.get("chaos"):
        sections.append(_chaos_panel(grouped["chaos"][-1][1]))
    if grouped.get("loadgen"):
        sections.append(_loadgen_panel(grouped["loadgen"][-1][1]))
    if grouped.get("profile"):
        sections.append(_profile_panel(grouped["profile"]))
    sections.append(_tail_panel(records))

    source_list = ", ".join(sorted(source for source, _ in payloads)) \
        or "none"
    return (
        "<!doctype html>\n<html lang='en'><head>"
        "<meta charset='utf-8'>"
        "<meta name='viewport' content='width=device-width, "
        "initial-scale=1'>"
        "<title>repro observatory</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>AstriFlash repro &mdash; run ledger &amp; regression "
        "observatory</h1>"
        f"<p class='muted'>{len(records)} ledger records &middot; "
        f"bench files: {_esc(source_list)}</p>"
        + "".join(sections)
        + "</body></html>\n"
    )


def render_dashboard(out: os.PathLike,
                     ledger: Optional[os.PathLike] = None,
                     bench_paths: Optional[Sequence[os.PathLike]] = None,
                     scan_dir: os.PathLike = ".") -> Path:
    """Read inputs, build, and write the dashboard; returns the path."""
    records = read_ledger(ledger)
    paths = list(bench_paths) if bench_paths is not None \
        else discover_bench_files(scan_dir)
    document = build_dashboard(records, load_bench_payloads(paths))
    target = Path(out)
    if target.parent and not target.parent.is_dir():
        raise ReproError(f"output directory {target.parent} does not exist")
    target.write_text(document, encoding="utf-8")
    return target
