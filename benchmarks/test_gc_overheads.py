"""Benchmark: regenerate the Sec. VI-D garbage-collection analysis."""

from conftest import run_once

from repro.harness import run_experiment


def test_gc_overheads(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "gc_overheads",
                      scale=harness_scale)
    print("\n" + result.format_table())

    rows = {row[0]: row[1] for row in result.rows}
    # Paper: ~4% of requests blocked at 256 GiB, <1% at 1 TiB.
    assert abs(rows[256] - 0.04) < 1e-9
    assert rows[1024] <= 0.01
    # Blocking scales inversely with capacity (more planes).
    assert rows[128] > rows[256] > rows[512] > rows[1024]
