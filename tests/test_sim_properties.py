"""Property-based tests for the simulation kernel and resources."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, Server, Store, spawn


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        engine = Engine()
        fired_times = []
        for delay in delays:
            engine.schedule(delay, lambda: fired_times.append(engine.now))
        engine.run()
        assert fired_times == sorted(fired_times)
        assert len(fired_times) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=60),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, delays, data):
        engine = Engine()
        fired = []
        events = [
            engine.schedule(delay, fired.append, index)
            for index, delay in enumerate(delays)
        ]
        to_cancel = data.draw(st.sets(
            st.integers(0, len(events) - 1), max_size=len(events)
        ))
        for index in to_cancel:
            engine.cancel(events[index])
        engine.run()
        assert sorted(fired) == sorted(
            set(range(len(events))) - to_cancel
        )

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_process_sleep_sums(self, sleeps):
        engine = Engine()
        done = []

        def sleeper():
            for gap in sleeps:
                yield gap
            done.append(engine.now)

        spawn(engine, sleeper())
        engine.run()
        assert done[0] == sum(sleeps)


class TestServerProperties:
    @given(st.integers(1, 4), st.lists(
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=60, deadline=None)
    def test_server_conserves_work(self, capacity, service_times):
        """Total busy time equals the sum of services; finish time is at
        least the critical path and at most the serial sum."""
        engine = Engine()
        server = Server(engine, capacity)
        finish = []

        def client(duration):
            grant = server.acquire()
            if grant is not None:
                yield grant
            yield duration
            server.release()
            finish.append(engine.now)

        for duration in service_times:
            spawn(engine, client(duration))
        engine.run()
        makespan = max(finish)
        serial = sum(service_times)
        assert makespan <= serial + 1e-6
        assert makespan >= serial / capacity - 1e-6
        assert server.busy == 0

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40),
           st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_store_is_fifo_and_lossless(self, items, capacity):
        engine = Engine()
        store = Store(engine, capacity=capacity)
        received = []

        def producer():
            for item in items:
                signal = store.put(item)
                if signal is not None:
                    yield signal
                yield 1.0

        def consumer():
            from repro.sim import Ready
            for _ in items:
                slot = store.get()
                if isinstance(slot, Ready):
                    received.append(slot.item)
                else:
                    received.append((yield slot))
                yield 0.5

        spawn(engine, producer())
        spawn(engine, consumer())
        engine.run()
        assert received == items
