"""Full-system assembly and simulation runner (the paper's headline
contribution wired to every substrate)."""

from repro.core.machine import Machine, PTES_PER_PAGE
from repro.core.runner import Runner, SimulationResult, TIME_QUANTUM_NS

__all__ = [
    "Machine",
    "PTES_PER_PAGE",
    "Runner",
    "SimulationResult",
    "TIME_QUANTUM_NS",
]
