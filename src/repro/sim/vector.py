"""Vectorized batch-execution backend (DESIGN.md §4h).

The scalar engine advances one heap pop at a time; most of those pops
are compute-quantum resumes whose timing is fully determined the moment
the job is dispatched.  This module batches that predictable work into
*epochs* between event horizons:

* whole jobs are **planned** up front — zipf pages, compute jitter and
  TLB draws are pulled as numpy blocks from the *same* RNG streams the
  scalar path consumes one call at a time (`BatchedRandom`,
  `ZipfianGenerator.sample_block`), so stream positions stay aligned;
* per-step latencies are materialized with numpy and the quantum
  boundaries recovered by a sequential scan that re-runs the scalar
  accumulation adds bit-for-bit (float addition is non-associative, so
  boundaries cannot come from a block cumsum);
* the DRAM-only single-core measurement loop is then **fused**: bursts
  retire without touching the event heap at all, and the engine clock /
  event tally are synchronized in batches via `Engine.advance_batch`;
* the Flash-Sync single-core loop keeps the event engine (misses run
  the full FC→BC→flash machinery unchanged) but probes hit runs
  through `DramCacheOrganization.lookup_many` one burst at a time;
* **open-loop and multi-core DRAM-only** shapes run a *merged event
  horizon* (`run_merged`): a heap-free (time, seq) mirror of the
  scalar schedule interleaving per-stream arrival events (gaps
  pre-drawn in blocks via the arrival processes' ``gap_block``
  protocol), per-core burst resumes, and the measurement boundary.
  Cores advance in lockstep bounded by the earliest cross-core event;
  steps are dealt from global per-stream cursors so shared-RNG draw
  order matches the scalar interleave exactly.

Everything else — tracing, fault plans, finite arrival traces,
multiplexed-burst modes, multi-core Flash-Sync — **falls back to the
scalar path**, which remains the golden reference.  The contract is
bit-identity: same `state_fingerprint`, same deterministic stats, same
`engine.events_executed`, enforced by tests/test_vector_backend.py and
the CI perf-smoke job.

Selection: ``REPRO_BACKEND=vector`` (env) or ``backend="vector"``
(Runner/CLI).  Default is ``scalar`` at the Runner level; the sweep
drivers (loadgen, chaos, figure harness) default to vector via
:func:`preferred_backend` — safe because :func:`classify` falls back
per run shape.
"""

from __future__ import annotations

import os
import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Recognized backend names.
BACKENDS = ("scalar", "vector")

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend to use: explicit argument, else $REPRO_BACKEND,
    else ``scalar``."""
    name = explicit if explicit else os.environ.get(ENV_VAR, "")
    name = (name or "scalar").strip().lower()
    if name not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ConfigurationError(
            f"unknown backend {name!r}; known: {known}"
        )
    return name


def preferred_backend(explicit: Optional[str] = None) -> str:
    """The backend for harness-level sweep fan-out: explicit argument,
    else ``$REPRO_BACKEND``, else ``vector``.

    Unlike :func:`resolve_backend` (whose unset default is scalar —
    the Runner-level golden reference), the sweep drivers default to
    the vector backend: :func:`classify` vets every run shape and
    falls back per run, so vector-by-default only changes wall time,
    never results.  Setting ``REPRO_BACKEND=scalar`` still forces the
    scalar engine everywhere (the CI A/B lever).
    """
    if explicit:
        return resolve_backend(explicit)
    if os.environ.get(ENV_VAR, "").strip():
        return resolve_backend(None)
    return "vector"


# Run-shape telemetry for the vector backend, process-wide (mirrors
# runner._WALL_TOTALS).  Deliberately *not* part of SimulationResult
# counters: results must stay byte-identical across backends.
_STATS: Dict[str, int] = {}


def _reset_stats() -> None:
    _STATS.update({
        "fused_runs": 0,        # DRAM-only runs on the fused loop
        "job_epoch_runs": 0,    # Flash-Sync runs on the job-epoch loop
        "open_loop_runs": 0,    # single-core open-loop merged runs
        "multi_core_runs": 0,   # multi-core merged runs (open or closed)
        "scalar_fallbacks": 0,  # vector requested but shape unsupported
        "epochs": 0,            # bursts retired without a heap pop
        "batched_jobs": 0,      # jobs planned as a block
        "batched_steps": 0,     # steps materialized through numpy
        "hit_run_probes": 0,    # tag probes served via lookup_many
        "merged_arrivals": 0,   # arrival events on the merged horizon
    })


#: Per-reason fallback counts (reason string -> occurrences since the
#: last reset) — the surfaced form of scalar_fallbacks: ``repro
#: profile``/``bench-kernel`` JSON embed it and the CLI warns on
#: stderr when a requested vector run silently fell back.
_FALLBACK_REASONS: Dict[str, int] = {}

_reset_stats()
_LAST_FALLBACK_REASON = ""


def stats() -> Dict[str, int]:
    """Snapshot of the process-wide vector-backend telemetry."""
    return dict(_STATS)


def reset_stats() -> None:
    """Zero the telemetry (test isolation)."""
    _reset_stats()
    _FALLBACK_REASONS.clear()


def run_stats() -> Dict[str, int]:
    """The live telemetry dict (internal: the vector loops bump it)."""
    return _STATS


def last_fallback_reason() -> str:
    return _LAST_FALLBACK_REASON


def fallback_reasons() -> Dict[str, int]:
    """Snapshot of per-reason scalar-fallback counts since reset."""
    return dict(_FALLBACK_REASONS)


# --------------------------------------------------------------- RNG bridge --


class BatchedRandom:
    """Block draws from a ``random.Random`` via numpy, stream-exactly.

    CPython's ``random.Random`` and ``numpy.random.RandomState`` share
    the Mersenne-Twister core *and* the 53-bit double construction
    (``genrand_res53``), so transplanting the 624-word key/position
    state lets numpy produce the next ``n`` doubles bit-identically to
    ``n`` calls of ``rng.random()``.

    The 625-word state transplant costs far more than a small draw, so
    draws are served from an internal buffer and the Python RNG is
    *not* touched per call: refills chain fresh numpy draws onto the
    unserved tail, and the owner calls :meth:`sync` once (end of run)
    to fast-forward the Python stream to exactly the consumed position
    (one fresh transplant plus a replay of the consumed count).
    Between construction and :meth:`sync`, drawing from the underlying
    ``random.Random`` directly would fork the stream — the vector run
    shapes guarantee no such consumer exists.
    """

    __slots__ = ("_rng", "_np", "_block", "_buffer", "_cursor",
                 "_drawn")

    def __init__(self, rng: random.Random, block: int = 8192) -> None:
        self._rng = rng
        self._np = np.random.RandomState()
        self._block = block
        self._buffer: Optional[np.ndarray] = None
        self._cursor = 0
        # Doubles drawn from the numpy stream since bridging; consumed
        # position = _drawn - unserved tail.
        self._drawn = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` uniform doubles of the underlying stream."""
        buffer = self._buffer
        cursor = self._cursor
        if buffer is not None and cursor + n <= buffer.shape[0]:
            self._cursor = cursor + n
            return buffer[cursor:self._cursor]
        return self._refill_take(n)

    def _bridge_in(self) -> None:
        _version, internal, _gauss = self._rng.getstate()
        self._np.set_state(
            ("MT19937",
             np.asarray(internal[:-1], dtype=np.uint32),
             internal[-1])
        )

    def _refill_take(self, n: int) -> np.ndarray:
        npr = self._np
        if self._buffer is None:
            version = self._rng.getstate()[0]
            if version != 3:  # pragma: no cover - all supported CPythons
                return np.array([self._rng.random() for _ in range(n)])
            self._bridge_in()
            self._drawn = 0
            head = self._buffer  # None
        else:
            head = self._buffer[self._cursor:]
            if head.shape[0] == 0:
                head = None
        need = n if head is None else n - head.shape[0]
        size = self._block if need <= self._block else need
        fresh = npr.random_sample(size)
        self._drawn += size
        self._buffer = (fresh if head is None
                        else np.concatenate((head, fresh)))
        self._cursor = n
        return self._buffer[:n]

    def unserve(self, n: int) -> None:
        """Return the last ``n`` served doubles to the buffer.

        Owners that re-buffer a :meth:`take` (e.g. the arrival
        processes' ``_UniformBlock``) call this with their unconsumed
        tail before :meth:`sync` so the Python RNG lands on the
        *consumed* position rather than the served one.
        """
        if n:
            if n > self._cursor:
                raise ValueError(
                    f"cannot unserve {n} doubles; only {self._cursor} "
                    f"served from the current buffer"
                )
            self._cursor -= n

    def sync(self) -> None:
        """Fast-forward the Python RNG to the consumed position."""
        if self._buffer is None:
            return
        consumed = self._drawn - (self._buffer.shape[0] - self._cursor)
        npr = self._np
        version, _internal, gauss_next = self._rng.getstate()
        self._bridge_in()
        if consumed:
            npr.random_sample(consumed)
        _kind, keys, pos, _has_gauss, _cached = npr.get_state(legacy=True)
        self._rng.setstate(
            (version, tuple(keys.tolist()) + (int(pos),), gauss_next)
        )
        self._buffer = None
        self._cursor = 0
        self._drawn = 0


def uniform_block(rng: random.Random, n: int) -> np.ndarray:
    """One-shot block draw with immediate resync (tests, one-offs)."""
    batched = BatchedRandom(rng, block=n)
    block = batched.take(n)
    batched.sync()
    return block


# ------------------------------------------------------------ step planning --


def step_deltas(comp: List[float], tlb_draws: np.ndarray, tlb_p: float,
                walk_ns: float) -> Tuple[List[float], List[bool]]:
    """Per-step pre-access latency and TLB-miss flags.

    Replicates the scalar expression
    ``step.compute_ns + (0.0 if draw >= tlb_p else walk_ns)`` — one
    float64 add per step, walk charged on ``draw < tlb_p`` (the exact
    complement, ties included).  Small jobs take a plain-Python pass
    (IEEE adds are the same bits either way and the per-call numpy
    overhead dominates below a few hundred steps); large blocks go
    through one numpy pass.
    """
    if len(comp) < 256:
        d1: List[float] = []
        flags: List[bool] = []
        append_d1 = d1.append
        append_flag = flags.append
        for c, draw in zip(comp, tlb_draws.tolist()):
            if draw < tlb_p:
                append_flag(True)
                append_d1(c + walk_ns)
            else:
                append_flag(False)
                append_d1(c + 0.0)
        return d1, flags
    draws = np.asarray(tlb_draws)
    missed = draws < tlb_p
    d1_arr = np.asarray(comp, dtype=np.float64) + np.where(missed, walk_ns, 0.0)
    return d1_arr.tolist(), missed.tolist()


def scan_bursts(d1: List[float], miss_flags: List[bool], flat: float,
                quantum: float) -> Tuple[List[float], List[int], List[int]]:
    """Quantum-burst boundaries for one job, scalar-add-exact.

    Re-runs the inner-loop accumulation (``acc += d1; acc += flat``,
    two separate adds, reset to 0.0 at each crossing) so burst
    durations carry the identical float rounding the scalar path
    produces.  Returns parallel lists: burst duration, steps in the
    burst, TLB misses in the burst.  The trailing partial burst is
    included when non-empty; a job whose last step lands exactly on a
    quantum boundary has no trailing burst, matching the scalar
    ``if accumulated > 0.0`` flush guard.
    """
    durations: List[float] = []
    step_counts: List[int] = []
    tlb_counts: List[int] = []
    acc = 0.0
    steps = 0
    misses = 0
    for delta, missed in zip(d1, miss_flags):
        acc += delta
        acc += flat
        steps += 1
        if missed:
            misses += 1
        if acc >= quantum:
            durations.append(acc)
            step_counts.append(steps)
            tlb_counts.append(misses)
            acc = 0.0
            steps = 0
            misses = 0
    if steps:
        durations.append(acc)
        step_counts.append(steps)
        tlb_counts.append(misses)
    return durations, step_counts, tlb_counts


def scan_durations(d1: List[float], flat: float,
                   quantum: float) -> List[float]:
    """Burst durations only — the :func:`scan_bursts` fold without the
    per-burst step/miss bookkeeping (fast path for block-planned jobs;
    crossing jobs rescan with :func:`scan_bursts` for the counts).

    The trailing-burst guard is ``acc > 0.0`` rather than a step
    count: every step contributes a strictly positive delta (compute
    jitter > 0, flat DRAM latency > 0), so a zero accumulator means
    the last step landed exactly on a quantum boundary.
    """
    durations: List[float] = []
    append = durations.append
    acc = 0.0
    for delta in d1:
        acc += delta
        acc += flat
        if acc >= quantum:
            append(acc)
            acc = 0.0
    if acc > 0.0:
        append(acc)
    return durations


# ----------------------------------------------------------- run-shape gate --


def classify_shape(mode, num_cores: int, open_loop: bool = False,
                   tracing: bool = False, faulted: bool = False,
                   finite_trace: bool = False,
                   writes_enabled: bool = False
                   ) -> Tuple[Optional[str], str]:
    """Pure run-shape gate: which vector loop (if any) fits the shape.

    Returns ``(kind, reason)`` where kind is ``"fused"`` (single-core
    closed-loop DRAM-only, no event heap), ``"open-loop"`` /
    ``"multi-core"`` (DRAM-only merged event horizon),
    ``"job-epoch"`` (single-core Flash-Sync, batched hit runs) or
    ``None`` with the fallback reason.  The gates mirror DESIGN.md
    §4h: per-event observation (tracing), per-read fault draws, a
    finite arrival trace that ends the stream mid-window, cross-core
    sharing of the DRAM cache/flash path, and the multiplexed-burst
    modes keep the scalar path.

    Pure on purpose: the sweep drivers (loadgen/chaos) call it with
    config-derived facts to report deterministic per-cell backend
    expectations without running anything; :func:`classify` derives
    the same facts from a live runner.
    """
    from repro.config.system import PagingMode

    if tracing:
        return None, "tracing active (per-event observation)"
    if open_loop and finite_trace:
        return None, ("open-loop trace arrivals exhaust "
                      "(finite source ends the stream)")
    if mode is PagingMode.DRAM_ONLY:
        if num_cores != 1:
            return "multi-core", ""
        if open_loop:
            return "open-loop", ""
        return "fused", ""
    if mode is PagingMode.FLASH_SYNC:
        if faulted:
            return None, "fault plan active (per-read outcome draws)"
        if writes_enabled:
            # Admission hooks run per access (sketch observes, write-
            # through spawns) — the batched hit-run probe would skip
            # them, so the write path keeps the scalar loop.
            return None, "writes"
        if num_cores != 1:
            return None, ("multi-core flash-sync (cores share the "
                          "DRAM cache and flash path)")
        return "job-epoch", ""
    return None, f"mode {mode.name} multiplexes threads per burst"


def classify(runner) -> Tuple[Optional[str], str]:
    """:func:`classify_shape` on a live runner's actual shape."""
    from repro.workloads.arrival import ClosedLoop, TraceArrivals

    arrivals = runner.arrivals
    open_loop = not isinstance(arrivals, ClosedLoop)
    finite_trace = (isinstance(arrivals, TraceArrivals)
                    and not arrivals.cycle)
    faulted = (runner.machine.flash is not None
               and runner.machine.flash.faults is not None)
    writes_enabled = (runner.machine.flash is not None
                      and runner.machine.flash.writes is not None)
    return classify_shape(
        runner.config.mode, runner.config.num_cores,
        open_loop=open_loop, tracing=runner._tracer is not None,
        faulted=faulted, finite_trace=finite_trace,
        writes_enabled=writes_enabled,
    )


def record_fallback(reason: str) -> None:
    global _LAST_FALLBACK_REASON
    _STATS["scalar_fallbacks"] += 1
    _FALLBACK_REASONS[reason] = _FALLBACK_REASONS.get(reason, 0) + 1
    _LAST_FALLBACK_REASON = reason


# ------------------------------------------------------- fused DRAM-only loop --


#: Steps planned per numpy pass on the fused path (amortizes the
#: per-call numpy overhead over several thousand steps).  The job
#: count per block adapts to the workload's steps-per-job so long
#: requests don't balloon a block past the measurement window.
PLAN_BLOCK_STEPS = 12288

#: Jobs in the first (probe) block, before steps-per-job is known.
PLAN_PROBE_JOBS = 16

#: Safety margin for the interior-job fast path.  ``sum(durations)``
#: is a left-fold like the exact per-burst adds but its rounding can
#: differ by a few ulp (~1e-9 ns at these magnitudes); a job is only
#: fast-pathed when even that estimate plus this margin stays inside
#: the window, so truncation decisions always take the exact path.
_FAST_PATH_GUARD_NS = 64.0


def run_fused(runner) -> None:
    """Measurement phase of a single-core DRAM-only run, heap-free.

    Replaces ``spawn(core_loop) + engine.run(until=end)`` for the shape
    :func:`classify` vetted.  Event accounting replicates the scalar
    run exactly: one spawn resume at t=0, one ``start_measurement``
    event at ``warmup_ns`` (which outranks any same-time burst resume
    by sequence number), and one event per retired burst; a burst whose
    resume time falls past the window end never executes — its steps
    were already generated (accesses/TLB counted) but its busy time is
    not charged, matching the scalar truncation semantics.

    Two-speed structure: jobs that provably retire strictly inside the
    measurement window take a batched path (counters updated per job;
    ``now``/busy time still advanced burst-by-burst, because those are
    sequential float folds).  Jobs that might cross ``warmup`` or the
    window end replay the scalar per-burst order exactly.  Workloads
    exposing ``plan_compute_block`` are planned ``PLAN_BLOCK_STEPS``
    steps at a time in one numpy pass; others are planned per job via
    :meth:`~repro.workloads.base.Workload.plan_steps`.
    """
    from repro.core.runner import TIME_QUANTUM_NS

    machine = runner.machine
    engine = machine.engine
    scale = runner.config.scale
    warmup = scale.warmup_ns
    end = warmup + scale.measurement_ns
    flat = machine.flat_dram_latency_ns
    tlb_p = runner._tlb_miss_probability
    walk_ns = runner._flat_walk_ns
    quantum = TIME_QUANTUM_NS
    workload = runner.workload
    plan = workload.plan_steps
    plan_block = getattr(workload, "plan_compute_block", None)
    runner._vector_tlb_rng = BatchedRandom(runner._rng)
    rng_take = runner._vector_tlb_rng.take
    # classify() vetted a closed-loop single-core run with no tracer:
    # _next_job always mints a fresh job (queues stay empty) and
    # _finish_job's live-set bookkeeping is unobservable (nothing
    # cancels or censors closed-loop jobs), so both are inlined here.
    # The bound tracker methods re-check the measurement flag / window
    # themselves, exactly as the runner methods would.
    make_job = workload.make_job
    finish_job = runner._finish_job
    service_record = runner.service_latency.record
    response_record = runner.response_latency.record
    record_completion = runner.throughput.record_completion
    completed_incr = runner._jobs_completed_count.incr
    advance = engine.advance_batch
    vstats = _STATS

    vstats["fused_runs"] += 1
    now = engine.now
    delta_events = 1  # the core's spawn resume pops at t=0
    measuring = False
    jobs_done = 0
    steps_done = 0
    epochs_done = 0
    # Shadow accumulators, written back at the measurement boundary
    # (the snapshot _start_measurement takes) and at end of run.  The
    # float adds happen in scalar order; only the attribute traffic is
    # batched.  TLB misses are integer counts, so one deferred
    # Counter.add at end of run equals the scalar per-miss increments.
    busy_ns = runner._busy_ns
    accesses = runner._accesses
    tlb_misses = 0
    # Per-job planned entries: (d1, miss_flags, tlb_total).  Burst
    # boundaries are scanned lazily at pop time so jobs planned past
    # the window end (a block always overshoots) cost no python scan;
    # per-burst step/miss counts are only materialized (scan_bursts)
    # for jobs that might cross a window boundary.
    planned: Deque[Tuple[memoryview, np.ndarray, int]] = deque()
    fast_end = end - _FAST_PATH_GUARD_NS
    block_jobs = PLAN_PROBE_JOBS

    while True:
        job = make_job()
        job.arrived_at = now
        job.started_at = now
        if plan_block is not None:
            if not planned:
                comp, steps_per_job = plan_block(block_jobs)
                block_jobs = max(PLAN_PROBE_JOBS,
                                 PLAN_BLOCK_STEPS // steps_per_job)
                missed = rng_take(comp.shape[0]) < tlb_p
                # memoryview: zero-copy slices whose elements read back
                # as plain Python floats (iteration matches a tolist'd
                # list bit-for-bit without paying the conversion).
                d1_block = memoryview(comp + np.where(missed, walk_ns,
                                                      0.0))
                tlb_totals = missed.reshape(-1, steps_per_job) \
                                   .sum(axis=1).tolist()
                for j, tlb_total in enumerate(tlb_totals):
                    a = j * steps_per_job
                    b = a + steps_per_job
                    # miss flags stay an ndarray view; only crossing
                    # jobs (scan_bursts rescan) pay the tolist.
                    planned.append((d1_block[a:b], missed[a:b],
                                    tlb_total))
            d1, miss_flags, tlb_total = planned.popleft()
            durations = scan_durations(d1, flat, quantum)
            num_steps = len(d1)
            step_counts = None
        else:
            comp, _pages, _writes = plan(job)
            num_steps = len(comp)
            d1, miss_flags = step_deltas(comp, rng_take(num_steps),
                                         tlb_p, walk_ns)
            durations, step_counts, tlb_counts = scan_bursts(
                d1, miss_flags, flat, quantum
            )
            tlb_total = sum(tlb_counts)
        jobs_done += 1
        steps_done += num_steps
        epochs_done += len(durations)

        if measuring and now + sum(durations) <= fast_end:
            # Interior job: every burst retires strictly inside the
            # window, so counters batch per job; now/busy stay
            # burst-sequential (float fold order is observable).  The
            # engine clock is stored directly; the event tally is
            # settled in one advance_batch at end of run (nothing
            # reads it mid-run on this vetted shape).
            accesses += num_steps
            tlb_misses += tlb_total
            for duration in durations:
                now += duration
                busy_ns += duration
            delta_events += len(durations)
            engine._now = now
            service_record(now - job.started_at)
            response_record(now - job.arrived_at)
            record_completion()
            completed_incr()
            continue

        # Boundary-exact path: warmup / window-end crossing candidates
        # replay the scalar per-burst order.
        if step_counts is None:
            durations, step_counts, tlb_counts = scan_bursts(
                d1, miss_flags.tolist(), flat, quantum
            )
        truncated = False
        for k in range(len(durations)):
            # Burst k's steps are generated (counters bumped) before
            # its resume is "scheduled" — scalar order.
            accesses += step_counts[k]
            tlb_misses += tlb_counts[k]
            duration = durations[k]
            resume_at = now + duration
            if not measuring and resume_at >= warmup:
                # start_measurement was scheduled before any burst
                # resume, so at equal times it fires first.
                advance(warmup, delta_events + 1)
                delta_events = 0
                runner._busy_ns = busy_ns
                runner._accesses = accesses
                runner._start_measurement()
                measuring = True
            if resume_at > end:
                truncated = True
                break
            now = resume_at
            delta_events += 1
            busy_ns += duration
        if truncated:
            # The in-flight job the window cut off: the only live-set
            # entry a closed-loop scalar run ends with (feeds the
            # unfinished/inflight/backlog result fields).
            runner._live_jobs[job.job_id] = job
            break
        engine._now = now
        finish_job(job)
    if not measuring:  # pragma: no cover - warmup shorter than any job
        advance(warmup, delta_events + 1)
        delta_events = 0
        runner._busy_ns = busy_ns
        runner._accesses = accesses
        runner._start_measurement()
    advance(end, delta_events)
    runner._busy_ns = busy_ns
    runner._accesses = accesses
    if tlb_misses:
        runner._tlb_miss_count.add(tlb_misses)
    vstats["batched_jobs"] += jobs_done
    vstats["batched_steps"] += steps_done
    vstats["epochs"] += epochs_done


def execution_summary(backend: str, shape_counts) -> Dict[str, object]:
    """Deterministic per-sweep backend accounting for bench schemas.

    ``shape_counts`` is an iterable of ``(mode, num_cores, open_loop,
    faulted, count)`` tuples describing the runs a sweep issued — or
    six-element tuples with ``writes_enabled`` inserted before the
    count (the writes sweep; older callers keep the 5-tuple).  Each
    shape is classified via :func:`classify_shape` (config-derived
    facts only — never run results, which may come from the cache), so
    the summary is byte-identical across invocations of the same
    sweep.  The ``fallback_reasons`` histogram is the sweep-level
    surface of the process-wide :func:`fallback_reasons` counters.
    """
    summary: Dict[str, object] = {
        "backend": backend,
        "vector_cells": 0,
        "scalar_cells": 0,
        "vector_kinds": {},
        "fallback_reasons": {},
    }
    kinds: Dict[str, int] = summary["vector_kinds"]
    reasons: Dict[str, int] = summary["fallback_reasons"]
    for shape in shape_counts:
        if len(shape) == 6:
            mode, num_cores, open_loop, faulted, writes_enabled, count = shape
        else:
            mode, num_cores, open_loop, faulted, count = shape
            writes_enabled = False
        if backend != "vector":
            summary["scalar_cells"] += count
            continue
        kind, reason = classify_shape(mode, num_cores,
                                      open_loop=open_loop,
                                      faulted=faulted,
                                      writes_enabled=writes_enabled)
        if kind is None:
            summary["scalar_cells"] += count
            reasons[reason] = reasons.get(reason, 0) + count
        else:
            summary["vector_cells"] += count
            kinds[kind] = kinds.get(kind, 0) + count
    return summary


# ---------------------------------------------------- merged event horizon --


#: Gaps pre-drawn per arrival-stream refill on the merged loop.
ARRIVAL_GAP_BLOCK = 64

#: Steps dealt (and TLB draws bridged) per refill on the merged loop.
MERGED_STEP_CHUNK = 4096


def run_merged(runner) -> None:
    """Measurement phase for the open-loop and multi-core DRAM-only
    shapes: a heap-free (time, seq) mirror of the scalar schedule.

    The scalar run's heap holds at most one pending resume per core,
    one pending arrival per stream, and the measurement boundary; the
    merged loop keeps exactly those slots and always processes the
    global (time, seq) minimum, so cores advance in lockstep bounded
    by the earliest cross-core event and every handler runs at the
    same simulated instant, in the same order, as its scalar twin.
    Sequence numbers mirror the scalar spawn order (arrival streams,
    then cores, then the measurement callback); a local counter
    continues where the spawn seeds left off.

    Draw-order exactness: shared RNG streams are consumed at the same
    event-processing points as the scalar run.  Arrival gaps come from
    the process's ``gap_block`` buffer (per-call ``next_gap_ns`` for
    custom processes); per-step TLB draws come from one bridged cursor
    consumed in step-pull order; workloads exposing
    ``plan_step_block`` (arrayswap) have their compute jitter dealt
    from a global per-step cursor in the same pull order, with zipf
    page draws skipped entirely — pages are unobserved in DRAM-only
    mode and RNG stream *positions* are outside the bit-identity
    contract.  Other workloads pull their real step generators lazily,
    which is the scalar draw order by construction.

    The runner's own ``_next_job``/``_finish_job`` run unchanged, so
    queue/live-set bookkeeping — and with it the open-loop censoring
    contract (same ``unfinished_jobs``, same
    ``response_p99_lower_bound_ns``) — is the scalar code, not a
    reimplementation.  A burst whose resume falls past the window end
    never executes: its steps were already generated (accesses/TLB
    counted, streams consumed) but its busy time is not charged and
    its job stays live, matching scalar truncation.
    """
    from repro.core.runner import TIME_QUANTUM_NS
    from repro.workloads.arrival import ClosedLoop

    machine = runner.machine
    engine = machine.engine
    scale = runner.config.scale
    warmup = scale.warmup_ns
    end = warmup + scale.measurement_ns
    flat = machine.flat_dram_latency_ns
    tlb_p = runner._tlb_miss_probability
    walk_ns = runner._flat_walk_ns
    quantum = TIME_QUANTUM_NS
    workload = runner.workload
    num_cores = runner.config.num_cores
    arrivals = runner.arrivals
    open_loop = not isinstance(arrivals, ClosedLoop)
    queues = runner._queues
    next_job = runner._next_job
    finish_job = runner._finish_job
    make_job = workload.make_job
    advance = engine.advance_batch
    vstats = _STATS

    vstats["multi_core_runs" if num_cores != 1 else "open_loop_runs"] += 1

    runner._vector_tlb_rng = BatchedRandom(runner._rng)
    tlb_take = runner._vector_tlb_rng.take

    plan_block = getattr(workload, "plan_step_block", None)
    dealt = plan_block is not None
    steps_per_job = workload.uniform_steps_per_job if dealt else 0
    # Dealt-path buffers: per-step (compute + walk) deltas and miss
    # flags, 1:1 aligned with the TLB cursor.  Generic path: raw TLB
    # draws only; compute comes from the job's own step generator.
    d1_buf: List[float] = []
    flag_buf: List[bool] = []
    buf_pos = 0
    draw_buf: List[float] = []
    draw_pos = 0

    gap_draw = getattr(arrivals, "gap_block", None)
    gap_buf: List[float] = []
    gap_pos = 0
    gaps_dead = False

    # Event slots.  Core: [time, seq, busy_to_charge, job_to_finish];
    # arrival: [time, seq, started] (started=False is the spawn resume
    # that draws the first gap without delivering a job).
    seq = 0
    arr_evt: List[Optional[list]] = []
    if open_loop:
        for _ in range(num_cores):
            arr_evt.append([0.0, seq, False])
            seq += 1
    core_evt: List[Optional[list]] = []
    for _ in range(num_cores):
        core_evt.append([0.0, seq, 0.0, None])
        seq += 1
    meas: Optional[list] = [warmup, seq]
    ctr = seq + 1

    core_job: List[Optional[object]] = [None] * num_cores
    core_left = [0] * num_cores      # dealt: steps left in current job
    core_pull = [None] * num_cores   # generic: bound job.next_step
    parked = [False] * num_cores

    delta_events = 0
    busy_ns = runner._busy_ns
    accesses = runner._accesses
    accesses_start = accesses
    tlb_misses = 0
    jobs_done = 0
    bursts_done = 0
    arrivals_done = 0

    while True:
        # Global (time, seq) minimum over the pending slots.
        btime = None
        bseq = 0
        bkind = 0   # 1 = core, 2 = arrival, 3 = measurement
        bidx = 0
        for i in range(num_cores):
            e = core_evt[i]
            if e is not None and (btime is None or e[0] < btime
                                  or (e[0] == btime and e[1] < bseq)):
                btime, bseq, bkind, bidx = e[0], e[1], 1, i
        for s in range(len(arr_evt)):
            e = arr_evt[s]
            if e is not None and (btime is None or e[0] < btime
                                  or (e[0] == btime and e[1] < bseq)):
                btime, bseq, bkind, bidx = e[0], e[1], 2, s
        if meas is not None and (btime is None or meas[0] < btime
                                 or (meas[0] == btime and meas[1] < bseq)):
            btime, bseq, bkind = meas[0], meas[1], 3
        if btime is None or btime > end:
            break

        if bkind == 3:
            # advance() credits this event itself (+1) and lands the
            # shadow counters so the start_measurement snapshots see
            # exactly the scalar state.
            advance(warmup, delta_events + 1)
            delta_events = 0
            runner._busy_ns = busy_ns
            runner._accesses = accesses
            runner._start_measurement()
            meas = None
            continue

        delta_events += 1
        t = btime
        engine._now = t

        if bkind == 2:
            e = arr_evt[bidx]
            if e[2]:
                job = make_job()
                job.arrived_at = t
                queues[bidx].append(job)
                arrivals_done += 1
                if parked[bidx]:
                    # _wake: the core's resume outranks (by seq) the
                    # next arrival scheduled just below — scalar order.
                    parked[bidx] = False
                    core_evt[bidx] = [t, ctr, 0.0, None]
                    ctr += 1
            else:
                e[2] = True
            if gaps_dead:
                gap = None
            elif gap_draw is not None:
                if gap_pos >= len(gap_buf):
                    gap_buf = gap_draw(ARRIVAL_GAP_BLOCK)
                    gap_pos = 0
                if gap_pos < len(gap_buf):
                    gap = gap_buf[gap_pos]
                    gap_pos += 1
                else:
                    gap = None
                    gaps_dead = True  # finite source ran dry
            else:
                gap = arrivals.next_gap_ns()
            if gap is None:
                arr_evt[bidx] = None  # this stream's process returns
            else:
                e[0] = t + gap
                e[1] = ctr
                ctr += 1
            continue

        # Core event: charge the pending burst, finish its job if the
        # burst was the trailing flush, then continue the dispatch /
        # step loop until the core parks or schedules its next resume.
        e = core_evt[bidx]
        core_evt[bidx] = None
        busy_ns += e[2]
        fin = e[3]
        if fin is not None:
            finish_job(fin)
        while True:
            job = core_job[bidx]
            if job is None:
                job = next_job(bidx)
                if job is None:
                    parked[bidx] = True
                    break
                job.started_at = t
                core_job[bidx] = job
                jobs_done += 1
                if dealt:
                    core_left[bidx] = steps_per_job
                else:
                    core_pull[bidx] = job.next_step
            acc = 0.0
            done = False
            if dealt:
                left = core_left[bidx]
                while left:
                    if buf_pos >= len(d1_buf):
                        comp = plan_block(MERGED_STEP_CHUNK)
                        missed = tlb_take(MERGED_STEP_CHUNK) < tlb_p
                        d1_buf = (comp + np.where(missed, walk_ns,
                                                  0.0)).tolist()
                        flag_buf = missed.tolist()
                        buf_pos = 0
                    acc += d1_buf[buf_pos]
                    acc += flat
                    if flag_buf[buf_pos]:
                        tlb_misses += 1
                    buf_pos += 1
                    accesses += 1
                    left -= 1
                    if acc >= quantum:
                        break
                core_left[bidx] = left
                done = not left
            else:
                pull = core_pull[bidx]
                while True:
                    step = pull()
                    if step is None:
                        done = True
                        break
                    if draw_pos >= len(draw_buf):
                        draw_buf = tlb_take(MERGED_STEP_CHUNK).tolist()
                        draw_pos = 0
                    draw = draw_buf[draw_pos]
                    draw_pos += 1
                    if draw < tlb_p:
                        tlb_misses += 1
                        acc += step.compute_ns + walk_ns
                    else:
                        acc += step.compute_ns + 0.0
                    acc += flat
                    accesses += 1
                    if acc >= quantum:
                        break
            if acc >= quantum:
                # Quantum crossing: schedule the resume.  If the job
                # also ran out of steps, the resume discovers that with
                # a zero accumulator and finishes then — scalar order.
                core_evt[bidx] = [t + acc, ctr, acc, None]
                ctr += 1
                bursts_done += 1
                break
            if done:
                if acc > 0.0:
                    # Trailing flush: busy charged and the job finished
                    # at the resume (the scalar `yield accumulated`
                    # before _finish_job).
                    core_evt[bidx] = [t + acc, ctr, acc, job]
                    ctr += 1
                    bursts_done += 1
                    core_job[bidx] = None
                    break
                finish_job(job)
                core_job[bidx] = None
                # Dispatch the next job at the same instant (the
                # scalar loop's fall-through to _next_job).

    if meas is not None:  # pragma: no cover - defensive; warmup <= end
        advance(warmup, delta_events + 1)
        delta_events = 0
        runner._busy_ns = busy_ns
        runner._accesses = accesses
        runner._start_measurement()
    advance(end, delta_events)
    runner._busy_ns = busy_ns
    runner._accesses = accesses
    if tlb_misses:
        runner._tlb_miss_count.add(tlb_misses)
    vstats["batched_jobs"] += jobs_done
    vstats["batched_steps"] += accesses - accesses_start
    vstats["epochs"] += bursts_done
    vstats["merged_arrivals"] += arrivals_done
