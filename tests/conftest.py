"""Shared test fixtures.

Warm-state snapshots (repro.snapshot) default to ``.repro_cache/`` in
the working directory; the suite points them at a session-scoped temp
directory instead so test runs stay hermetic and leave no files behind.
Within the session the store still operates normally — tests exercise
both the capture and restore paths.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _session_snapshot_dir(tmp_path_factory):
    previous = os.environ.get("REPRO_SNAPSHOT_DIR")
    os.environ["REPRO_SNAPSHOT_DIR"] = str(
        tmp_path_factory.mktemp("snapshots"))
    yield
    if previous is None:
        os.environ.pop("REPRO_SNAPSHOT_DIR", None)
    else:
        os.environ["REPRO_SNAPSHOT_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def _session_runs_dir(tmp_path_factory):
    """Point the run ledger (repro.metrics.ledger) at a session temp
    directory so CLI tests never append to the repo's ``.repro_runs/``."""
    previous = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(tmp_path_factory.mktemp("runs"))
    yield
    if previous is None:
        os.environ.pop("REPRO_RUNS_DIR", None)
    else:
        os.environ["REPRO_RUNS_DIR"] = previous
