"""Tests for the analytic queueing, bandwidth, and cost models."""

import math
import random

import pytest

from repro.analytic import (
    OverlapModel,
    astriflash_cost,
    cost_reduction_factor,
    dram_only_cost,
    erlang_c,
    fits_in_pcie_gen5,
    flash_bandwidth_per_core_gbps,
    flash_bandwidth_total_gbps,
    mm1_response_percentile,
    mmk_response_percentile,
    mmk_response_survival,
    paper_figure3_models,
)
from repro.errors import ConfigurationError


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_single_server_equals_utilization(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.5) == pytest.approx(0.5)

    def test_monotone_in_load(self):
        assert erlang_c(4, 1.0) < erlang_c(4, 3.0) < erlang_c(4, 3.9)

    def test_unstable_raises(self):
        with pytest.raises(ConfigurationError):
            erlang_c(2, 2.0)


class TestMm1Percentile:
    def test_closed_form(self):
        lam, mu = 0.5, 1.0
        p99 = mm1_response_percentile(0.99, lam, mu)
        assert p99 == pytest.approx(-math.log(0.01) / (mu - lam))

    def test_unstable_raises(self):
        with pytest.raises(ConfigurationError):
            mm1_response_percentile(0.99, 1.0, 1.0)


class TestMmkPercentile:
    def test_survival_is_monotone(self):
        values = [mmk_response_survival(t, 0.5, 0.2, 6)
                  for t in (0.0, 1.0, 5.0, 20.0)]
        assert values == sorted(values, reverse=True)
        assert values[0] == pytest.approx(1.0)

    def test_percentile_inverts_survival(self):
        lam, mu, k = 0.5, 0.2, 6
        p99 = mmk_response_percentile(0.99, lam, mu, k)
        assert mmk_response_survival(p99, lam, mu, k) == \
            pytest.approx(0.01, abs=1e-6)

    def test_k1_matches_mm1(self):
        lam, mu = 0.3, 1.0
        assert mmk_response_percentile(0.9, lam, mu, 1) == \
            pytest.approx(mm1_response_percentile(0.9, lam, mu), rel=1e-6)

    def test_against_monte_carlo(self):
        # Validate the closed-form M/M/k response survival by simulation.
        rng = random.Random(7)
        lam, mu, k = 0.04, 0.01, 6
        # Discrete-event M/M/k via event list.
        arrivals = []
        t = 0.0
        for _ in range(40_000):
            t += rng.expovariate(lam)
            arrivals.append(t)
        free_at = [0.0] * k
        responses = []
        for arrival in arrivals:
            server = min(range(k), key=lambda i: free_at[i])
            start = max(arrival, free_at[server])
            service = rng.expovariate(mu)
            free_at[server] = start + service
            responses.append(free_at[server] - arrival)
        responses.sort()
        empirical_p90 = responses[int(0.90 * len(responses))]
        analytic_p90 = mmk_response_percentile(0.90, lam, mu, k)
        assert empirical_p90 == pytest.approx(analytic_p90, rel=0.08)


class TestOverlapModels:
    def test_paper_throughput_ordering(self):
        models = {m.name: m for m in paper_figure3_models()}
        # Flash-Sync loses >80% of throughput (Sec. III-A).
        ratio_sync = (models["flash-sync"].max_throughput_per_second
                      / models["dram-only"].max_throughput_per_second)
        assert ratio_sync < 0.2
        # OS-Swap loses ~50%.
        ratio_swap = (models["os-swap"].max_throughput_per_second
                      / models["dram-only"].max_throughput_per_second)
        assert 0.4 < ratio_swap < 0.6
        # AstriFlash approaches DRAM-only.
        ratio_astri = (models["astriflash"].max_throughput_per_second
                       / models["dram-only"].max_throughput_per_second)
        assert ratio_astri > 0.95

    def test_astriflash_is_multiserver(self):
        models = {m.name: m for m in paper_figure3_models()}
        assert models["astriflash"].servers >= 5
        assert models["flash-sync"].servers == 1
        assert models["dram-only"].servers == 1

    def test_slo_40x_absorbs_flash(self):
        # Paper Sec. III-A: with an SLO of 40x the average service time,
        # AstriFlash performs within ~20% of DRAM-only.
        models = {m.name: m for m in paper_figure3_models()}
        dram, astri = models["dram-only"], models["astriflash"]
        slo_ns = 40 * dram.work_ns

        def max_load_under_slo(model):
            for load in [x / 100 for x in range(99, 0, -1)]:
                lam = load * dram.max_throughput_per_second
                if lam >= 0.999 * model.max_throughput_per_second * \
                        model.servers / model.servers:
                    continue
                try:
                    if model.percentile_ns(0.99, lam) <= slo_ns:
                        return load
                except ConfigurationError:
                    continue
            return 0.0

        dram_load = max_load_under_slo(dram)
        astri_load = max_load_under_slo(astri)
        assert astri_load >= dram_load - 0.25

    def test_latency_curve_shape(self):
        model = paper_figure3_models()[1]  # astriflash
        curve = model.latency_curve(0.99, [0.3, 0.6, 0.9])
        latencies = [latency for _, latency in curve]
        assert latencies == sorted(latencies)

    def test_invalid_load_points_raise(self):
        model = paper_figure3_models()[0]
        with pytest.raises(ConfigurationError):
            model.latency_curve(0.99, [0.0])


class TestBandwidth:
    def test_paper_numbers(self):
        # Sec. II-A: ~3% miss rate needs ~60 GB/s for 64 cores.
        # 0.5 GB/s / 64 B * 0.03 * 4096 B ~= 0.96 GB/s per core.
        per_core = flash_bandwidth_per_core_gbps(0.03)
        assert per_core == pytest.approx(0.96, rel=0.01)
        total = flash_bandwidth_total_gbps(0.03, 64)
        assert 55.0 < total < 65.0

    def test_fits_in_pcie(self):
        assert fits_in_pcie_gen5(0.03, 64)
        assert not fits_in_pcie_gen5(0.10, 64)

    def test_scales_linearly_with_miss_rate(self):
        assert flash_bandwidth_per_core_gbps(0.06) == \
            pytest.approx(2 * flash_bandwidth_per_core_gbps(0.03))

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            flash_bandwidth_per_core_gbps(1.5)
        with pytest.raises(ConfigurationError):
            flash_bandwidth_total_gbps(0.03, 0)


class TestCostModel:
    def test_20x_claim(self):
        factor = cost_reduction_factor()
        assert 19.0 < factor < 21.0

    def test_cost_components(self):
        dataset = 1024.0
        full = dram_only_cost(dataset)
        hybrid = astriflash_cost(dataset)
        assert hybrid < full
        assert hybrid == pytest.approx(
            dataset * 0.03 * 4.0 + dataset * 4.0 / 50.0
        )

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            dram_only_cost(0.0)
        with pytest.raises(ConfigurationError):
            astriflash_cost(100.0, dram_fraction=0.0)


class TestAsoSilicon:
    def test_paper_numbers(self):
        # Sec. IV-C4: 32-entry SB x 4 regs = 128 extra registers (1 KiB),
        # plus 1 KiB of map tables = 2 KiB total, ~0.001 mm^2, ~0.1%
        # of a 1.3 mm^2 Cortex-A76.
        from repro.analytic import aso_silicon_estimate
        from repro.config import CoreConfig

        estimate = aso_silicon_estimate(CoreConfig())
        assert estimate.extra_registers == 128
        assert estimate.register_file_bytes == 1024
        assert estimate.map_table_bytes == 1024
        assert estimate.total_bytes == 2048
        assert estimate.area_mm2 == pytest.approx(0.001, rel=0.05)
        assert estimate.fraction_of_core == pytest.approx(0.00075, rel=0.1)
        assert "2.0 KiB" in estimate.describe()

    def test_scales_with_store_buffer(self):
        from repro.analytic import aso_silicon_estimate
        from repro.config import CoreConfig

        small = aso_silicon_estimate(CoreConfig(store_buffer_entries=16))
        large = aso_silicon_estimate(CoreConfig(store_buffer_entries=64))
        assert large.total_bytes == 4 * small.total_bytes

    def test_invalid_area_raises(self):
        from repro.analytic import aso_silicon_estimate
        from repro.config import CoreConfig
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            aso_silicon_estimate(CoreConfig(), core_area_mm2=0.0)
