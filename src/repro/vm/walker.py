"""Hardware page-table walker model.

The walker performs a serialized pointer chase through the radix table.
Under DRAM partitioning (Sec. IV-A) every step is a flat-DRAM access;
without it (`AstriFlash-noDP`) the steps go through the DRAM cache and
can individually miss to flash, which is what blows up the tail in
Table II.
"""

from __future__ import annotations

from typing import Callable, List

from repro.stats import CounterSet
from repro.vm.page_table import PageTable


class PageTableWalker:
    """Walks a :class:`PageTable`, charging a per-step access callback.

    The access callback abstracts where table pages live; it receives a
    page number and returns nothing (timing handled by the caller's
    simulation process).
    """

    def __init__(self, page_table: PageTable) -> None:
        self.page_table = page_table
        self.stats = CounterSet("walker")

    def walk_pages(self, vpn: int) -> List[int]:
        """Table pages touched by a full walk for ``vpn``."""
        self.stats.add("walks")
        pages = self.page_table.walk_path(vpn)
        self.stats.add("steps", len(pages))
        return pages

    def walk_latency_ns(self, vpn: int,
                        step_latency: Callable[[int], float]) -> float:
        """Serialized walk latency given a per-page latency function."""
        total = 0.0
        for page in self.walk_pages(vpn):
            total += step_latency(page)
        return total
