"""Page-trace capture and replay.

Tooling for working with workload access traces outside the full
simulator:

* :class:`TraceRecorder` — capture ``(compute_ns, page, is_write)``
  steps from any workload into memory or a file (one CSV line per
  step, ``#``-prefixed header);
* :class:`TraceWorkload` — replay a captured trace through the
  simulator as a regular workload (jobs re-cut to a fixed step count);
* :func:`trace_statistics` — footprint/skew/write-ratio summary used
  by the capacity-planning flow.

Traces make experiments reproducible across library versions and let
users study proprietary access patterns without sharing the workload
that produced them — record once, replay anywhere.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, TextIO, Union

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload

TRACE_HEADER = "# repro-trace-v1: compute_ns,page,is_write"


class TraceRecorder:
    """Capture steps from a workload."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self.steps: List[Step] = []

    def record(self, num_steps: int) -> List[Step]:
        """Run jobs until ``num_steps`` steps are captured."""
        if num_steps < 1:
            raise WorkloadError("need at least one step")
        while len(self.steps) < num_steps:
            job = self.workload.make_job()
            while True:
                step = job.next_step()
                if step is None:
                    break
                self.steps.append(step)
        del self.steps[num_steps:]
        return self.steps

    def save(self, target: Union[str, TextIO]) -> int:
        """Write the captured trace; returns the number of steps."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                return self.save(handle)
        target.write(TRACE_HEADER + "\n")
        for step in self.steps:
            target.write(
                f"{step.compute_ns:.3f},{step.page},"
                f"{1 if step.is_write else 0}\n"
            )
        return len(self.steps)


def load_trace(source: Union[str, TextIO]) -> List[Step]:
    """Read a trace written by :meth:`TraceRecorder.save`."""
    if isinstance(source, str):
        with open(source) as handle:
            return load_trace(handle)
    first = source.readline()
    if first == "":
        raise WorkloadError("empty trace file (expected header "
                            f"{TRACE_HEADER!r})")
    first = first.strip()
    if first != TRACE_HEADER:
        raise WorkloadError(f"not a repro trace (header {first!r})")
    steps: List[Step] = []
    for line_number, line in enumerate(source, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue  # blank/trailing newlines and comments are fine
        parts = line.split(",")
        if len(parts) != 3:
            raise WorkloadError(f"malformed trace line {line_number}: {line!r}")
        compute, page, write = parts
        if write not in ("0", "1"):
            raise WorkloadError(
                f"malformed trace line {line_number}: is_write must be "
                f"0 or 1, got {write!r}")
        try:
            steps.append(Step(float(compute), int(page), write == "1"))
        except ValueError:
            raise WorkloadError(
                f"malformed trace line {line_number}: {line!r}") from None
    return steps


class TraceWorkload(Workload):
    """Replay a captured trace as a workload.

    The trace is cut into jobs of ``steps_per_job`` steps; when the
    trace is exhausted it wraps around, so the workload can drive
    arbitrarily long simulations.
    """

    name = "trace-replay"

    def __init__(self, steps: List[Step], steps_per_job: int = 48,
                 dataset_pages: Optional[int] = None, seed: int = 42) -> None:
        if not steps:
            raise WorkloadError("empty trace")
        if steps_per_job < 1:
            raise WorkloadError("steps_per_job must be positive")
        if dataset_pages is None:
            dataset_pages = max(step.page for step in steps) + 1
        super().__init__(dataset_pages, seed)
        self._trace = steps
        self.steps_per_job = steps_per_job
        self._cursor = 0

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "TraceWorkload":
        return cls(load_trace(path), **kwargs)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.steps_per_job):
            step = self._trace[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._trace)
            yield Step(step.compute_ns, step.page, step.is_write)


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of a page trace."""

    num_steps: int
    distinct_pages: int
    write_fraction: float
    mean_compute_ns: float
    top_decile_access_share: float


def trace_statistics(steps: Iterable[Step]) -> TraceStatistics:
    """Footprint/skew summary of a trace."""
    from collections import Counter

    counts: Counter = Counter()
    writes = 0
    compute_total = 0.0
    num_steps = 0
    for step in steps:
        counts[step.page] += 1
        writes += step.is_write
        compute_total += step.compute_ns
        num_steps += 1
    if num_steps == 0:
        raise WorkloadError("empty trace")
    hottest = sorted(counts.values(), reverse=True)
    top_k = max(1, len(hottest) // 10)
    top_share = sum(hottest[:top_k]) / num_steps
    return TraceStatistics(
        num_steps=num_steps,
        distinct_pages=len(counts),
        write_fraction=writes / num_steps,
        mean_compute_ns=compute_total / num_steps,
        top_decile_access_share=top_share,
    )
