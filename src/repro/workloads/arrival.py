"""Request arrival processes (open-loop load generation).

Every process speaks the :class:`ArrivalProcess` protocol: repeated
``next_gap_ns()`` calls yield successive inter-arrival gaps (``None``
once a finite source is exhausted) and ``rate_per_second`` reports the
long-run mean arrival rate.

The stochastic processes additionally expose ``gap_block(count)`` /
``gap_sync()`` — the block-draw protocol the vector backend's merged
event loop uses (:mod:`repro.sim.vector`).  ``gap_block`` returns the
next ``count`` gaps bit-identical to ``count`` sequential
``next_gap_ns()`` calls (CPython's ``expovariate`` arithmetic is
replicated on bridged uniform draws; the modulated processes replay
their state machines exactly, mutating the real ``state`` /
``transitions`` / clock fields).  A block may come back short only for
a finite :class:`TraceArrivals`; empty means exhausted.  ``gap_sync``
re-lands the Python RNG so later scalar draws continue from a valid
stream position (the position may overshoot by buffered-but-unserved
draws — RNG positions are outside the bit-identity contract, which
covers machine state and results only).

**Per-core convention.** The runner spawns one arrival stream per core,
all drawing gaps from a single shared process object, so a process's
mean inter-arrival time is *per core*: a machine with N cores sees an
aggregate arrival rate of ``N * rate_per_second``.  Aggregate-facing
layers (the CLI's ``--interarrival-us``, :mod:`repro.loadgen`'s offered
QPS) convert at their boundary; see ``streams`` below for how the
modulated processes keep their time base honest under N consumers.

* :class:`PoissonArrivals` — open-loop memoryless arrivals for
  tail-latency studies (Fig. 10 sweeps the mean inter-arrival time);
* :class:`MMPPArrivals` — two-state Markov-modulated Poisson: a bursty
  source alternating between a base and a burst rate with exponential
  state dwell times;
* :class:`DiurnalArrivals` — sinusoidally rate-modulated Poisson
  (thinning), a scaled-down model of day/night traffic swings;
* :class:`TraceArrivals` — replay of recorded inter-arrival gaps;
* :class:`ClosedLoop` — a saturating job source for maximum-throughput
  measurements (Fig. 9 models "a large job queue").  Its nominal rate
  is infinite; JSON emitters must route non-finite values through
  :mod:`repro.jsonutil` (which maps them to ``null``).
"""

from __future__ import annotations

import math
import random
from typing import Optional, Protocol, Sequence, Tuple

from repro.errors import ConfigurationError

TWO_PI = 2.0 * math.pi


class ArrivalProcess(Protocol):
    """What the runner needs from an arrival source."""

    def next_gap_ns(self) -> Optional[float]:
        """Per-stream time until the next request (None = exhausted)."""
        ...

    @property
    def rate_per_second(self) -> float:
        """Long-run mean per-stream arrival rate."""
        ...


class _UniformBlock:
    """Buffered uniform draws bridged from a ``random.Random``.

    The vector backend's MT19937 transplant (``BatchedRandom``) serves
    uniforms in blocks; this wrapper hands them out one at a time so a
    state-machine process (MMPP dwell tracking, diurnal thinning) can
    replay its exact scalar draw sequence without a per-draw Python
    ``random()`` call.  ``sync()`` returns the unconsumed tail to the
    bridge first, so the source RNG lands exactly on the consumed
    position.
    """

    __slots__ = ("_rng", "_bridge", "_buf", "_pos")

    BLOCK = 256

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._bridge = None
        self._buf: list = []
        self._pos = 0

    def next(self) -> float:
        if self._pos >= len(self._buf):
            if self._bridge is None:
                from repro.sim.vector import BatchedRandom

                self._bridge = BatchedRandom(self._rng)
            self._buf = self._bridge.take(self.BLOCK).tolist()
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def sync(self) -> None:
        if self._bridge is not None:
            self._bridge.unserve(len(self._buf) - self._pos)
            self._bridge.sync()
        self._bridge = None
        self._buf = []
        self._pos = 0


class PoissonArrivals:
    """Exponential inter-arrival times with a given per-core mean."""

    def __init__(self, mean_interarrival_ns: float, seed: int = 42) -> None:
        if mean_interarrival_ns <= 0:
            raise ConfigurationError("mean inter-arrival must be positive")
        self.mean_interarrival_ns = mean_interarrival_ns
        self._rng = random.Random(seed)
        self._bridge = None

    def next_gap_ns(self) -> float:
        """Time until the next request arrives."""
        return self._rng.expovariate(1.0 / self.mean_interarrival_ns)

    def gap_block(self, count: int) -> list:
        """The next ``count`` gaps, bit-identical to ``count``
        sequential :meth:`next_gap_ns` calls (CPython's ``expovariate``
        is ``-log(1 - random()) / lambd``, replicated per element on
        bridged uniforms)."""
        if self._bridge is None:
            from repro.sim.vector import BatchedRandom

            self._bridge = BatchedRandom(self._rng)
        lambd = 1.0 / self.mean_interarrival_ns
        log = math.log
        return [-log(1.0 - u) / lambd
                for u in self._bridge.take(count).tolist()]

    def gap_sync(self) -> None:
        """Re-land ``self._rng`` after block draws (see module doc)."""
        if self._bridge is not None:
            self._bridge.sync()
            self._bridge = None

    @property
    def rate_per_second(self) -> float:
        return 1e9 / self.mean_interarrival_ns


class ClosedLoop:
    """Always-backlogged source: a new job is available immediately."""

    def next_gap_ns(self) -> float:
        return 0.0

    @property
    def rate_per_second(self) -> float:
        return float("inf")


class MMPPArrivals:
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The source alternates between state 0 (mean inter-arrival
    ``mean_interarrival_ns``) and state 1 (``burst_interarrival_ns``,
    typically much shorter), with exponentially distributed dwell times
    in each state.  Within a state arrivals are Poisson, so the draw is
    exact: an exponential gap is truncated at the state boundary and
    redrawn in the new state (memorylessness makes the truncation
    free of bias).

    ``streams`` is the number of per-core consumers sharing this
    object: gap draws are per-stream, but state dwell must elapse in
    *simulated machine* time, which advances ~1/streams as fast as the
    interleaved per-stream gaps it hands out.
    """

    def __init__(self, mean_interarrival_ns: float,
                 burst_interarrival_ns: float,
                 mean_dwell_ns: float = 200_000.0,
                 burst_dwell_ns: float = 50_000.0,
                 seed: int = 42, streams: int = 1) -> None:
        for name, value in (("mean inter-arrival", mean_interarrival_ns),
                            ("burst inter-arrival", burst_interarrival_ns),
                            ("mean dwell", mean_dwell_ns),
                            ("burst dwell", burst_dwell_ns)):
            if value <= 0:
                raise ConfigurationError(f"MMPP {name} must be positive")
        if streams < 1:
            raise ConfigurationError("MMPP needs at least one stream")
        self._means = (mean_interarrival_ns, burst_interarrival_ns)
        self._dwells = (mean_dwell_ns, burst_dwell_ns)
        self._streams = streams
        self._rng = random.Random(seed)
        self._uniforms = None
        self.state = 0
        self.transitions = 0
        self._dwell_remaining = self._rng.expovariate(1.0 / mean_dwell_ns)

    def next_gap_ns(self) -> float:
        rng = self._rng
        machine_fraction = 1.0 / self._streams
        gap = 0.0
        while True:
            draw = rng.expovariate(1.0 / self._means[self.state])
            if draw * machine_fraction <= self._dwell_remaining:
                self._dwell_remaining -= draw * machine_fraction
                return gap + draw
            # The state expires mid-gap: spend the remaining dwell
            # (converted back to per-stream time) and redraw in the
            # new state.
            gap += self._dwell_remaining * self._streams
            self._switch_state()

    def gap_block(self, count: int) -> list:
        """The next ``count`` gaps via buffered uniforms: the exact
        :meth:`next_gap_ns` state machine replayed per element, so
        ``state``/``transitions``/dwell tracking stay live."""
        if self._uniforms is None:
            self._uniforms = _UniformBlock(self._rng)
        take = self._uniforms.next
        log = math.log
        means = self._means
        dwells = self._dwells
        machine_fraction = 1.0 / self._streams
        gaps = []
        for _ in range(count):
            gap = 0.0
            while True:
                lambd = 1.0 / means[self.state]
                draw = -log(1.0 - take()) / lambd
                if draw * machine_fraction <= self._dwell_remaining:
                    self._dwell_remaining -= draw * machine_fraction
                    gaps.append(gap + draw)
                    break
                gap += self._dwell_remaining * self._streams
                self.state ^= 1
                self.transitions += 1
                lambd = 1.0 / dwells[self.state]
                self._dwell_remaining = -log(1.0 - take()) / lambd
        return gaps

    def gap_sync(self) -> None:
        """Re-land ``self._rng`` after block draws (see module doc)."""
        if self._uniforms is not None:
            self._uniforms.sync()
            self._uniforms = None

    def _switch_state(self) -> None:
        self.state ^= 1
        self.transitions += 1
        self._dwell_remaining = self._rng.expovariate(
            1.0 / self._dwells[self.state]
        )

    @property
    def rate_per_second(self) -> float:
        """Stationary mean rate: dwell-weighted state rates."""
        total_dwell = self._dwells[0] + self._dwells[1]
        rate_per_ns = (self._dwells[0] / total_dwell / self._means[0]
                       + self._dwells[1] / total_dwell / self._means[1])
        return rate_per_ns * 1e9


class DiurnalArrivals:
    """Sinusoidally rate-modulated Poisson arrivals (thinning).

    The instantaneous rate is ``base * (1 + amplitude * sin(2 pi t /
    period + phase))`` where ``t`` is simulated machine time and
    ``base = 1 / mean_interarrival_ns``; candidates are generated at
    the peak rate and accepted with probability ``rate(t) / peak``
    (Lewis-Shedler thinning), so the seeded draw sequence is
    deterministic.  ``streams`` plays the same role as for
    :class:`MMPPArrivals`: the internal clock advances ``gap /
    streams`` per handed-out gap so the modulation period is honored
    in machine time when N cores share the object.
    """

    def __init__(self, mean_interarrival_ns: float, period_ns: float,
                 amplitude: float = 0.5, seed: int = 42,
                 phase: float = 0.0, streams: int = 1) -> None:
        if mean_interarrival_ns <= 0:
            raise ConfigurationError("mean inter-arrival must be positive")
        if period_ns <= 0:
            raise ConfigurationError("diurnal period must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")
        if streams < 1:
            raise ConfigurationError("diurnal needs at least one stream")
        self.mean_interarrival_ns = mean_interarrival_ns
        self.period_ns = period_ns
        self.amplitude = amplitude
        self.phase = phase
        self._streams = streams
        self._base_rate = 1.0 / mean_interarrival_ns
        self._peak_rate = self._base_rate * (1.0 + amplitude)
        self._rng = random.Random(seed)
        self._uniforms = None
        self._now_ns = 0.0  # machine-time clock

    def rate_at(self, t_ns: float) -> float:
        """Instantaneous per-stream rate (arrivals per ns) at time t."""
        return self._base_rate * (
            1.0 + self.amplitude * math.sin(
                TWO_PI * t_ns / self.period_ns + self.phase
            )
        )

    def next_gap_ns(self) -> float:
        rng = self._rng
        gap = 0.0
        while True:
            gap += rng.expovariate(self._peak_rate)
            t = self._now_ns + gap / self._streams
            if rng.random() * self._peak_rate <= self.rate_at(t):
                self._now_ns = t
                return gap

    def gap_block(self, count: int) -> list:
        """The next ``count`` gaps via buffered uniforms: the exact
        thinning loop of :meth:`next_gap_ns` replayed per element, so
        the machine-time clock stays live."""
        if self._uniforms is None:
            self._uniforms = _UniformBlock(self._rng)
        take = self._uniforms.next
        log = math.log
        peak = self._peak_rate
        streams = self._streams
        rate_at = self.rate_at
        gaps = []
        for _ in range(count):
            gap = 0.0
            while True:
                gap += -log(1.0 - take()) / peak
                t = self._now_ns + gap / streams
                if take() * peak <= rate_at(t):
                    self._now_ns = t
                    gaps.append(gap)
                    break
        return gaps

    def gap_sync(self) -> None:
        """Re-land ``self._rng`` after block draws (see module doc)."""
        if self._uniforms is not None:
            self._uniforms.sync()
            self._uniforms = None

    @property
    def rate_per_second(self) -> float:
        """Mean rate over a full period (the sine averages out)."""
        return self._base_rate * 1e9


class TraceArrivals:
    """Replay recorded inter-arrival gaps.

    ``next_gap_ns`` hands the gaps out in order; once the trace is
    exhausted it returns ``None`` (the arrival stream ends — jobs
    already queued still drain) unless ``cycle=True``, which wraps
    around indefinitely.
    """

    def __init__(self, gaps_ns: Sequence[float], cycle: bool = False) -> None:
        if not gaps_ns:
            raise ConfigurationError("arrival trace must not be empty")
        gaps = [float(gap) for gap in gaps_ns]
        if any(gap < 0 for gap in gaps):
            raise ConfigurationError("arrival trace gaps must be >= 0")
        self._gaps = gaps
        self._index = 0
        self.cycle = cycle
        self.exhausted = False

    @classmethod
    def from_timestamps(cls, timestamps_ns: Sequence[float],
                        cycle: bool = False) -> "TraceArrivals":
        """Build from absolute arrival timestamps (sorted ascending)."""
        if len(timestamps_ns) < 2:
            raise ConfigurationError(
                "arrival trace needs at least two timestamps"
            )
        gaps = [later - earlier for earlier, later
                in zip(timestamps_ns, timestamps_ns[1:])]
        return cls(gaps, cycle=cycle)

    def next_gap_ns(self) -> Optional[float]:
        if self._index >= len(self._gaps):
            if not self.cycle:
                self.exhausted = True
                return None
            self._index = 0
        gap = self._gaps[self._index]
        self._index += 1
        return gap

    def gap_block(self, count: int) -> list:
        """Up to ``count`` gaps by array slice (cycling wraps; a short
        or empty block means the finite trace ran dry, mirroring the
        ``None``/``exhausted`` semantics of :meth:`next_gap_ns`)."""
        gaps = self._gaps
        out: list = []
        while len(out) < count:
            if self._index >= len(gaps):
                if not self.cycle:
                    self.exhausted = True
                    break
                self._index = 0
            end = min(len(gaps), self._index + (count - len(out)))
            out.extend(gaps[self._index:end])
            self._index = end
        return out

    @property
    def rate_per_second(self) -> float:
        total = sum(self._gaps)
        if total <= 0:
            return float("inf")
        return len(self._gaps) / total * 1e9


def arrival_from_spec(spec: Optional[Tuple]):
    """Build an arrival process from its picklable tuple spec.

    Specs are what :class:`repro.harness.parallel.RunSpec` carries (see
    the ``poisson``/``mmpp``/``diurnal``/``trace`` helpers there);
    ``None`` means closed loop (the runner's default).
    """
    if spec is None:
        return None
    kind = spec[0]
    if kind == "poisson":
        _, mean_ns, seed = spec
        return PoissonArrivals(mean_ns, seed=seed)
    if kind == "mmpp":
        _, mean_ns, burst_ns, dwell_ns, burst_dwell_ns, seed, streams = spec
        return MMPPArrivals(mean_ns, burst_ns, mean_dwell_ns=dwell_ns,
                            burst_dwell_ns=burst_dwell_ns, seed=seed,
                            streams=streams)
    if kind == "diurnal":
        _, mean_ns, period_ns, amplitude, seed, streams = spec
        return DiurnalArrivals(mean_ns, period_ns, amplitude=amplitude,
                               seed=seed, streams=streams)
    if kind == "trace":
        _, gaps, cycle = spec
        return TraceArrivals(gaps, cycle=cycle)
    raise ConfigurationError(f"unknown arrival spec {spec!r}")
