"""Warm-state snapshot/restore: amortize dataset builds and cache
warmup across experiment sweeps (DESIGN.md §4e).

Every figure/table harness is a *sweep*, yet each run used to rebuild
its workload dataset and re-warm the DRAM cache / resident set from
scratch — even when sweep points differ only in a parameter that does
not affect warm state (arrival rate, switch cost, MSR depth).  This
module memoizes both:

* **Dataset builds** (:func:`build_workload`) — the constructed
  workload object (hash index, trees, page-heap layout) is serialized
  once per ``(name, dataset_pages, seed, kwargs)`` digest, in-process
  and on disk.  Restores unpickle a *fresh* object per caller, so no
  mutable state is ever shared between runs.
* **Post-warmup machine state** (:func:`capture_warm` /
  :func:`restore_warm`) — DRAM-cache tags/ways/dirty bits and
  reservation maps (or the OS resident set), plus the workload and
  runner RNG state at the warm/measure boundary.  Restoring is
  *bit-identical* to a fresh warm: the golden determinism test passes
  unchanged through both paths, enforced by
  :meth:`~repro.core.machine.Machine.state_fingerprint` equality.

Snapshot files are versioned: a header (format version + a digest of
the ``repro`` sources + the semantic key) is validated before the
payload is unpickled; any mismatch rejects and deletes the stale file
so it is rebuilt rather than silently loaded.  The in-process memo
holds the serialized bytes, which ``fork``-started worker processes
inherit for free (spawn-started workers fall back to the files).

Policy knobs (also exposed as CLI flags, see ``repro --help``):

* ``REPRO_SNAPSHOT=0``        — disable snapshots entirely;
* ``REPRO_SNAPSHOT_DIR=PATH`` — snapshot directory (default:
  ``$REPRO_CACHE_DIR/snapshots`` next to the result cache);
* ``REPRO_CACHE_MAX_BYTES=N`` — byte cap for the whole cache tree
  (results + snapshots), LRU-pruned on write.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.config.system import PagingMode, SystemConfig
from repro.stats import CounterSet
from repro.workloads import make_workload

#: Bump on any change to the snapshot file layout or payload schema.
SNAPSHOT_VERSION = 1

#: Snapshot kinds (the filename prefix).
WORKLOAD_KIND = "workload"
WARM_KIND = "warm"
TRACE_KIND = "trace"

#: Default byte cap for the cache tree (results + snapshots): 256 MiB.
DEFAULT_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Suffixes the LRU pruner manages inside the cache tree.
_PRUNABLE_SUFFIXES = (".pkl", ".snap")

#: Default warmup length, mirrored from Machine.warm_caches.
DEFAULT_WARM_STEPS = 50_000

#: Process-global snapshot telemetry (``repro report`` footer).
STATS = CounterSet("snapshot")


def reset_stats() -> None:
    """Zero the process-global snapshot counters (tests, benchmarks)."""
    global STATS
    STATS = CounterSet("snapshot")


# ------------------------------------------------------------------ digests --

_SOURCE_DIGEST: Optional[str] = None


def source_digest() -> str:
    """Digest of every ``repro`` source file: any simulator change
    invalidates snapshots without manual version bumps."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _SOURCE_DIGEST = digest.hexdigest()[:16]
    return _SOURCE_DIGEST


def _digest(canonical: Tuple) -> str:
    return hashlib.sha256(repr(canonical).encode()).hexdigest()[:32]


def workload_key(name: str, dataset_pages: int, seed: int,
                 kwargs: Dict[str, Any]) -> str:
    """Digest of exactly the parameters that shape the built dataset."""
    return _digest(("workload", name, int(dataset_pages), int(seed),
                    tuple(sorted(kwargs.items()))))


def warm_key(config: SystemConfig, workload_name: str, seed: int,
             workload_kwargs: Dict[str, Any],
             dataset_pages: Optional[int] = None,
             warm_steps: int = DEFAULT_WARM_STEPS) -> Optional[str]:
    """Digest of only the *resolved* config fields and workload
    parameters that affect post-warmup machine state.

    Sweep points that differ in arrival rate, switch cost, MSR depth,
    scheduling policy, partitioning, ... hash identically and share one
    warm.  ``dataset_pages`` is the *workload's* dataset size (defaults
    to the config's); cache geometry enters through the resolved tier
    tuple, so e.g. astriflash / astriflash-ideal / flash-sync share a
    warm.  ``None`` when the configuration has no warm state
    (DRAM-only).
    """
    mode = config.mode
    if mode is PagingMode.DRAM_ONLY:
        return None
    if dataset_pages is None:
        dataset_pages = config.scale.dataset_pages
    if mode in (PagingMode.ASTRIFLASH, PagingMode.FLASH_SYNC):
        # Hardware DRAM cache: warm state depends on the cache geometry
        # the organization is built with.
        tier: Tuple = ("dramcache", config.scaled_dram_cache_pages,
                       config.dram_cache.associativity)
    else:
        # OS-Swap: fully-associative resident set of the same capacity.
        tier = ("resident", config.scaled_dram_cache_pages)
    return _digest(("warm-state", workload_name, int(dataset_pages),
                    int(seed), tuple(sorted(workload_kwargs.items())),
                    tier, int(warm_steps)))


def trace_key(workload_name: str, dataset_pages: int, seed: int,
              num_steps: int, kwargs: Dict[str, Any]) -> str:
    """Digest for a memoized flat page trace (fig1-style sweeps)."""
    return _digest(("trace", workload_name, int(dataset_pages), int(seed),
                    int(num_steps), tuple(sorted(kwargs.items()))))


def generic_key(*parts) -> str:
    """Digest of arbitrary repr-stable parts, for harness-specific
    snapshot kinds (e.g. fig1's warmed-LRU states)."""
    return _digest(parts)


# ------------------------------------------------------------- deep pickling --

# Workload datasets include deep linked structures (masstree/rbtree
# nodes); pickling them overflows the default recursion limit.  Retry
# such dumps/loads in a dedicated big-stack thread with a raised limit.
_DEEP_RECURSION_LIMIT = 500_000
_DEEP_STACK_BYTES = 256 << 20


def _with_deep_stack(func, *args):
    box: Dict[str, Any] = {}

    def work():
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(_DEEP_RECURSION_LIMIT)
        try:
            box["value"] = func(*args)
        except BaseException as exc:  # re-raised on the caller's thread
            box["error"] = exc
        finally:
            sys.setrecursionlimit(old)

    old_stack = threading.stack_size(_DEEP_STACK_BYTES)
    try:
        thread = threading.Thread(target=work, name="repro-snapshot-pickle")
        thread.start()
        thread.join()
    finally:
        threading.stack_size(old_stack)
    if "error" in box:
        raise box["error"]
    return box["value"]


def _dumps(obj) -> bytes:
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except RecursionError:
        return _with_deep_stack(pickle.dumps, obj,
                                pickle.HIGHEST_PROTOCOL)


def _loads(blob: bytes):
    try:
        return pickle.loads(blob)
    except RecursionError:
        return _with_deep_stack(pickle.loads, blob)


# -------------------------------------------------------------- LRU pruning --


def cache_max_bytes() -> Optional[int]:
    """Byte cap for the cache tree; ``None`` disables pruning."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if raw is None:
        return DEFAULT_CACHE_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CACHE_MAX_BYTES
    return value if value > 0 else None


def prune_cache(directory: Path, max_bytes: Optional[int] = None,
                keep: Iterable[Path] = ()) -> Tuple[int, int]:
    """LRU-prune cache/snapshot files under ``directory`` to the cap.

    Recency is file mtime — loads touch their entry on every hit, so
    mtime order is LRU order.  ``keep`` paths (typically the entry just
    written) are never pruned.  Returns ``(files_removed,
    bytes_removed)``.
    """
    if max_bytes is None:
        max_bytes = cache_max_bytes()
    if max_bytes is None or not directory.is_dir():
        return (0, 0)
    protected = {Path(p).resolve() for p in keep}
    entries: List[Tuple[float, int, Path]] = []
    total = 0
    for path in directory.rglob("*"):
        if path.suffix not in _PRUNABLE_SUFFIXES or not path.is_file():
            continue
        try:
            stat = path.stat()
        except OSError:
            continue
        total += stat.st_size
        if path.resolve() not in protected:
            entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()  # oldest first
    removed_files = removed_bytes = 0
    for mtime, size, path in entries:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed_files += 1
        removed_bytes += size
    return (removed_files, removed_bytes)


def clear_cache(directory: Path) -> Tuple[int, int]:
    """Delete every cache/snapshot file under ``directory``."""
    if not directory.is_dir():
        return (0, 0)
    removed_files = removed_bytes = 0
    for path in directory.rglob("*"):
        if not path.is_file():
            continue
        if path.suffix not in _PRUNABLE_SUFFIXES and \
                path.name != "CACHE_VERSION":
            continue
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            continue
        removed_files += 1
        removed_bytes += size
    return (removed_files, removed_bytes)


# ------------------------------------------------------------ snapshot store --


def snapshots_enabled() -> bool:
    return os.environ.get("REPRO_SNAPSHOT", "1") != "0"


def default_snapshot_dir() -> Path:
    override = os.environ.get("REPRO_SNAPSHOT_DIR")
    if override:
        return Path(override)
    cache_root = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    return cache_root / "snapshots"


class SnapshotStore:
    """Versioned snapshot files plus an in-process bytes memo.

    File layout: two concatenated pickles — a small header
    ``{"version", "stamp", "kind", "key"}`` followed by the payload.
    Loads validate the header before touching the payload, so stale
    files (format bump or simulator source change) are rejected and
    deleted, never silently loaded.  The memo keeps the serialized
    payload bytes; each load unpickles a fresh object graph, so no
    mutable state leaks between runs, and ``fork``-started workers
    inherit the memo without re-reading files.
    """

    #: Process-global memo: "kind:key" -> serialized payload bytes.
    _MEMO: Dict[str, bytes] = {}

    def __init__(self, directory: Optional[Path] = None,
                 enabled: Optional[bool] = None) -> None:
        self.enabled = snapshots_enabled() if enabled is None else enabled
        self.directory = Path(directory) if directory is not None \
            else default_snapshot_dir()

    # -- paths / headers ----------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.directory / f"{kind}-{key}.snap"

    @staticmethod
    def _header(kind: str, key: str) -> Dict[str, Any]:
        return {"version": SNAPSHOT_VERSION, "stamp": source_digest(),
                "kind": kind, "key": key}

    def _header_valid(self, header, kind: str, key: str) -> bool:
        return (isinstance(header, dict)
                and header.get("version") == SNAPSHOT_VERSION
                and header.get("stamp") == source_digest()
                and header.get("kind") == kind
                and header.get("key") == key)

    # -- load / store -------------------------------------------------------

    def contains(self, kind: str, key: str) -> bool:
        """Cheap existence probe: memo hit, or a file whose *header*
        validates (the payload is not unpickled)."""
        if not self.enabled:
            return False
        if f"{kind}:{key}" in self._MEMO:
            return True
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                return self._header_valid(pickle.load(handle), kind, key)
        except Exception:
            return False

    def load(self, kind: str, key: str):
        """The snapshot payload as a fresh object graph, or ``None``.

        A file with a stale or foreign header is deleted and reported
        as a miss (counted under ``stale_rejected``)."""
        if not self.enabled:
            return None
        blob = self._MEMO.get(f"{kind}:{key}")
        if blob is not None:
            STATS.add(f"{kind}_memo_hits")
            return _loads(blob)
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                header = pickle.load(handle)
                if not self._header_valid(header, kind, key):
                    raise _StaleSnapshot()
                payload_blob = handle.read()
            payload = _loads(payload_blob)
        except OSError:
            return None
        except _StaleSnapshot:
            STATS.add("stale_rejected")
            self._discard(path)
            return None
        except Exception:
            # Corrupt entry (interrupted writer, unreadable pickle).
            STATS.add("stale_rejected")
            self._discard(path)
            return None
        self._MEMO[f"{kind}:{key}"] = payload_blob
        self._touch(path)
        STATS.add(f"{kind}_disk_hits")
        return payload

    def store(self, kind: str, key: str, payload) -> None:
        """Serialize ``payload`` into the memo and (atomically) a
        versioned file; LRU-prunes the cache tree afterwards."""
        if not self.enabled:
            return
        blob = _dumps(payload)
        self._MEMO[f"{kind}:{key}"] = blob
        path = self._path(kind, key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(pickle.dumps(self._header(kind, key),
                                          protocol=pickle.HIGHEST_PROTOCOL))
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        STATS.add(f"{kind}_stored")
        prune_cache(self.directory, keep=(path,))

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    @classmethod
    def clear_memo(cls) -> None:
        cls._MEMO.clear()


class _StaleSnapshot(Exception):
    pass


def resolve_store(snapshots: Optional[bool] = None,
                  snapshot_dir=None) -> SnapshotStore:
    """Build a store from explicit arguments, falling back to the
    ``REPRO_SNAPSHOT`` / ``REPRO_SNAPSHOT_DIR`` environment policy."""
    directory = Path(snapshot_dir) if snapshot_dir is not None else None
    return SnapshotStore(directory=directory, enabled=snapshots)


# ------------------------------------------------------- dataset memoization --


def build_workload(name: str, dataset_pages: int, seed: int,
                   store: Optional[SnapshotStore] = None, **kwargs):
    """:func:`~repro.workloads.make_workload` with dataset memoization.

    The expensive part of construction (``HashIndex.bulk_load``,
    masstree/rbtree node builds, page-heap layout) is reused via the
    snapshot store; the returned object is always a private copy whose
    behaviour is bit-identical to a fresh construction (RNG state and
    job counter included — both are at their just-constructed values).
    """
    store = store if store is not None else resolve_store()
    if not store.enabled:
        return make_workload(name, dataset_pages, seed=seed, **kwargs)
    key = workload_key(name, dataset_pages, seed, kwargs)
    cached = store.load(WORKLOAD_KIND, key)
    if cached is not None:
        return cached
    workload = make_workload(name, dataset_pages, seed=seed, **kwargs)
    store.store(WORKLOAD_KIND, key, workload)
    STATS.add("workload_builds")
    return workload


# ------------------------------------------------- warm-state capture/restore --


def capture_warm(runner, key: str, store: SnapshotStore,
                 warm_steps: Optional[int] = None) -> None:
    """Warm ``runner`` freshly (idempotent) and serialize the
    warm/measure-boundary state under ``key``.

    The payload carries everything the measurement phase reads that
    warmup wrote: the workload (dataset + advanced RNG + job counter),
    the runner RNG state, and the machine's warm state (DRAM-cache
    tags/ways/dirty bits and reservation maps, or the resident set).
    """
    runner.warm(warm_steps)
    STATS.add("warm_captures")
    if not store.enabled:
        return
    payload = {
        "workload": runner.workload,
        "rng_state": runner._rng.getstate(),
        "machine": runner.machine.dump_warm_state(),
    }
    store.store(WARM_KIND, key, payload)


def restore_warm(runner, payload: Dict[str, Any]) -> None:
    """Load a warm-state payload into a freshly-constructed runner,
    instead of calling ``machine.warm_caches()``.

    The restore contract is *bit-identical continuation*: after this
    call the runner's observable state (machine fingerprint, workload
    RNG, job counter, runner RNG) equals the state a fresh warm with
    the same inputs would have produced.
    """
    start = time.perf_counter()
    runner.workload = payload["workload"]
    runner._rng.setstate(payload["rng_state"])
    runner.machine.load_warm_state(payload["machine"])
    runner.mark_warm_restored(time.perf_counter() - start)
    STATS.add("warm_restores")


def summary() -> Dict[str, float]:
    """Current process-global snapshot counters (report footer)."""
    return STATS.as_dict()
