"""The loadgen sweep driver: offered-QPS grids and knee curves.

``python -m repro loadgen <experiment> --qps-sweep LO:HI:N`` sweeps
offered load across an experiment's config presets and reports, per
preset, the latency-vs-load curve plus the sustained-QPS-under-SLO
knee (TailBench methodology; the paper's Fig. 10 lens).  Each
``(preset, qps)`` cell is one independent open-loop simulation, so the
grid fans out through :mod:`repro.harness.parallel` and shares warm-
state snapshots and the content-addressed result cache.

Conventions this layer owns:

* **Rates are aggregate.**  Users think in machine QPS; the runner's
  arrival processes are per-core (one stream per core, all sharing a
  single process object — see :mod:`repro.workloads.arrival`).  The
  conversion ``per_core_mean_ns = num_cores / qps * 1e9`` happens in
  :func:`_arrival_spec` and nowhere downstream.
* **Censored cells never report a raw p99.**  A cell whose
  unfinished-job backlog exceeds ``backlog_threshold`` had its tail
  censored by the measurement window; its headline p99 is withheld
  (the right-censoring lower bound is reported instead) and the cell
  conservatively counts as an SLO violation.
* **SLO default.**  ``40 x`` the DRAM-only mean service time — the
  Sec. III-A convention :func:`repro.harness.fig3.max_load_within_slo`
  already uses.

Determinism: fixed seeds, simulation-derived fields only (no wall
clock), and a deterministic bisection, so two invocations of the same
sweep produce bit-identical ``BENCH_loadgen.json`` — the CI acceptance
bar.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.faults.chaos import fault_overrides
from repro.harness import parallel
from repro.harness.common import build_config, resolve_scale
from repro.sim import vector as _vector
from repro.harness.parallel import RunSpec, run_spec, run_specs
from repro.loadgen.knee import (
    ABOVE_RANGE,
    BELOW_RANGE,
    GRID,
    solve_knee,
)
from repro.loadgen.schema import (
    DEFAULT_BACKLOG_THRESHOLD,
    KneeEvalPoint,
    LoadgenBench,
    LoadgenCell,
    PresetKnee,
)
from repro.units import US

#: Default sweep: 30%..95% of the DRAM-only saturation throughput,
#: five points — brackets the knee for every preset without burning
#: cells deep inside the flat region.
DEFAULT_QPS_SWEEP = "0.3x:0.95x:5"

#: Default SLO: this multiple of the DRAM-only mean service time
#: (fig3's ``max_load_within_slo`` convention, Sec. III-A).
DEFAULT_SLO_SERVICE_FACTOR = 40.0

#: Fallback presets when the experiment module exposes no ``CONFIGS``.
DEFAULT_PRESETS: Tuple[str, ...] = ("dram-only", "astriflash")

# Bursty/diurnal arrival shapes (see _arrival_spec).  The MMPP cycle
# sits well inside the quick measurement window so every run sees
# multiple burst episodes; the diurnal period matches half the quick
# window for one full peak-trough swing.
MMPP_BURST_RATIO = 4.0        # burst-state rate / normal-state rate
MMPP_BURST_FRACTION = 0.1     # stationary fraction of time in burst
MMPP_CYCLE_NS = 400.0 * US    # mean dwell cycle (normal + burst)
DIURNAL_PERIOD_NS = 1_000.0 * US
DIURNAL_AMPLITUDE = 0.5

ARRIVAL_KINDS = ("poisson", "mmpp", "diurnal")


# ------------------------------------------------------------- qps grids --


@dataclass(frozen=True)
class QpsSweep:
    """A parsed ``LO:HI:N`` sweep request.

    Endpoints carry an optional ``x`` suffix marking them *relative*
    (a fraction of the DRAM-only saturation throughput, resolved once
    the saturation run has executed); bare numbers are absolute QPS.
    """

    lo: float
    hi: float
    points: int
    lo_relative: bool = False
    hi_relative: bool = False

    def resolve(self, saturation_qps: float) -> Tuple[float, ...]:
        """The absolute QPS grid, ``points`` evenly spaced loads."""
        lo = self.lo * saturation_qps if self.lo_relative else self.lo
        hi = self.hi * saturation_qps if self.hi_relative else self.hi
        if lo <= 0 or hi < lo:
            raise ConfigurationError(
                f"qps sweep resolves to bad range [{lo:.1f}, {hi:.1f}]"
            )
        if self.points == 1:
            return (lo,)
        step = (hi - lo) / (self.points - 1)
        return tuple(lo + i * step for i in range(self.points))


def _parse_endpoint(token: str) -> Tuple[float, bool]:
    relative = token.endswith(("x", "X"))
    if relative:
        token = token[:-1]
    try:
        value = float(token)
    except ValueError:
        raise ReproError(f"bad qps sweep endpoint {token!r}") from None
    if value <= 0:
        raise ReproError(f"qps sweep endpoint {value} must be positive")
    if relative and value > 2.0:
        raise ReproError(
            f"relative sweep endpoint {value}x exceeds 2x saturation"
        )
    return value, relative


def parse_qps_sweep(text: str) -> QpsSweep:
    """Parse ``LO:HI:N`` (endpoints optionally ``x``-suffixed as
    fractions of DRAM-only saturation, e.g. ``0.3x:0.95x:5``)."""
    parts = [part.strip() for part in text.split(":")]
    if len(parts) != 3:
        raise ReproError(
            f"qps sweep {text!r} must be LO:HI:N (e.g. {DEFAULT_QPS_SWEEP})"
        )
    lo, lo_relative = _parse_endpoint(parts[0])
    hi, hi_relative = _parse_endpoint(parts[1])
    try:
        points = int(parts[2])
    except ValueError:
        raise ReproError(f"bad qps sweep point count {parts[2]!r}") from None
    if points < 1:
        raise ReproError("qps sweep needs at least one point")
    if points > 64:
        raise ReproError("qps sweep capped at 64 points")
    if lo_relative == hi_relative and hi < lo:
        raise ReproError(f"qps sweep {text!r} has HI < LO")
    return QpsSweep(lo, hi, points, lo_relative, hi_relative)


# -------------------------------------------------------- arrival shapes --


def _arrival_spec(kind: str, qps: float, num_cores: int,
                  seed: int) -> Tuple:
    """Picklable arrival spec offering an *aggregate* load of ``qps``.

    This is the aggregate -> per-core conversion boundary: each core
    runs its own arrival stream, so the per-stream mean gap is
    ``num_cores / qps`` seconds.  The modulated shapes pass
    ``streams=num_cores`` so their shared dwell/period clocks track
    machine time rather than eroding N times too fast.
    """
    if qps <= 0:
        raise ConfigurationError(f"offered load must be positive: {qps}")
    per_core_mean_ns = num_cores / qps * 1e9
    if kind == "poisson":
        return parallel.poisson(per_core_mean_ns, seed=seed + 1)
    if kind == "mmpp":
        # Pick the normal-state gap so the *stationary* rate matches
        # the requested load: rate = (f0 + f1*ratio) / normal_gap.
        burst_dwell_ns = MMPP_CYCLE_NS * MMPP_BURST_FRACTION
        mean_dwell_ns = MMPP_CYCLE_NS - burst_dwell_ns
        normal_gap_ns = per_core_mean_ns * (
            (1.0 - MMPP_BURST_FRACTION)
            + MMPP_BURST_FRACTION * MMPP_BURST_RATIO
        )
        return parallel.mmpp(
            normal_gap_ns, normal_gap_ns / MMPP_BURST_RATIO,
            mean_dwell_ns, burst_dwell_ns, seed=seed + 1,
            streams=num_cores,
        )
    if kind == "diurnal":
        return parallel.diurnal(
            per_core_mean_ns, DIURNAL_PERIOD_NS, DIURNAL_AMPLITUDE,
            seed=seed + 1, streams=num_cores,
        )
    known = ", ".join(ARRIVAL_KINDS)
    raise ConfigurationError(
        f"unknown arrival kind {kind!r}; known: {known}"
    )


# ----------------------------------------------------------------- cells --


def _make_cell(preset: str, qps: float, result,
               slo_ns: float, backlog_threshold: float) -> LoadgenCell:
    """One simulation result -> one schema cell, censoring applied."""
    censored = result.backlog_fraction > backlog_threshold
    observed_p99 = result.response_p99_ns
    lower_bound = result.response_p99_lower_bound_ns
    if censored:
        p99_ns = None       # the window cannot certify this tail
        meets = False       # conservatively an SLO violation
    else:
        p99_ns = observed_p99
        meets = observed_p99 is not None and observed_p99 <= slo_ns
    return LoadgenCell(
        preset=preset,
        offered_qps=qps,
        achieved_qps=result.throughput_jobs_per_s,
        completed_jobs=result.completed_jobs,
        unfinished_jobs=result.unfinished_jobs,
        backlog_fraction=result.backlog_fraction,
        censored=censored,
        p99_us=None if p99_ns is None else p99_ns / US,
        observed_p99_us=(None if observed_p99 is None
                         else observed_p99 / US),
        p99_lower_bound_us=(None if lower_bound is None
                            else lower_bound / US),
        service_p99_us=result.service_p99_ns / US,
        response_mean_us=(None if result.response_mean_ns is None
                          else result.response_mean_ns / US),
        meets_slo=meets,
    )


def _experiment_presets(experiment: str) -> Tuple[str, ...]:
    """The experiment's config presets (its ``CONFIGS`` tuple, falling
    back to :data:`DEFAULT_PRESETS`)."""
    from repro.harness import EXPERIMENTS  # deferred: heavy

    if experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment!r}; known: {known}"
        )
    module = importlib.import_module(f"repro.harness.{experiment}")
    configs = getattr(module, "CONFIGS", None)
    return tuple(configs) if configs else DEFAULT_PRESETS


def _check_monotonic(bench: LoadgenBench) -> bool:
    """Uncensored headline p99 non-decreasing in load, per preset."""
    for preset in bench.presets:
        last = None
        for cell in bench.curve(preset):
            if cell.censored or cell.p99_us is None:
                continue
            if last is not None and cell.p99_us < last:
                return False
            last = cell.p99_us
    return True


# ----------------------------------------------------------------- knees --


def _solve_preset_knee(preset: str, cells: List[LoadgenCell],
                       measure_fresh, slo_ns: float,
                       refine_evals: int) -> PresetKnee:
    """Knee for one preset: bracket on the grid, optionally refine.

    ``measure_fresh(qps)`` runs one fresh simulation and returns its
    certified p99 in ns (``None`` = censored).  Grid cells seed the
    memo so the solver's endpoint re-checks never rerun simulations,
    and every probed load lands in ``evaluations``.
    """
    memo: Dict[float, Optional[float]] = {
        cell.offered_qps: (None if cell.p99_us is None
                           else cell.p99_us * US)
        for cell in cells
    }

    def measure(qps: float) -> Optional[float]:
        if qps not in memo:
            memo[qps] = measure_fresh(qps)
        return memo[qps]

    grid_evals = [
        KneeEvalPoint(cell.offered_qps, cell.p99_us,
                      bool(cell.meets_slo))
        for cell in cells
    ]
    last_good: Optional[float] = None
    first_bad: Optional[float] = None
    for cell in cells:
        if cell.meets_slo:
            last_good = cell.offered_qps
        else:
            first_bad = cell.offered_qps
            break

    if last_good is None:
        return PresetKnee(preset, None, None, BELOW_RANGE, grid_evals)
    if first_bad is None:
        return PresetKnee(preset, last_good, None, ABOVE_RANGE,
                          grid_evals)
    if refine_evals <= 0:
        return PresetKnee(preset, last_good, None, GRID, grid_evals)

    # Bisect inside the grid bracket.  The two endpoint checks hit the
    # memo, so ``refine_evals`` counts only fresh simulations.
    solution = solve_knee(measure, last_good, first_bad, slo_ns,
                          max_evals=refine_evals + 2)
    evals = grid_evals + [
        KneeEvalPoint(evaluation.qps,
                      (None if evaluation.p99_ns is None
                       else evaluation.p99_ns / US),
                      evaluation.meets_slo)
        for evaluation in solution.evaluations
        if evaluation.qps not in {point.qps for point in grid_evals}
    ]
    return PresetKnee(preset, solution.sustained_qps, None,
                      solution.status, evals)


# ------------------------------------------------------------ the driver --


def run_loadgen(experiment: str = "fig10", scale="quick",
                qps_sweep: Optional[str] = None,
                slo_us: Optional[float] = None,
                workload: Optional[str] = None,
                presets: Optional[Sequence[str]] = None,
                arrival: str = "poisson",
                rber: float = 0.0, fault_seed: int = 0xF1A5,
                seed: int = 42,
                backlog_threshold: float = DEFAULT_BACKLOG_THRESHOLD,
                refine_evals: int = 4,
                jobs: Optional[int] = None,
                snapshots: Optional[bool] = None,
                snapshot_dir=None,
                cache: Optional[bool] = None,
                cache_dir=None,
                backend: Optional[str] = None) -> LoadgenBench:
    """Sweep offered load and build per-preset knee curves.

    The DRAM-only closed-loop saturation run anchors everything:
    relative sweep endpoints, the default SLO
    (:data:`DEFAULT_SLO_SERVICE_FACTOR` x its mean service time) and
    the knee's ``sustained_fraction_of_dram`` normalization.  With
    ``rber > 0`` the flash-backed presets run under injected faults
    (same knobs as ``repro chaos``), composing the two sweep axes.

    ``backend`` selects the execution backend for every cell (default:
    :func:`repro.sim.vector.preferred_backend` — vector unless
    ``$REPRO_BACKEND`` overrides).  Cells whose shape the vector
    backend cannot reproduce bit-identically fall back per run; the
    ``execution`` block of the result accounts for both populations.
    """
    scale = resolve_scale(scale)
    backend = _vector.preferred_backend(backend)
    if arrival not in ARRIVAL_KINDS:
        known = ", ".join(ARRIVAL_KINDS)
        raise ReproError(
            f"unknown arrival kind {arrival!r}; known: {known}"
        )
    sweep = parse_qps_sweep(qps_sweep if qps_sweep is not None
                            else DEFAULT_QPS_SWEEP)
    if presets is None:
        presets = _experiment_presets(experiment)
    presets = tuple(presets)
    if workload is None:
        workload = "tatp" if "tatp" in scale.workloads \
            else scale.workloads[0]

    run_kwargs = dict(jobs=jobs, snapshots=snapshots,
                      snapshot_dir=snapshot_dir, cache=cache,
                      cache_dir=cache_dir, backend=backend)

    saturation = run_spec(
        RunSpec("dram-only", workload, scale, seed=seed), **run_kwargs
    )
    saturation_qps = saturation.throughput_jobs_per_s
    slo_ns = (slo_us * US if slo_us is not None
              else DEFAULT_SLO_SERVICE_FACTOR * saturation.service_mean_ns)

    def overrides_for(preset: str) -> Tuple:
        # Fault injection composes with chaos semantics: flash-backed
        # presets only (dram-only has no flash to fault) and rber = 0
        # stays the bit-identical clean baseline.
        if rber > 0.0 and preset != "dram-only":
            return fault_overrides(rber, fault_seed)
        return ()

    def spec_for(preset: str, qps: float) -> RunSpec:
        return RunSpec(
            preset, workload, scale, seed=seed,
            arrivals=_arrival_spec(arrival, qps, scale.num_cores, seed),
            config_overrides=overrides_for(preset),
        )

    qps_points = sweep.resolve(saturation_qps)
    grid = [(preset, qps) for preset in presets for qps in qps_points]
    results = run_specs([spec_for(preset, qps) for preset, qps in grid],
                        **run_kwargs)
    cells = [
        _make_cell(preset, qps, result, slo_ns, backlog_threshold)
        for (preset, qps), result in zip(grid, results)
    ]

    bench = LoadgenBench(
        experiment=experiment,
        scale=scale.name,
        workload=workload,
        arrival=arrival,
        seed=seed,
        slo_us=slo_ns / US,
        backlog_threshold=backlog_threshold,
        saturation_qps=saturation_qps,
        qps_points=list(qps_points),
        presets=list(presets),
        rber=rber,
        fault_seed=fault_seed,
        cells=cells,
        knees=[],
        config_preset=scale.name,
    )

    for preset in presets:
        def measure_fresh(qps: float, _preset: str = preset
                          ) -> Optional[float]:
            result = run_spec(spec_for(_preset, qps), **run_kwargs)
            cell = _make_cell(_preset, qps, result, slo_ns,
                              backlog_threshold)
            return None if cell.p99_us is None else cell.p99_us * US
        knee = _solve_preset_knee(preset, bench.curve(preset),
                                  measure_fresh, slo_ns, refine_evals)
        if knee.sustained_qps is not None and saturation_qps > 0:
            knee.sustained_fraction_of_dram = (
                knee.sustained_qps / saturation_qps
            )
        bench.knees.append(knee)

    bench.monotonic_p99 = _check_monotonic(bench)

    # Backend accounting (schema v2): classified from config facts so
    # the block is identical whether cells executed or came from the
    # cache.  One closed-loop saturation anchor, then per preset the
    # grid cells plus the fresh knee-refinement probes (knee
    # evaluations beyond the grid), all open-loop.
    dram_config = build_config("dram-only", scale)
    shape_counts = [(dram_config.mode, dram_config.num_cores,
                     False, False, 1)]
    for preset in presets:
        config = build_config(preset, scale)
        faulted = rber > 0.0 and preset != "dram-only"
        runs = len(bench.curve(preset))
        knee = bench.knee(preset)
        if knee is not None:
            runs += max(0, len(knee.evaluations) - len(bench.curve(preset)))
        shape_counts.append((config.mode, config.num_cores, True,
                             faulted, runs))
    bench.execution = _vector.execution_summary(backend, shape_counts)
    return bench
