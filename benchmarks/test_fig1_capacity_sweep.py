"""Benchmark: regenerate Fig. 1 (miss ratio / flash bandwidth vs DRAM
capacity) and check the paper's shape."""

from conftest import run_once

from repro.harness import run_experiment


def test_fig1_capacity_sweep(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "fig1",
                      scale=harness_scale, steps_per_workload=40_000)
    print("\n" + result.format_table())

    caps = result.column("dram_capacity_pct")
    misses = dict(zip(caps, result.column("miss_ratio")))
    bandwidth = dict(zip(caps, result.column("flash_bw_gbps_64cores")))

    # Miss rate monotonically improves and flattens: the 1%->3% gain
    # dwarfs the 3%->10% gain (the knee the paper sizes DRAM at).
    assert misses[1.0] > misses[3.0] > misses[10.0]
    assert misses[1.0] - misses[3.0] > misses[3.0] - misses[10.0]
    # The knee's bandwidth is the paper's ~60 GB/s order of magnitude
    # and fits multiple-SSD PCIe Gen5 provisioning.
    assert 20.0 < bandwidth[3.0] < 150.0
