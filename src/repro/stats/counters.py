"""Named counters and rate/ratio helpers used by every component."""

from __future__ import annotations

from typing import Dict

from repro.errors import ReproError


class CounterSet:
    """A bag of named monotonically-increasing counters.

    Components expose a ``stats`` attribute of this type; the harness
    collects them into report rows.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {key!r} decremented by {amount}")
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def get(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __getitem__(self, key: str) -> float:
        return self.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` counters; 0 when denominator is 0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counters)

    def merge(self, other: "CounterSet") -> None:
        for key, value in other._counters.items():
            self.add(key, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"<CounterSet {self.name} {inner}>"
