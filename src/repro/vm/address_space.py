"""Per-process address space: page table + TLB + walker, glued.

Sec. II-B's virtual-memory abstraction as an executable object: the
application maps virtual pages once and uses permanent virtual
addresses forever; translation goes TLB-first, walks the radix table on
a miss, and unmapping invalidates every core's TLB through the
shootdown machinery.

The full-system runner models translation costs statistically (see
DESIGN.md); this class is the functional counterpart used by tests,
tooling, and anyone extending the repo toward a page-accurate VM.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.config.system import OsConfig
from repro.errors import WorkloadError
from repro.stats import CounterSet
from repro.vm.page_table import PageTable
from repro.vm.shootdown import TlbShootdownModel
from repro.vm.tlb import Tlb
from repro.vm.walker import PageTableWalker


class AddressSpace:
    """One process's translations across a multi-core machine."""

    def __init__(self, num_cores: int, tlb_entries: int = 64,
                 os_config: Optional[OsConfig] = None,
                 pt_page_allocator=None) -> None:
        if pt_page_allocator is None:
            counter = itertools.count(1 << 40)
            pt_page_allocator = lambda: next(counter)  # noqa: E731
        self.page_table = PageTable(pt_page_allocator)
        self.walker = PageTableWalker(self.page_table)
        self.tlbs: List[Tlb] = [
            Tlb(tlb_entries, name=f"tlb{core}") for core in range(num_cores)
        ]
        self.shootdown = TlbShootdownModel(os_config or OsConfig(),
                                           num_cores)
        self._next_ppn = 0
        self.stats = CounterSet("address-space")

    # -- mapping -------------------------------------------------------------

    def map(self, vpn: int, ppn: Optional[int] = None) -> int:
        """Install a translation; allocates a PPN when none is given."""
        if self.page_table.translate(vpn) is not None:
            raise WorkloadError(f"vpn {vpn} already mapped")
        if ppn is None:
            ppn = self._next_ppn
            self._next_ppn += 1
        self.page_table.map(vpn, ppn)
        self.stats.add("maps")
        return ppn

    def unmap(self, vpn: int) -> float:
        """Remove a translation; returns the shootdown latency paid."""
        self.page_table.unmap(vpn)
        latency = self.shootdown.execute(vpn, self.tlbs)
        self.stats.add("unmaps")
        return latency

    # -- translation -----------------------------------------------------------

    def translate(self, core_id: int, vpn: int) -> Tuple[int, List[int]]:
        """Translate on ``core_id``.

        Returns ``(ppn, walk_pages)`` where ``walk_pages`` is empty on
        a TLB hit and lists the table pages the hardware walker read on
        a miss.  Raises :class:`WorkloadError` for unmapped addresses
        (the OS would fault).
        """
        tlb = self.tlbs[core_id]
        ppn = tlb.lookup(vpn)
        if ppn is not None:
            self.stats.add("tlb_hits")
            return ppn, []
        walk_pages = self.walker.walk_pages(vpn)
        ppn = self.page_table.translate(vpn)
        if ppn is None:
            self.stats.add("translation_faults")
            raise WorkloadError(f"vpn {vpn} is not mapped")
        tlb.insert(vpn, ppn)
        self.stats.add("tlb_fills")
        return ppn, walk_pages

    # -- reporting --------------------------------------------------------------

    def tlb_hit_ratio(self) -> float:
        hits = self.stats["tlb_hits"]
        total = hits + self.stats["tlb_fills"] + \
            self.stats["translation_faults"]
        if total == 0:
            return 0.0
        return hits / total

    @property
    def mapped_pages(self) -> int:
        return self.page_table.mapping_count
