"""Workloads: Zipfian generator, paged data structures, the seven
evaluated applications, and arrival processes."""

from repro.workloads.arrayswap import ArraySwapWorkload
from repro.workloads.arrival import (
    ArrivalProcess,
    ClosedLoop,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrival_from_spec,
)
from repro.workloads.base import Job, Step, Workload
from repro.workloads.hashtable import HashIndex, HashTableWorkload
from repro.workloads.masstree import Masstree, MasstreeWorkload
from repro.workloads.masstree_layers import LayeredMasstree, key_slices
from repro.workloads.pagedheap import PagedHeap, PageRef, SpreadHeap
from repro.workloads.rbtree import RbtWorkload, RedBlackTree
from repro.workloads.registry import (
    EVALUATED_WORKLOADS,
    make_workload,
    workload_names,
)
from repro.workloads.silo import SiloWorkload
from repro.workloads.tatp import TatpWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.zipf import ZipfianGenerator

__all__ = [
    "ArraySwapWorkload",
    "ArrivalProcess",
    "ClosedLoop",
    "DiurnalArrivals",
    "EVALUATED_WORKLOADS",
    "HashIndex",
    "HashTableWorkload",
    "Job",
    "LayeredMasstree",
    "MMPPArrivals",
    "Masstree",
    "MasstreeWorkload",
    "PagedHeap",
    "PageRef",
    "PoissonArrivals",
    "RbtWorkload",
    "RedBlackTree",
    "SiloWorkload",
    "SpreadHeap",
    "Step",
    "TatpWorkload",
    "TpccWorkload",
    "TraceArrivals",
    "Workload",
    "ZipfianGenerator",
    "arrival_from_spec",
    "key_slices",
    "make_workload",
    "workload_names",
]
