"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields:

* a ``float`` — sleep that many nanoseconds;
* a :class:`Signal` — block until the signal is fired (the value passed
  to :meth:`Signal.fire` becomes the result of the ``yield``);
* another :class:`Process` — block until that process finishes (its
  return value becomes the result of the ``yield``).

This mirrors the structure of simpy but is implemented from scratch so
the library has no external simulation dependency.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from repro.errors import SimulationError
from repro.sim.engine import Engine

Yieldable = Union[float, int, "Signal", "Process"]
ProcessGenerator = Generator[Yieldable, Any, Any]


class Signal:
    """A one-shot synchronization point.

    Processes wait on a signal by yielding it; :meth:`fire` wakes all
    waiters at the current simulation time and records the payload.
    Firing twice is a protocol error, waiting on an already-fired
    signal returns immediately.
    """

    __slots__ = ("engine", "name", "fired", "value", "_waiters")

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking every waiting process."""
        if self.fired:
            raise SimulationError(f"signal fired twice: {self!r}")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine.schedule(0.0, process._resume, value)

    def _add_waiter(self, process: "Process") -> None:
        if self.fired:
            self.engine.schedule(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"{len(self._waiters)} waiting"
        return f"<Signal {self.name or id(self)} {state}>"


class Process:
    """A running generator coroutine scheduled on an :class:`Engine`."""

    __slots__ = ("engine", "generator", "name", "finished", "result", "_done_signal")

    def __init__(self, engine: Engine, generator: ProcessGenerator, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self._done_signal: Optional[Signal] = None
        engine.schedule(0.0, self._resume, None)

    # -- lifecycle ------------------------------------------------------------

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        # Fast path: the overwhelmingly common yield is a plain float
        # sleep; dispatch it here without the _wait_on call frame.
        if type(target) is float:
            self.engine.schedule(target, self._resume, None)
        else:
            self._wait_on(target)

    def _wait_on(self, target: Yieldable) -> None:
        if isinstance(target, (int, float)):
            self.engine.schedule(float(target), self._resume, None)
        elif isinstance(target, Signal):
            target._add_waiter(self)
        elif isinstance(target, Process):
            target._add_join_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        if self._done_signal is not None:
            self._done_signal.fire(result)

    def _add_join_waiter(self, process: "Process") -> None:
        if self.finished:
            self.engine.schedule(0.0, process._resume, self.result)
            return
        if self._done_signal is None:
            self._done_signal = Signal(self.engine, f"join:{self.name}")
        self._done_signal._add_waiter(process)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"<Process {self.name or id(self)} {state}>"


def spawn(engine: Engine, generator: ProcessGenerator, name: str = "") -> Process:
    """Start ``generator`` as a simulation process."""
    return Process(engine, generator, name)


class _SignalObserver:
    """Adapter letting a plain callback wait on a Signal."""

    __slots__ = ("callback",)

    def __init__(self, callback) -> None:
        self.callback = callback

    def _resume(self, value: Any) -> None:
        self.callback(value)


def observe(signal: Signal, callback) -> None:
    """Invoke ``callback(value)`` when ``signal`` fires — a lightweight
    alternative to spawning a whole process just to watch a signal."""
    signal._add_waiter(_SignalObserver(callback))  # type: ignore[arg-type]
