"""Unit tests for user-level threads, schedulers, and the library."""

import pytest

from repro.config import SchedulingPolicy, UltConfig
from repro.cpu import MissHandlingRegisters
from repro.errors import ConfigurationError, ProtocolError
from repro.ult import (
    FifoScheduler,
    PriorityAgingScheduler,
    ThreadLibrary,
    ThreadState,
    UserThread,
    make_scheduler,
)


def new_thread(tid=0, job="job", now=0.0):
    thread = UserThread(tid, core_id=0)
    thread.bind(job, now)
    return thread


class TestUserThread:
    def test_lifecycle(self):
        thread = new_thread()
        assert thread.state is ThreadState.NEW
        thread.dispatch()
        assert thread.state is ThreadState.RUNNING
        thread.halt_on_miss(page=7, now=10.0)
        assert thread.state is ThreadState.PENDING
        thread.data_arrived(now=60.0)
        assert thread.state is ThreadState.READY
        thread.dispatch()
        job = thread.finish()
        assert job == "job"
        assert thread.state is ThreadState.DONE

    def test_pending_age(self):
        thread = new_thread()
        thread.dispatch()
        thread.halt_on_miss(page=1, now=100.0)
        assert thread.pending_age(150.0) == pytest.approx(50.0)

    def test_invalid_transitions_raise(self):
        thread = UserThread(0, 0)
        with pytest.raises(ProtocolError):
            thread.dispatch()  # DONE -> RUNNING not allowed
        bound = new_thread()
        with pytest.raises(ProtocolError):
            bound.halt_on_miss(1, 0.0)  # not running
        with pytest.raises(ProtocolError):
            bound.finish()  # not running
        with pytest.raises(ProtocolError):
            bound.pending_age(1.0)

    def test_rebinding_busy_thread_raises(self):
        thread = new_thread()
        with pytest.raises(ProtocolError):
            thread.bind("another", 0.0)

    def test_switch_count(self):
        thread = new_thread()
        thread.dispatch()
        thread.halt_on_miss(1, 0.0)
        thread.data_arrived(1.0)
        thread.dispatch()
        assert thread.switches == 2


def halted(tid, now, page=1):
    thread = new_thread(tid)
    thread.dispatch()
    thread.halt_on_miss(page, now)
    return thread


class TestPriorityAgingScheduler:
    def make(self, **overrides):
        config = UltConfig(**overrides)
        return PriorityAgingScheduler(config)

    def test_new_jobs_run_before_unready_pending(self):
        sched = self.make()
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        fresh = new_thread(1)
        sched.add_new(fresh)
        # Pending is young (age < flash response): new job wins.
        assert sched.pick_next(now=10.0, avg_flash_response_ns=50_000) is fresh

    def test_new_jobs_beat_young_ready_pending(self):
        # Paper: new jobs have priority 2, pending priority 1.
        sched = self.make()
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        pending.data_arrived(now=50.0)
        fresh = new_thread(1)
        sched.add_new(fresh)
        assert sched.pick_next(now=60.0, avg_flash_response_ns=50_000) is fresh
        # Once no new work remains, the ready pending job runs.
        assert sched.pick_next(now=60.0, avg_flash_response_ns=50_000) is pending

    def test_aging_promotes_old_ready_pending_over_new(self):
        sched = self.make()
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        pending.data_arrived(now=60_000.0)
        fresh = new_thread(1)
        sched.add_new(fresh)
        # Head is older than the average flash response and its data
        # arrived: it preempts new work (the anti-starvation rule).
        picked = sched.pick_next(now=100_000.0, avg_flash_response_ns=50_000)
        assert picked is pending
        assert sched.stats["aged_dispatches"] == 1

    def test_aged_but_unready_head_does_not_block_new_work(self):
        sched = self.make()
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        fresh = new_thread(1)
        sched.add_new(fresh)
        # The queue-pair notification says data has not arrived: the
        # scheduler runs other work instead of blocking the core.
        picked = sched.pick_next(now=100_000.0, avg_flash_response_ns=50_000)
        assert picked is fresh

    def test_empty_scheduler_returns_none(self):
        sched = self.make()
        assert sched.pick_next(0.0, 50_000) is None

    def test_forced_dispatch_when_pending_full_and_no_new(self):
        sched = self.make(pending_queue_limit=1)
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        assert sched.pending_full
        picked = sched.pick_next(now=1.0, avg_flash_response_ns=50_000)
        assert picked is pending

    def test_pending_overflow_raises(self):
        sched = self.make(pending_queue_limit=1)
        sched.add_pending(halted(0, 0.0))
        with pytest.raises(ProtocolError):
            sched.add_pending(halted(1, 0.0))

    def test_only_correct_states_enqueue(self):
        sched = self.make()
        running = new_thread()
        running.dispatch()
        with pytest.raises(ProtocolError):
            sched.add_new(running)
        with pytest.raises(ProtocolError):
            sched.add_pending(running)


class TestFifoScheduler:
    def make(self, **overrides):
        return FifoScheduler(UltConfig(**overrides))

    def test_pending_only_checked_at_miss_points(self):
        sched = self.make()
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        pending.data_arrived(now=50.0)
        fresh = new_thread(1)
        sched.add_new(fresh)
        # No miss since the last decision: the ready pending job is
        # invisible; the new job runs, then the scheduler idles even
        # though a ready job waits (the Sec. VI-B starvation).
        assert sched.pick_next(now=60.0, avg_flash_response_ns=50_000) is fresh
        assert sched.pick_next(now=60.0, avg_flash_response_ns=50_000) is None
        # After a miss event, the pending head is finally noticed.
        sched.note_miss()
        assert sched.pick_next(now=61.0, avg_flash_response_ns=50_000) is pending

    def test_unready_head_blocks_ready_followers(self):
        sched = self.make()
        head = halted(0, now=0.0)
        follower = halted(1, now=1.0)
        sched.add_pending(head)
        sched.add_pending(follower)
        follower.data_arrived(now=50.0)
        sched.note_miss()
        # Head-of-line blocking: the ready follower cannot jump the
        # unready FIFO head.
        assert sched.pick_next(now=60.0, avg_flash_response_ns=50_000) is None

    def test_forced_drain_when_full(self):
        sched = self.make(pending_queue_limit=1)
        pending = halted(0, now=0.0)
        sched.add_pending(pending)
        assert sched.pick_next(now=1.0, avg_flash_response_ns=50_000) is pending


class TestMakeScheduler:
    def test_policy_selection(self):
        assert isinstance(
            make_scheduler(UltConfig(policy=SchedulingPolicy.PRIORITY_AGING)),
            PriorityAgingScheduler,
        )
        assert isinstance(
            make_scheduler(UltConfig(policy=SchedulingPolicy.FIFO)),
            FifoScheduler,
        )


class TestThreadLibrary:
    def test_admission_bounded_by_contexts(self):
        library = ThreadLibrary(0, UltConfig(threads_per_core=2))
        library.admit("a", now=0.0)
        library.admit("b", now=0.0)
        assert not library.can_admit()
        with pytest.raises(ConfigurationError):
            library.admit("c", now=0.0)

    def test_context_recycled_on_finish(self):
        library = ThreadLibrary(0, UltConfig(threads_per_core=1))
        thread = library.admit("job", now=0.0)
        picked = library.pick_next(0.0, 50_000)
        assert picked is thread
        picked.dispatch()
        assert library.on_finish(picked) == "job"
        assert library.can_admit()

    def test_miss_flow_through_library(self):
        library = ThreadLibrary(0, UltConfig(threads_per_core=2))
        thread = library.admit("job", now=0.0)
        library.pick_next(0.0, 50_000)
        thread.dispatch()
        library.on_miss(thread, page=9, now=5.0)
        assert library.scheduler.pending_count == 1
        library.on_data_ready(thread, now=55.0)
        assert thread.state is ThreadState.READY

    def test_handler_installed_via_privileged_path(self):
        registers = MissHandlingRegisters()
        library = ThreadLibrary(0, UltConfig(), registers=registers)
        assert registers.handler_address is not None

    def test_in_flight_accounting(self):
        library = ThreadLibrary(0, UltConfig(threads_per_core=4))
        library.admit("a", 0.0)
        library.admit("b", 0.0)
        assert library.in_flight == 2
        assert library.free_contexts == 2

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadLibrary(0, UltConfig(threads_per_core=0))
