"""Simulation runner: per-core execution loops for all four designs.

The runner executes a workload on a :class:`~repro.core.machine.Machine`
and measures throughput, service latency (dispatch to completion,
including miss waits, excluding job-queue time — the paper's Sec. V-A
definition) and response latency (arrival to completion).

Execution model (see DESIGN.md): jobs are sequences of
compute-then-access steps at DRAM-access granularity.  Compute and
DRAM-cache *hits* are accumulated locally and yielded to the event
engine in ~1 us quanta (hits involve no contention in the model);
every DRAM-cache *miss* runs the full event-driven machinery:
FC -> MSR/BC -> flash -> install -> miss signal -> ROB flush ->
user-level thread switch.

Mode summary:

* ``DRAM_ONLY``  — every access is a flat DRAM access; run to completion.
* ``FLASH_SYNC`` — hardware DRAM cache, but the core blocks on misses
  (FlatFlash); run to completion.
* ``ASTRIFLASH`` — switch-on-miss with the user-level thread library.
* ``OS_SWAP``    — kernel-thread multiplexing with page-fault and
  context-switch costs and shootdown-serialized installs.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.config.system import PagingMode, SystemConfig
from repro.core.machine import Machine
from repro.errors import ConfigurationError, SimulationError
from repro.obs.telemetry import TelemetrySampler
from repro.obs.tracer import active as _tracer_active
from repro.sim import Signal, observe, spawn
from repro.sim import vector as _vector
from repro.stats import CounterSet, LatencyTracker, ThroughputTracker
from repro.stats.histogram import percentile
from repro.ult.queuepair import CompletionQueue
from repro.ult.thread import ThreadState, UserThread
from repro.units import US
from repro.workloads.arrival import ClosedLoop
from repro.workloads.base import Job, Workload

# Compute/hit time is accumulated locally and yielded in quanta of this
# size, bounding how far a flash fetch can start ahead of its logical
# issue point.
TIME_QUANTUM_NS = 1_000.0

# A synchronous waiter can lose the race between a refill's install and
# its own wakeup (the page may be evicted in between); the replay then
# misses again and must wait for a fresh refill.  More than a handful of
# consecutive losses means the set is thrashing pathologically.
REPLAY_RACE_LIMIT = 8

# Process-wide warmup-vs-measurement wall-clock split, accumulated
# across every Runner in this process (mirrors
# ``repro.sim.engine.total_events_executed``); the report footer prints
# the delta around a report run.
_WALL_TOTALS: Dict[str, float] = {"warm_seconds": 0.0,
                                  "measure_seconds": 0.0}


def wall_split_totals() -> Dict[str, float]:
    """Cumulative in-process wall seconds spent warming vs measuring."""
    return dict(_WALL_TOTALS)


@dataclass
class SimulationResult:
    """Everything a harness needs from one run."""

    config_name: str
    workload_name: str
    throughput_jobs_per_s: float
    completed_jobs: int
    service_p50_ns: float
    service_p99_ns: float
    service_mean_ns: float
    response_p99_ns: Optional[float]
    response_mean_ns: Optional[float]
    miss_ratio: float
    mean_inter_miss_ns: Optional[float]
    core_busy_fraction: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    # Kernel throughput: simulated events executed per wall-clock
    # second for this run (0.0 when the wall time was unmeasurably
    # small).  Not deterministic — excluded from golden comparisons.
    events_per_second: float = 0.0
    # Wall-clock accounting for the run (warmup share vs total) and
    # where the warm state came from: "fresh" (warm_caches ran),
    # "snapshot" (restored via repro.snapshot), or "none" (no warm
    # tier / warm disabled).  Wall fields are not deterministic —
    # excluded from golden and serial-vs-parallel comparisons.
    warm_wall_seconds: float = 0.0
    wall_seconds: float = 0.0
    warm_source: str = "none"
    # Open-loop censoring contract (DESIGN.md §4g): requests still
    # queued or in flight when the measurement window closed are
    # *censored* out of the completed-sample percentiles — exactly the
    # requests that define the tail near the saturation knee.
    # ``unfinished_jobs`` counts them (queued + dispatched-but-live),
    # ``backlog_fraction`` is their share of all requests the window
    # should have accounted for, and
    # ``response_p99_lower_bound_ns`` merges their ages (a lower bound
    # on each one's eventual response latency) back into the sample
    # set — a valid lower bound on the true p99.  Consumers
    # (repro.loadgen) must flag cells whose backlog fraction exceeds
    # their threshold instead of trusting the optimistic window p99.
    unfinished_jobs: int = 0
    inflight_jobs: int = 0
    queued_jobs: int = 0
    backlog_fraction: float = 0.0
    response_p99_lower_bound_ns: Optional[float] = None

    def describe(self) -> str:
        lines = [
            f"{self.config_name} / {self.workload_name}:",
            f"  throughput      {self.throughput_jobs_per_s:,.0f} jobs/s",
            f"  service p50/p99 {self.service_p50_ns / US:.1f} / "
            f"{self.service_p99_ns / US:.1f} us",
            f"  miss ratio      {self.miss_ratio:.2%}",
        ]
        if self.response_p99_ns is not None:
            lines.append(
                f"  response p99    {self.response_p99_ns / US:.1f} us"
            )
        if self.unfinished_jobs:
            lines.append(
                f"  backlog         {self.unfinished_jobs} unfinished "
                f"jobs ({self.backlog_fraction:.1%} of offered)"
            )
        return "\n".join(lines)

    def metrics(self, backend: str = ""):
        """This result as a labeled :class:`repro.metrics.MetricSet`
        (the unified-registry view, DESIGN.md §4i).  Wall-clock fields
        stay out — they belong on the run-ledger record, so the view
        is deterministic for identical-seed runs."""
        from repro.metrics import metrics_from_result  # deferred: cycle

        return metrics_from_result(self, backend=backend)


class Runner:
    """Run one (configuration, workload, arrival process) experiment."""

    def __init__(self, config: SystemConfig, workload: Workload,
                 arrivals=None, seed: Optional[int] = None,
                 warm: bool = True, backend: Optional[str] = None) -> None:
        self.config = config
        self.workload = workload
        self.arrivals = arrivals if arrivals is not None else ClosedLoop()
        self.machine = Machine(config)
        self.seed = config.scale.seed if seed is None else seed
        self._rng = random.Random(self.seed)
        self._warm = warm
        # Execution backend: "scalar" (golden reference) or "vector"
        # (repro.sim.vector epochs, bit-identical where supported).
        # None defers to $REPRO_BACKEND at run() time.
        self._backend_request = backend
        self._vector_kind: Optional[str] = None
        # Buffered TLB-draw bridge owned by the vector loops; resynced
        # into self._rng once at end of run.
        self._vector_tlb_rng: Optional[_vector.BatchedRandom] = None
        self._warm_source = "none"
        self._warm_wall_seconds = 0.0

        self.service_latency = LatencyTracker(name="service")
        self.response_latency = LatencyTracker(name="response")
        self.throughput = ThroughputTracker(name="jobs")
        self.stats = CounterSet("runner")
        # Bound handles for counters bumped on (nearly) every access.
        self._tlb_miss_count = self.stats.counter("tlb_misses")
        self._jobs_completed_count = self.stats.counter("jobs_completed")
        self._rng_random = self._rng.random
        # Observability: bind the active tracer once (None = disabled).
        # Hot paths branch on this local/attribute, never on the
        # module flag, and sampled jobs take duplicated *traced* loop
        # bodies so the untraced per-step path stays branch-free.
        self._tracer = _tracer_active()
        self._telemetry: Optional[TelemetrySampler] = None
        # Per-run invariants bound once for the per-access fast paths.
        self._tlb_miss_probability = config.tlb.miss_probability
        self._flat_walk_ns = (config.os.page_table_levels
                              * self.machine.flat_dram_latency_ns)

        self._queues: Dict[int, Deque[Job]] = {
            core_id: deque() for core_id in range(config.num_cores)
        }
        # Live-job registry for the censoring contract: a job enters
        # when a core (or thread library) takes it from the queue and
        # leaves in _finish_job.  Jobs still here — or still queued —
        # when the run ends are the requests the measurement window
        # censored.
        self._live_jobs: Dict[int, Job] = {}
        self._idle: Dict[int, Optional[Signal]] = {
            core_id: None for core_id in range(config.num_cores)
        }
        # Queue-pair notifications (Sec. IV-D2): the BC posts page
        # arrivals here; schedulers drain them at scheduling points.
        self._cqs: Dict[int, CompletionQueue] = {}
        for core_id, library in enumerate(self.machine.libraries):
            if library is None:
                continue
            capacity = 2 * library.config.threads_per_core
            self._cqs[core_id] = CompletionQueue(
                core_id, capacity=capacity,
                doorbell=(lambda cid=core_id: self._wake(cid)),
            )
        # Miss-interval accounting (Sec. II-A calibration).  The
        # ``_window_*`` snapshots are taken when the measurement window
        # opens so reported ratios exclude warmup traffic.
        self._busy_ns = 0.0
        self._accesses = 0
        self._misses = 0
        self._window_busy_ns = 0.0
        self._window_accesses = 0
        self._window_misses = 0

    # ----------------------------------------------------------------- warm --

    def warm(self, num_steps: Optional[int] = None) -> None:
        """Warm the machine's DRAM tier once (idempotent).

        Split out of :meth:`run` so :mod:`repro.snapshot` can capture
        the warm/measure boundary; times itself into the process-wide
        wall split.
        """
        if not self._warm:
            return
        self._warm = False
        machine = self.machine
        if machine.dram_cache is None and machine.pager is None:
            return  # no warm tier (DRAM-only): stays "none"
        start = time.perf_counter()
        if num_steps is None:
            machine.warm_caches(self.workload)
        else:
            machine.warm_caches(self.workload, num_steps=num_steps)
        self._warm_wall_seconds = time.perf_counter() - start
        self._warm_source = "fresh"
        _WALL_TOTALS["warm_seconds"] += self._warm_wall_seconds

    def mark_warm_restored(self, seconds: float) -> None:
        """Record that warm state was loaded from a snapshot (called
        by :func:`repro.snapshot.restore_warm`)."""
        self._warm = False
        self._warm_source = "snapshot"
        self._warm_wall_seconds = seconds
        _WALL_TOTALS["warm_seconds"] += seconds

    # ------------------------------------------------------------------ run --

    def run(self) -> SimulationResult:
        machine = self.machine
        engine = machine.engine
        scale = self.config.scale

        self.warm()
        wall_start = time.perf_counter()

        tracer = self._tracer
        if tracer is not None:
            tracer.begin_run(f"{self.config.name}/{self.workload.name}")
            if tracer.telemetry_interval_ns > 0.0:
                self._telemetry = TelemetrySampler(
                    self, tracer, tracer.telemetry_interval_ns
                )
                self._telemetry.start()

        # Backend selection (DESIGN.md §4h): the vector backend only
        # engages on run shapes it can reproduce bit-identically;
        # everything else silently takes the scalar path and records
        # the fallback reason in repro.sim.vector.stats().
        if _vector.resolve_backend(self._backend_request) == "vector":
            self._vector_kind, reason = _vector.classify(self)
            if self._vector_kind is None:
                _vector.record_fallback(reason)
        else:
            self._vector_kind = None

        open_loop = not isinstance(self.arrivals, ClosedLoop)
        if self._vector_kind == "fused":
            # Single-core DRAM-only: the whole measurement phase runs
            # heap-free; spawn/start_measurement/burst events are
            # accounted through Engine.advance_batch.
            _vector.run_fused(self)
        elif self._vector_kind in ("open-loop", "multi-core"):
            # Open-loop and/or multi-core DRAM-only: arrivals, core
            # resumes, and the measurement boundary advance as one
            # merged event horizon — a heap-free (time, seq) mirror of
            # the scalar schedule.
            _vector.run_merged(self)
        else:
            if open_loop:
                for core_id in range(self.config.num_cores):
                    spawn(engine, self._arrival_process(core_id),
                          name=f"arrivals{core_id}")
            for core_id in range(self.config.num_cores):
                spawn(engine, self._core_loop(core_id),
                      name=f"core{core_id}")
            engine.schedule(scale.warmup_ns, self._start_measurement)
            end = scale.warmup_ns + scale.measurement_ns
            engine.run(until=end)
        self.throughput.stop_measurement(engine.now)
        if self._vector_kind is not None:
            # Land the Python RNG streams on exactly the consumed
            # draw positions (buffered bridges defer this to run end).
            if self._vector_tlb_rng is not None:
                self._vector_tlb_rng.sync()
            self.workload.plan_sync()
            gap_sync = getattr(self.arrivals, "gap_sync", None)
            if gap_sync is not None:
                gap_sync()
        if tracer is not None:
            tracer.end_run(engine.now)

        wall_seconds = time.perf_counter() - wall_start
        _WALL_TOTALS["measure_seconds"] += wall_seconds
        return self._build_result(open_loop, wall_seconds)

    def _start_measurement(self) -> None:
        """Open the measurement window (scheduled at ``warmup_ns``).

        Split out of :meth:`run` so the vector backend can fire it at
        the same simulated instant the scalar schedule would.
        """
        machine = self.machine
        self.service_latency.start_measurement()
        self.response_latency.start_measurement()
        self.throughput.start_measurement(machine.engine.now)
        # Snapshot the cumulative counters so _build_result can
        # report measurement-window deltas instead of since-t=0
        # totals polluted by warmup traffic.
        self._window_busy_ns = self._busy_ns
        self._window_accesses = self._accesses
        self._window_misses = self._misses
        if machine.flash is not None:
            machine.flash.gc.start_measurement()

    def _build_result(self, open_loop: bool,
                      wall_seconds: float = 0.0) -> SimulationResult:
        if self.service_latency.count == 0:
            raise ConfigurationError(
                "no jobs completed in the measurement window; "
                "increase measurement_ns"
            )
        # Measurement-window deltas: warmup accesses/misses/busy time
        # must not pollute the reported steady-state statistics.
        accesses = self._accesses - self._window_accesses
        misses = self._misses - self._window_misses
        busy_ns = self._busy_ns - self._window_busy_ns
        miss_ratio = misses / max(1, accesses)
        inter_miss = (busy_ns / misses) if misses else None
        total_core_time = (self.config.num_cores
                           * self.config.scale.measurement_ns)
        busy_fraction = min(1.0, busy_ns / max(total_core_time, 1.0))
        counters = self.stats.as_dict()
        # Kernel health/throughput telemetry.  These keys are new
        # relative to the recorded goldens and wall-clock-adjacent, so
        # golden comparisons skip the "engine." prefix.
        engine = self.machine.engine
        counters["engine.events_executed"] = float(engine.events_executed)
        counters["engine.compactions"] = float(engine.compactions)
        events_per_second = (engine.events_executed / wall_seconds
                             if wall_seconds > 0 else 0.0)
        if self.machine.dram_cache is not None:
            counters.update({
                f"dramcache.{k}": v for k, v in
                self.machine.dram_cache.frontside.stats.as_dict().items()
            })
        if self.machine.flash is not None:
            counters.update({
                f"flash.{k}": v for k, v in
                self.machine.flash.stats.as_dict().items()
            })
            if self.machine.flash.writes is not None:
                # Window-scoped write-path telemetry (DESIGN.md §4j):
                # deltas against the start_measurement baselines, so
                # warmup-era writebacks never pollute the WA factor.
                # Gated on the write path, so default-path counter
                # sets (and goldens) are unchanged.
                counters.update({
                    f"writes.{k}": v for k, v in
                    self.machine.flash.gc.write_window().items()
                })
        # Censoring accounting: everything still queued or in flight
        # when the run stopped was offered to the system but never
        # reached the completed-sample percentiles.
        queued_jobs = sum(len(q) for q in self._queues.values())
        inflight_jobs = len(self._live_jobs)
        unfinished_jobs = queued_jobs + inflight_jobs
        offered = unfinished_jobs + self.throughput.completions
        backlog_fraction = unfinished_jobs / offered if offered else 0.0
        has_responses = open_loop and self.response_latency.count > 0
        return SimulationResult(
            config_name=self.config.name,
            workload_name=self.workload.name,
            throughput_jobs_per_s=self.throughput.rate_per_second(),
            completed_jobs=self.throughput.completions,
            service_p50_ns=self.service_latency.p50(),
            service_p99_ns=self.service_latency.p99(),
            service_mean_ns=self.service_latency.mean(),
            response_p99_ns=(self.response_latency.p99()
                             if has_responses else None),
            response_mean_ns=(self.response_latency.mean()
                              if has_responses else None),
            miss_ratio=miss_ratio,
            mean_inter_miss_ns=inter_miss,
            core_busy_fraction=busy_fraction,
            counters=counters,
            events_per_second=events_per_second,
            warm_wall_seconds=self._warm_wall_seconds,
            wall_seconds=wall_seconds + self._warm_wall_seconds,
            warm_source=self._warm_source,
            unfinished_jobs=unfinished_jobs,
            inflight_jobs=inflight_jobs,
            queued_jobs=queued_jobs,
            backlog_fraction=backlog_fraction,
            response_p99_lower_bound_ns=(
                self._response_p99_lower_bound()
                if has_responses else None
            ),
        )

    def _response_p99_lower_bound(self) -> float:
        """Censoring-corrected lower bound on the open-loop p99.

        The window's completed-sample p99 silently drops requests
        still queued or in flight when the window closed.  Each such
        request has already waited ``now - arrived_at``, a lower bound
        on its eventual response latency; merging those ages back into
        the sample set gives a valid lower bound on the true p99
        (standard right-censoring treatment).  Falls back to the
        observed p99 when the tracker holds no raw samples
        (log-histogram mode) or nothing was censored.
        """
        samples = self.response_latency.samples()
        if samples is None:
            return self.response_latency.p99()
        now = self.machine.engine.now
        ages = [now - job.arrived_at for job in self._live_jobs.values()
                if job.arrived_at is not None]
        for queue in self._queues.values():
            ages.extend(now - job.arrived_at for job in queue
                        if job.arrived_at is not None)
        if not ages:
            return self.response_latency.p99()
        merged = sorted(samples + ages)
        return percentile(merged, 0.99)

    # ------------------------------------------------------------ load gen --

    def _arrival_process(self, core_id: int):
        while True:
            gap = self.arrivals.next_gap_ns()
            if gap is None:
                return  # finite source (trace replay) exhausted
            yield gap
            job = self.workload.make_job()
            job.arrived_at = self.machine.engine.now
            self._queues[core_id].append(job)
            self._wake(core_id)

    def _next_job(self, core_id: int) -> Optional[Job]:
        queue = self._queues[core_id]
        if queue:
            job = queue.popleft()
            self._live_jobs[job.job_id] = job
            return job
        if isinstance(self.arrivals, ClosedLoop):
            job = self.workload.make_job()
            job.arrived_at = self.machine.engine.now
            self._live_jobs[job.job_id] = job
            return job
        return None

    def _wake(self, core_id: int) -> None:
        signal = self._idle[core_id]
        if signal is not None and not signal.fired:
            self._idle[core_id] = None
            signal.fire()

    def _finish_job(self, job: Job) -> None:
        now = self.machine.engine.now
        self._live_jobs.pop(job.job_id, None)
        job.finished_at = now
        self.service_latency.record(now - job.started_at)
        self.response_latency.record(now - job.arrived_at)
        self.throughput.record_completion()
        self._jobs_completed_count.incr()
        if self._tracer is not None:
            self._tracer.finish_request(job, now)

    # ------------------------------------------------------- replay helper --

    def _replay_until_hit(self, page: int, is_write: bool):
        """Replay an access after its refill signal fired, tolerating
        install/eviction races.

        A synchronous waiter resumes one event after the install; under
        set pressure the page can already be evicted again, so the
        replay *misses*.  The old code silently charged the miss-detect
        latency as if it hit and leaked the fresh completion signal.
        Instead, wait for each raced refill and replay until the access
        hits, counting the races; more than ``REPLAY_RACE_LIMIT``
        consecutive losses is a pathological livelock and aborts the
        simulation.  Returns the latency to charge for the final hit.
        """
        cache = self.machine.dram_cache
        races = 0
        while True:
            replay = cache.access(page, is_write)
            if replay.hit:
                return replay.latency_ns
            races += 1
            self.stats.add("replay_miss_races")
            if races > REPLAY_RACE_LIMIT:
                raise SimulationError(
                    f"replay of page {page} lost the install/evict race "
                    f"{races} times; the cache set is livelocked"
                )
            yield replay.completion

    # -------------------------------------------------------------- core loop --

    def _core_loop(self, core_id: int):
        mode = self.config.mode
        if mode is PagingMode.DRAM_ONLY:
            yield from self._run_to_completion_loop(core_id, with_cache=False)
        elif mode is PagingMode.FLASH_SYNC:
            if self._vector_kind == "job-epoch":
                yield from self._vector_cache_loop(core_id)
            else:
                yield from self._run_to_completion_loop(core_id,
                                                        with_cache=True)
        else:
            yield from self._multiplexed_loop(core_id)

    # -- DRAM-only and Flash-Sync: one job at a time ---------------------------

    def _run_to_completion_loop(self, core_id: int, with_cache: bool):
        engine = self.machine.engine
        flat = self.machine.flat_dram_latency_ns
        cache = self.machine.dram_cache
        # Per-step locals for the hot inner loop; the TLB-hit draw is
        # inlined so _walk_miss_ns only runs on actual TLB misses.
        rng_random = self._rng_random
        tlb_p = self._tlb_miss_probability
        walk_miss = self._walk_miss_ns
        cache_access = cache.access if cache is not None else None
        tracer = self._tracer

        while True:
            job = self._next_job(core_id)
            if job is None:
                signal = Signal(engine, f"idle{core_id}")
                self._idle[core_id] = signal
                yield signal
                continue
            job.started_at = engine.now
            if tracer is not None:
                record = tracer.start_request(job, engine.now)
                if record is not None:
                    # Sampled job: run the instrumented twin of the
                    # loop below (identical yields and RNG draws).
                    yield from self._traced_rtc_job(
                        core_id, job, record, with_cache
                    )
                    continue
            accumulated = 0.0
            job_next_step = job.next_step
            while True:
                step = job_next_step()
                if step is None:
                    break
                accumulated += step.compute_ns + (
                    0.0 if rng_random() >= tlb_p else walk_miss(step.page)
                )
                self._accesses += 1
                if not with_cache:
                    accumulated += flat
                else:
                    result = cache_access(step.page, step.is_write)
                    if result.hit:
                        accumulated += result.latency_ns
                    else:
                        # Flash-Sync: the core waits for the refill.
                        self._misses += 1
                        job.misses += 1
                        yield accumulated
                        self._busy_ns += accumulated
                        accumulated = 0.0
                        yield result.completion
                        accumulated += yield from self._replay_until_hit(
                            step.page, step.is_write
                        )
                        self.stats.add("sync_miss_waits")
                if accumulated >= TIME_QUANTUM_NS:
                    yield accumulated
                    self._busy_ns += accumulated
                    accumulated = 0.0
            if accumulated > 0.0:
                yield accumulated
                self._busy_ns += accumulated
            self._finish_job(job)

    def _traced_rtc_job(self, core_id: int, job: Job, record,
                        with_cache: bool):
        """Instrumented twin of one job iteration of
        :meth:`_run_to_completion_loop`.

        Must stay yield-for-yield and RNG-draw-for-draw identical to
        the untraced body — the golden determinism test pins this.  The
        only additions are component charges on ``record`` and track
        events (both read-only with respect to simulation state).
        """
        engine = self.machine.engine
        flat = self.machine.flat_dram_latency_ns
        cache = self.machine.dram_cache
        rng_random = self._rng_random
        tlb_p = self._tlb_miss_probability
        walk_miss = self._walk_miss_ns
        cache_access = cache.access if cache is not None else None
        tracer = self._tracer
        track = f"core{core_id}"

        tracer.push(track, f"{job.workload_name}#{job.job_id}", engine.now)
        accumulated = 0.0
        job_next_step = job.next_step
        while True:
            step = job_next_step()
            if step is None:
                break
            walk_ns = (0.0 if rng_random() >= tlb_p
                       else walk_miss(step.page))
            accumulated += step.compute_ns + walk_ns
            record.compute += step.compute_ns
            record.tlb_walk += walk_ns
            self._accesses += 1
            if not with_cache:
                accumulated += flat
                record.dram_hit += flat
            else:
                result = cache_access(step.page, step.is_write)
                if result.hit:
                    accumulated += result.latency_ns
                    record.dram_hit += result.latency_ns
                else:
                    # Flash-Sync: the core waits for the refill.
                    self._misses += 1
                    job.misses += 1
                    yield accumulated
                    self._busy_ns += accumulated
                    accumulated = 0.0
                    wait_start = engine.now
                    tracer.instant(track, "miss", wait_start,
                                   {"page": step.page})
                    yield result.completion
                    replay_ns = yield from self._replay_until_hit(
                        step.page, step.is_write
                    )
                    record.sync_wait += engine.now - wait_start
                    record.add_span("sync_wait", wait_start, engine.now)
                    tracer.complete(track, "sync_wait", wait_start,
                                    engine.now, {"page": step.page})
                    accumulated += replay_ns
                    record.dram_hit += replay_ns
                    self.stats.add("sync_miss_waits")
            if accumulated >= TIME_QUANTUM_NS:
                yield accumulated
                self._busy_ns += accumulated
                accumulated = 0.0
        if accumulated > 0.0:
            yield accumulated
            self._busy_ns += accumulated
        tracer.pop(track, engine.now)
        self._finish_job(job)

    # -- Flash-Sync vector twin: batched hit runs, scalar misses ---------------

    def _vector_cache_loop(self, core_id: int):
        """Vector-backend twin of the Flash-Sync arm of
        :meth:`_run_to_completion_loop` (DESIGN.md §4h).

        Jobs are planned as columns up front (legal on the vetted
        single-core closed-loop shape: nothing else consumes the
        workload/TLB RNG streams between steps), then executed one
        quantum burst at a time: the burst horizon is precomputed
        under the all-hit assumption with the exact scalar adds, the
        burst's tag probes go through
        :meth:`~repro.dramcache.cache.DramCache.access_run` as one
        batch, and the first missing tag drops to the *unmodified*
        scalar miss machinery (FC -> BC -> flash -> replay).  Probing
        never reaches past the current burst, so a window close
        truncates with exactly the scalar's probe/counter state.
        """
        engine = self.machine.engine
        cache = self.machine.dram_cache
        cache_access = cache.access
        access_run = cache.access_run
        hit_ns = cache.hit_latency_ns
        tlb_p = self._tlb_miss_probability
        walk_ns = self._flat_walk_ns
        quantum = TIME_QUANTUM_NS
        plan = self.workload.plan_steps
        self._vector_tlb_rng = _vector.BatchedRandom(self._rng)
        rng_take = self._vector_tlb_rng.take
        tlb_counter = self._tlb_miss_count
        vstats = _vector.run_stats()
        vstats["job_epoch_runs"] += 1

        while True:
            job = self._next_job(core_id)
            if job is None:
                # Open-loop idle: park exactly like the scalar loop —
                # no event for the park itself, one for the wake.
                signal = Signal(engine, f"idle{core_id}")
                self._idle[core_id] = signal
                yield signal
                continue
            job.started_at = engine.now
            compute, pages, writes = plan(job)
            num_steps = len(compute)
            d1, miss_flags = _vector.step_deltas(
                compute, rng_take(num_steps), tlb_p, walk_ns
            )
            vstats["batched_jobs"] += 1
            vstats["batched_steps"] += num_steps
            accumulated = 0.0
            i = 0
            while i < num_steps:
                # Burst horizon under the all-hit assumption: the
                # first step whose post-add accumulation crosses the
                # quantum.  Same two adds per step as the scalar loop,
                # so the boundary (and its float value) match bit-wise
                # whenever the assumption holds.
                j = i
                probe_acc = accumulated
                while j < num_steps:
                    probe_acc += d1[j]
                    probe_acc += hit_ns
                    j += 1
                    if probe_acc >= quantum:
                        break
                hits = access_run(pages, writes, i, j)
                vstats["hit_run_probes"] += hits
                stop = i + hits
                while i < stop:
                    accumulated += d1[i]
                    self._accesses += 1
                    if miss_flags[i]:
                        tlb_counter.incr()
                    accumulated += hit_ns
                    i += 1
                    if accumulated >= quantum:
                        yield accumulated
                        self._busy_ns += accumulated
                        accumulated = 0.0
                if stop < j:
                    # The batched probe stopped on a missing tag:
                    # execute that one step through the scalar path.
                    accumulated += d1[i]
                    self._accesses += 1
                    if miss_flags[i]:
                        tlb_counter.incr()
                    result = cache_access(pages[i], writes[i])
                    if result.hit:  # pragma: no cover - no installer
                        accumulated += result.latency_ns  # ran between
                    else:
                        self._misses += 1
                        job.misses += 1
                        yield accumulated
                        self._busy_ns += accumulated
                        accumulated = 0.0
                        yield result.completion
                        accumulated += yield from self._replay_until_hit(
                            pages[i], writes[i]
                        )
                        self.stats.add("sync_miss_waits")
                    i += 1
                    if accumulated >= quantum:
                        yield accumulated
                        self._busy_ns += accumulated
                        accumulated = 0.0
            if accumulated > 0.0:
                yield accumulated
                self._busy_ns += accumulated
            self._finish_job(job)

    # -- AstriFlash and OS-Swap: switch-on-stall multiplexing --------------------

    def _multiplexed_loop(self, core_id: int):
        engine = self.machine.engine
        library = self.machine.libraries[core_id]
        mode = self.config.mode
        tracer = self._tracer

        while True:
            self._admit(core_id)
            self._drain_completions(core_id, library)
            thread = library.pick_next(engine.now,
                                       self._avg_stall_response_ns())
            if thread is None:
                signal = Signal(engine, f"idle{core_id}")
                self._idle[core_id] = signal
                yield signal
                continue

            dispatched_from = thread.state
            if thread.state is ThreadState.PENDING:
                # Aged (or forced) head whose data has not arrived: the
                # scheduler waits for the flash response (Sec. IV-D2).
                self.stats.add("blocking_dispatches")
                wait_start = engine.now
                yield thread.wait_signal
                self.stats.add("time_blocking_wait_ns",
                               engine.now - wait_start)
                if thread.state is ThreadState.PENDING:
                    thread.data_arrived(engine.now)

            # Thread switch cost (100 ns ULT / ~5 us OS context switch).
            switch_ns = library.switch_latency_ns
            if switch_ns > 0.0:
                yield switch_ns
                self.stats.add("time_switch_ns", switch_ns)
            was_ready = thread.state is ThreadState.READY
            thread.dispatch()
            if thread.job.started_at is None:
                thread.job.started_at = engine.now
                if tracer is not None:
                    tracer.start_request(thread.job, engine.now)
            elif tracer is not None and dispatched_from in (
                    ThreadState.PENDING, ThreadState.READY):
                record = tracer.lookup(thread.job.job_id)
                if record is not None:
                    # Close the parked interval: halt -> this dispatch.
                    signal = thread.wait_signal
                    payload = (signal.value
                               if signal is not None and signal.fired
                               else None)
                    record.charge_resume(
                        thread.pending_since, thread.data_ready_at,
                        engine.now, switch_ns, payload,
                    )
            if was_ready:
                # Forward-progress guarantee: the resuming instruction
                # must retire even if its page was evicted meanwhile.
                thread.forward_progress = True

            yield from self._run_thread(core_id, library, thread, mode)

    def _admit(self, core_id: int) -> None:
        library = self.machine.libraries[core_id]
        engine = self.machine.engine
        while library.can_admit():
            job = self._next_job(core_id)
            if job is None:
                break
            library.admit(job, engine.now)

    def _avg_stall_response_ns(self) -> float:
        if self.config.mode is PagingMode.OS_SWAP:
            return self.machine.pager.average_fault_latency_ns()
        return self.machine.flash.average_read_latency_ns()

    def _run_thread(self, core_id: int, library, thread: UserThread, mode):
        tracer = self._tracer
        if tracer is not None:
            record = tracer.lookup(thread.job.job_id)
            if record is not None:
                yield from self._run_thread_traced(
                    core_id, library, thread, mode, record
                )
                return
        core = self.machine.cores[core_id]
        accumulated = 0.0
        # Per-step locals: this loop runs once per memory access on the
        # multiplexed modes.  The hit paths are handled inline so the
        # miss generators (and their setup cost) only run on misses.
        astriflash = mode is PagingMode.ASTRIFLASH
        cache = self.machine.dram_cache if astriflash else None
        pager = None if astriflash else self.machine.pager
        flat = self.machine.flat_dram_latency_ns
        rng_random = self._rng_random
        tlb_p = self._tlb_miss_probability
        walk_miss = self._walk_miss_ns
        job_next_step = thread.job.next_step

        while True:
            step = thread.current_step
            if step is None:
                step = job_next_step()
                thread.current_step = step
            if step is None:
                if accumulated > 0.0:
                    yield accumulated
                    self._busy_ns += accumulated
                job = library.on_finish(thread)
                self._finish_job(job)
                return

            accumulated += step.compute_ns + (
                0.0 if rng_random() >= tlb_p else walk_miss(step.page)
            )
            self._accesses += 1

            if astriflash:
                result = cache.access(step.page, step.is_write)
                if result.hit:
                    outcome = accumulated + result.latency_ns
                else:
                    outcome = yield from self._astriflash_miss(
                        core_id, library, thread, step, accumulated, result
                    )
            else:
                if pager.access(step.page, step.is_write):
                    outcome = accumulated + flat
                else:
                    outcome = yield from self._os_swap_fault(
                        core_id, library, thread, step, accumulated
                    )
            if outcome is None:
                # Thread parked on the miss: back to the scheduler.
                return
            accumulated = outcome
            thread.current_step = None
            if thread.forward_progress:
                # The forced instruction retired: clear the bit.
                thread.forward_progress = False
                core.registers.retire_resuming_instruction()
            if accumulated >= TIME_QUANTUM_NS:
                yield accumulated
                self._busy_ns += accumulated
                accumulated = 0.0

    def _run_thread_traced(self, core_id: int, library, thread: UserThread,
                           mode, record):
        """Instrumented twin of :meth:`_run_thread` for sampled jobs.

        Yield-for-yield and draw-for-draw identical to the untraced
        body; adds component charges plus a core-track slice spanning
        this on-core episode (dispatch to park/finish).
        """
        core = self.machine.cores[core_id]
        engine = self.machine.engine
        tracer = self._tracer
        accumulated = 0.0
        astriflash = mode is PagingMode.ASTRIFLASH
        cache = self.machine.dram_cache if astriflash else None
        pager = None if astriflash else self.machine.pager
        flat = self.machine.flat_dram_latency_ns
        rng_random = self._rng_random
        tlb_p = self._tlb_miss_probability
        walk_miss = self._walk_miss_ns
        job = thread.job
        job_next_step = job.next_step
        track = f"core{core_id}"
        tracer.push(track, f"{job.workload_name}#{job.job_id}", engine.now)

        while True:
            step = thread.current_step
            if step is None:
                step = job_next_step()
                thread.current_step = step
            if step is None:
                if accumulated > 0.0:
                    yield accumulated
                    self._busy_ns += accumulated
                tracer.pop(track, engine.now)
                finished = library.on_finish(thread)
                self._finish_job(finished)
                return

            walk_ns = (0.0 if rng_random() >= tlb_p
                       else walk_miss(step.page))
            accumulated += step.compute_ns + walk_ns
            record.compute += step.compute_ns
            record.tlb_walk += walk_ns
            self._accesses += 1

            if astriflash:
                result = cache.access(step.page, step.is_write)
                if result.hit:
                    outcome = accumulated + result.latency_ns
                    record.dram_hit += result.latency_ns
                else:
                    outcome = yield from self._astriflash_miss(
                        core_id, library, thread, step, accumulated,
                        result, record
                    )
            else:
                if pager.access(step.page, step.is_write):
                    outcome = accumulated + flat
                    record.dram_hit += flat
                else:
                    outcome = yield from self._os_swap_fault(
                        core_id, library, thread, step, accumulated, record
                    )
            if outcome is None:
                # Thread parked on the miss: back to the scheduler.
                tracer.pop(track, engine.now)
                return
            accumulated = outcome
            thread.current_step = None
            if thread.forward_progress:
                thread.forward_progress = False
                core.registers.retire_resuming_instruction()
            if accumulated >= TIME_QUANTUM_NS:
                yield accumulated
                self._busy_ns += accumulated
                accumulated = 0.0

    # -- AstriFlash miss path ------------------------------------------------------

    def _astriflash_miss(self, core_id: int, library, thread: UserThread,
                         step, accumulated: float, result, record=None):
        """Miss continuation for the AstriFlash access path; the hit
        case is handled inline in :meth:`_run_thread`.

        ``record`` is the request's trace record when the job is
        sampled (misses are rare relative to steps, so per-miss
        ``record is not None`` checks stay off the per-access path).
        """
        core = self.machine.cores[core_id]
        engine = self.machine.engine

        self._misses += 1
        thread.job.misses += 1
        # A cold access almost certainly misses the TLB too: the walk
        # precedes the data access.  With DRAM partitioning it is a
        # cheap flat-DRAM walk; under `noDP` the PT leaf page lives in
        # flash-backed cached space and the (serialized, unswitchable)
        # walk can itself stall on flash (Sec. IV-A, Table II).
        cold_walk_ns = (self.config.os.page_table_levels
                        * self.machine.flat_dram_latency_ns)
        pt_completion = None
        if self.machine.page_tables_in_flash_space:
            pt_page = self.machine.page_table_page(step.page)
            pt_result = self.machine.dram_cache.access(pt_page, False)
            if pt_result.hit:
                cold_walk_ns = (
                    (self.config.os.page_table_levels - 1)
                    * self.machine.flat_dram_latency_ns
                    + pt_result.latency_ns
                )
            else:
                self.stats.add("pt_walk_flash_misses")
                pt_completion = pt_result.completion
        # Simulate the compute up to the miss plus the walk, the miss
        # signal, and the ROB flush/redirect.
        flush_ns = core.flush_penalty_ns(self.workload.rob_occupancy)
        self.stats.add("time_flush_ns", flush_ns)
        yield accumulated + cold_walk_ns + result.latency_ns + flush_ns
        self._busy_ns += accumulated + cold_walk_ns + result.latency_ns \
            + flush_ns
        if record is not None:
            record.tlb_walk += cold_walk_ns
            record.miss_signal += result.latency_ns + flush_ns
            self._tracer.instant(f"core{core_id}", "miss", engine.now,
                                 {"page": step.page})
        if pt_completion is not None:
            # The hardware walker blocks the core until the PTE page
            # arrives from flash; no thread switch can hide it.
            walk_start = engine.now
            yield pt_completion
            self.stats.add("time_pt_walk_wait_ns",
                           engine.now - walk_start)
            if record is not None:
                record.tlb_walk += engine.now - walk_start
                record.add_span("tlb_walk", walk_start, engine.now)
                self._tracer.complete(f"core{core_id}", "pt_walk_wait",
                                      walk_start, engine.now,
                                      {"page": step.page})

        if thread.forward_progress:
            # Sec. IV-C3: complete synchronously, do not deschedule.
            self.stats.add("forward_progress_syncs")
            wait_start = engine.now
            yield result.completion
            replay_ns = yield from self._replay_until_hit(
                step.page, step.is_write
            )
            self.stats.add("time_sync_wait_ns", engine.now - wait_start)
            if record is not None:
                self._charge_sync_wait(record, core_id, wait_start,
                                       replay_ns, step.page)
            return replay_ns

        if library.scheduler.pending_full:
            # Sec. IV-D1: pending queue full — the scheduler waits for
            # the flash response instead of switching.
            self.stats.add("pending_overflow_syncs")
            wait_start = engine.now
            yield result.completion
            replay_ns = yield from self._replay_until_hit(
                step.page, step.is_write
            )
            self.stats.add("time_sync_wait_ns", engine.now - wait_start)
            if record is not None:
                self._charge_sync_wait(record, core_id, wait_start,
                                       replay_ns, step.page)
            return replay_ns

        # Park the thread and return to the scheduler.
        library.on_miss(thread, step.page, engine.now)
        thread.wait_signal = result.completion
        observe(result.completion,
                self._make_ready_callback(core_id, library, thread))
        return None

    # -- OS-Swap fault path -----------------------------------------------------------

    def _os_swap_fault(self, core_id: int, library, thread: UserThread,
                       step, accumulated: float, record=None):
        """Fault continuation for the OS-Swap access path; the
        resident-set hit is handled inline in :meth:`_run_thread`."""
        pager = self.machine.pager
        engine = self.machine.engine
        flat = self.machine.flat_dram_latency_ns

        self._misses += 1
        thread.job.misses += 1
        # The faulting thread runs the kernel entry on this core, then
        # the OS switches away (switch charged at next dispatch).
        yield accumulated + self.config.os.page_fault_kernel_ns
        self._busy_ns += accumulated + self.config.os.page_fault_kernel_ns
        if record is not None:
            record.miss_signal += self.config.os.page_fault_kernel_ns
            self._tracer.instant(f"core{core_id}", "fault", engine.now,
                                 {"page": step.page})

        done = Signal(engine, f"fault-done:{step.page}")

        def fault_and_signal():
            yield from pager.fault(step.page, step.is_write)
            done.fire()

        spawn(engine, fault_and_signal(), name=f"fault:{step.page}")

        if thread.forward_progress or library.scheduler.pending_full:
            self.stats.add("sync_fault_waits")
            wait_start = engine.now
            yield done
            self.stats.add("time_sync_wait_ns", engine.now - wait_start)
            if record is not None:
                self._charge_sync_wait(record, core_id, wait_start,
                                       flat, step.page)
            return flat

        library.on_miss(thread, step.page, engine.now)
        thread.wait_signal = done
        observe(done, self._make_ready_callback(core_id, library, thread))
        return None

    def _charge_sync_wait(self, record, core_id: int, wait_start: float,
                          replay_ns: float, page: int) -> None:
        """Attribute a synchronous refill wait ending now: the blocked
        interval goes to ``sync_wait``, the final replayed hit (or
        flat re-access) to ``dram_hit``."""
        now = self.machine.engine.now
        record.sync_wait += now - wait_start
        record.dram_hit += replay_ns
        record.add_span("sync_wait", wait_start, now)
        self._tracer.complete(f"core{core_id}", "sync_wait", wait_start,
                              now, {"page": page})

    def _drain_completions(self, core_id: int, library) -> None:
        """Read the queue pair and mark notified threads ready."""
        engine = self.machine.engine
        for entry in self._cqs[core_id].drain():
            thread = entry.context
            if thread.state is ThreadState.PENDING:
                library.on_data_ready(thread, engine.now)

    def _make_ready_callback(self, core_id: int, library,
                             thread: UserThread):
        """BC completion -> queue-pair post for the parked thread."""
        cq = self._cqs[core_id]
        engine = self.machine.engine

        def on_ready(_value):
            if thread.state is ThreadState.PENDING:
                cq.post(thread.miss_page, engine.now, context=thread)

        return on_ready

    # -- page-table walks -----------------------------------------------------------

    def _walk_cost(self, data_page: int) -> float:
        """TLB-miss handling cost for this access, if one occurs.

        With DRAM partitioning (and for all non-AstriFlash modes) the
        walk is served from flat DRAM.  Under `noDP` the PT leaf page
        goes through the DRAM cache and the walk blocks synchronously on
        a flash fetch when it misses (Sec. IV-A).
        """
        if self._rng_random() >= self._tlb_miss_probability:
            return 0.0
        return self._walk_miss_ns(data_page)

    def _walk_miss_ns(self, data_page: int) -> float:
        """Walk cost once the TLB-miss draw has already lost.

        Split from :meth:`_walk_cost` so the inner loops can inline the
        (overwhelmingly common) TLB-hit draw and only pay a call frame
        on actual misses.
        """
        self._tlb_miss_count.incr()
        if not self.machine.page_tables_in_flash_space:
            return self._flat_walk_ns
        # noDP: upper levels stay cached; the leaf PTE page goes through
        # the DRAM cache and can miss to flash.
        levels = self.config.os.page_table_levels
        pt_page = self.machine.page_table_page(data_page)
        result = self.machine.dram_cache.access(pt_page, False)
        upper_levels = (levels - 1) * self.machine.flat_dram_latency_ns
        if result.hit:
            return upper_levels + result.latency_ns
        self.stats.add("pt_walk_flash_misses")
        # The walker cannot thread-switch: charge the full expected
        # refill latency synchronously (the walk serializes on flash).
        return (upper_levels
                + self.machine.flash.average_read_latency_ns())
