"""TLB-shootdown cost model.

Unmapping or migrating a page requires removing stale translations from
every core's TLBs.  Modern shootdowns are broadcast IPIs: the initiator
interrupts all cores and waits for acknowledgements, so the latency
*grows* with the core count and the operation serializes page-table
updates across the machine (Sec. II-C).  This is the key reason OS
paging does not scale in Fig. 2.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.system import OsConfig
from repro.errors import ConfigurationError
from repro.stats import CounterSet
from repro.vm.tlb import Tlb


class TlbShootdownModel:
    """Latency + bookkeeping for broadcast TLB shootdowns."""

    def __init__(self, config: OsConfig, num_cores: int) -> None:
        if num_cores < 1:
            raise ConfigurationError("need at least one core")
        self.config = config
        self.num_cores = num_cores
        self.stats = CounterSet("shootdown")

    def latency_ns(self, batched_pages: int = 1) -> float:
        """Cost of one shootdown operation.

        The base IPI broadcast plus a per-responding-core term; batching
        several page invalidations amortizes the broadcast (LATR-style
        proposals) but each page still pays a small per-core cost.
        """
        if batched_pages < 1:
            raise ConfigurationError("must shoot down at least one page")
        per_core = self.config.tlb_shootdown_per_core_ns * (self.num_cores - 1)
        base = self.config.tlb_shootdown_base_ns
        # Subsequent pages in a batch only pay 10% of the per-core term.
        extra = 0.1 * per_core * (batched_pages - 1)
        return base + per_core + extra

    def execute(self, vpn: int, tlbs: List[Tlb],
                initiator: Optional[int] = None) -> float:
        """Invalidate ``vpn`` in every TLB; returns the latency."""
        for tlb in tlbs:
            tlb.invalidate(vpn)
        self.stats.add("shootdowns")
        self.stats.add("pages_invalidated")
        return self.latency_ns()

    def throughput_ceiling_per_second(self) -> float:
        """Upper bound on machine-wide page migrations per second when
        every migration needs a (serializing) shootdown."""
        return 1e9 / self.latency_ns()
