"""Core model: miss-handling architectural registers and timing costs.

The performance simulation does not execute instructions one by one
(see DESIGN.md); instead :class:`CoreModel` supplies the *costs* the
paper attributes to the core side of a DRAM-cache miss —

* the ROB flush + redirect to the user-level handler (lost OoO work,
  proportional to window occupancy; TPCC's compute-heavy window makes
  its flushes costlier, Sec. VI-A);
* the architected Handler Address Register / Resume Register pair with
  the forward-progress bit (Sec. IV-C2/3).

The registers are modelled faithfully: the handler address is
privileged (installed via a validated system call), the resume register
is user-writable and carries the forward-progress bit that forces a
rescheduled thread's access to complete synchronously.
"""

from __future__ import annotations

from typing import Optional

from repro.config.system import CoreConfig
from repro.cpu.mshr import MshrFile
from repro.errors import ProtocolError
from repro.stats import CounterSet


class MissHandlingRegisters:
    """Handler Address Register + Resume Register (Sec. IV-C2)."""

    def __init__(self) -> None:
        self._handler_address: Optional[int] = None
        self._resume_pc: Optional[int] = None
        self._forward_progress = False

    # Handler address: privileged install only.

    def install_handler(self, address: int, privileged: bool) -> None:
        """Write the handler address register.

        Hardware only accepts the write in privileged mode; the OS
        verifies the address through a system call first.
        """
        if not privileged:
            raise ProtocolError(
                "handler address register is privileged; use the syscall path"
            )
        if address <= 0:
            raise ProtocolError("handler address must be a valid user VA")
        self._handler_address = address

    @property
    def handler_address(self) -> Optional[int]:
        return self._handler_address

    # Resume register: user read/write.

    def set_resume(self, pc: int, forward_progress: bool = False) -> None:
        self._resume_pc = pc
        self._forward_progress = forward_progress

    def clear_resume(self) -> None:
        self._resume_pc = None
        self._forward_progress = False

    @property
    def resume_pc(self) -> Optional[int]:
        return self._resume_pc

    @property
    def forward_progress(self) -> bool:
        """While set, the resuming instruction's memory access must
        complete synchronously even on a DRAM-cache miss."""
        return self._forward_progress

    def retire_resuming_instruction(self) -> None:
        """The forced instruction retired: clear the bit (Sec. IV-C3)."""
        self._forward_progress = False


class CoreModel:
    """Per-core cost model + miss-signal bookkeeping."""

    def __init__(self, core_id: int, config: CoreConfig) -> None:
        self.core_id = core_id
        self.config = config
        self.registers = MissHandlingRegisters()
        self.mshrs = MshrFile(config.mshr_entries)
        self.stats = CounterSet(f"core{core_id}")
        # Bound handles for the per-miss hot path.
        self._miss_signals = self.stats.counter("miss_signals")
        self._data_responses = self.stats.counter("data_responses")

    # -- timing ------------------------------------------------------------------

    def flush_penalty_ns(self, rob_occupancy: Optional[float] = None) -> float:
        """Cost of flushing the pipeline on a miss signal.

        ``rob_occupancy`` defaults to a half-full window.  The penalty
        models both the discarded in-flight work and the refill of the
        front end, linear in occupancy.
        """
        if rob_occupancy is None:
            rob_occupancy = self.config.rob_entries / 2
        rob_occupancy = min(max(rob_occupancy, 0.0), float(self.config.rob_entries))
        cycles = rob_occupancy * self.config.flush_cycles_per_rob_entry
        return cycles * self.config.cycle_ns

    # -- miss-signal path -----------------------------------------------------------

    def send_request(self, page: int, rob_seq: int, is_write: bool = False):
        """Track an outstanding memory request in the core MSHRs."""
        return self.mshrs.allocate(page, rob_seq, is_write)

    def receive_miss_signal(self, page: int) -> int:
        """A DRAM-cache miss signal arrived: reclaim the MSHR and
        return the ROB seq of the triggering instruction."""
        allocation = self.mshrs.reclaim_by_page(page)
        self._miss_signals.incr()
        return allocation.rob_seq

    def receive_data(self, page: int) -> None:
        """Normal data response: reclaim the MSHR."""
        self.mshrs.reclaim_by_page(page)
        self._data_responses.incr()
