"""Report rendering: ASCII charts and experiment report files.

The harness produces tabular :class:`ExperimentResult` rows; this
module adds terminal-friendly line charts for curve-shaped artifacts
(Figs. 1-3, 10) and a writer that bundles every regenerated artifact
into one report file — the generator behind EXPERIMENTS.md's measured
numbers.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.harness.common import ExperimentResult
from repro.sim.engine import total_events_executed

Point = Tuple[float, float]
_MARKERS = "*o+x#@%&"


def ascii_chart(series: Dict[str, Sequence[Point]], width: int = 64,
                height: int = 16, logy: bool = False,
                title: str = "") -> str:
    """Render named (x, y) series as a fixed-size ASCII scatter chart."""
    if not series:
        raise ReproError("no series to plot")
    if width < 8 or height < 4:
        raise ReproError("chart too small")

    points = [
        (x, y) for pts in series.values() for x, y in pts
        if math.isfinite(x) and math.isfinite(y)
        and (not logy or y > 0)
    ]
    if not points:
        raise ReproError("no finite points to plot")

    def transform_y(y: float) -> float:
        return math.log10(y) if logy else y

    xs = [p[0] for p in points]
    ys = [transform_y(p[1]) for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if logy and y <= 0:
                continue
            col = int((x - x_low) / x_span * (width - 1))
            row = int((transform_y(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_label_high = f"{10 ** y_high:.3g}" if logy else f"{y_high:.3g}"
    y_label_low = f"{10 ** y_low:.3g}" if logy else f"{y_low:.3g}"
    lines.append(f"y: {y_label_low} .. {y_label_high}"
                 f"{' (log)' if logy else ''}")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: {x_low:.3g} .. {x_high:.3g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def chart_for(result: ExperimentResult, width: int = 64,
              height: int = 14) -> str:
    """An ASCII chart for curve-shaped experiments; '' otherwise."""
    if result.experiment == "fig3":
        loads = result.column("load")
        series = {
            name: list(zip(loads, result.column(name)))
            for name in result.columns[1:]
        }
        return ascii_chart(series, width, height, logy=True,
                           title=result.title)
    if result.experiment == "fig10":
        series = {
            "dram-only": list(zip(result.column("dram_only_tput"),
                                  result.column("dram_only_p99"))),
            "astriflash": list(zip(result.column("astriflash_tput"),
                                   result.column("astriflash_p99"))),
        }
        return ascii_chart(series, width, height, title=result.title)
    if result.experiment == "fig1":
        caps = result.column("dram_capacity_pct")
        series = {
            "miss_ratio": list(zip(caps, result.column("miss_ratio"))),
        }
        return ascii_chart(series, width, height, title=result.title)
    if result.experiment == "fig2":
        cores = result.column("cores")
        series = {
            "os-paging": list(zip(cores, result.column("os_paging_norm"))),
            "ideal": list(zip(cores, result.column("ideal_norm"))),
        }
        return ascii_chart(series, width, height, title=result.title)
    return ""


def render(result: ExperimentResult, with_chart: bool = True) -> str:
    """Table plus (where applicable) chart for one experiment."""
    parts = [result.format_table()]
    if with_chart:
        chart = chart_for(result)
        if chart:
            parts.append("")
            parts.append(chart)
    return "\n".join(parts)


def write_report(results: List[ExperimentResult], path: str,
                 header: str = "", footer: str = "") -> None:
    """Write all regenerated artifacts into one text report."""
    with open(path, "w") as handle:
        if header:
            handle.write(header.rstrip() + "\n\n")
        for result in results:
            handle.write(render(result) + "\n\n")
        if footer:
            handle.write(footer.rstrip() + "\n")


def generate(experiments: Mapping[str, Callable[..., ExperimentResult]],
             scale="quick", jobs: Optional[int] = None,
             out: Optional[str] = None,
             header: str = "") -> List[ExperimentResult]:
    """Regenerate ``experiments`` (id -> run callable) and optionally
    bundle them into a report file.

    ``jobs`` is forwarded to each experiment so its independent runs
    fan out through :mod:`repro.harness.parallel`; repeated invocations
    reuse the result cache, so regenerating a report after regenerating
    a figure costs only the runs not already cached.
    """
    from repro import snapshot
    from repro.core.runner import wall_split_totals

    events_before = total_events_executed()
    split_before = wall_split_totals()
    snap_before = snapshot.summary()
    wall_start = time.perf_counter()
    results = [runner(scale=scale, jobs=jobs)
               for runner in experiments.values()]
    wall_seconds = time.perf_counter() - wall_start
    events = total_events_executed() - events_before
    if out is not None:
        # Kernel throughput footer: in-process events only, so worker
        # processes (jobs > 1) and cache hits leave it at zero — it is
        # telemetry for the simulator, not a result.
        lines = []
        if events and wall_seconds > 0:
            lines.append(
                f"kernel: {events:,} events in {wall_seconds:.1f} s "
                f"({events / wall_seconds:,.0f} events/s in-process)")
        lines.append(_warmup_footer(split_before, snap_before))
        write_report(results, out, header=header,
                     footer="\n".join(line for line in lines if line))
    return results


def _warmup_footer(split_before: Dict[str, float],
                   snap_before: Dict[str, float]) -> str:
    """Warmup-vs-measurement wall split and snapshot hit/miss counts
    accumulated in this process since ``generate`` started.

    Like the kernel line, this covers in-process runs only: with
    ``jobs > 1`` the warm/measure seconds land in the workers, but the
    snapshot *store* counters (captures in the pre-warm pass, stale
    rejections) still show up here.
    """
    from repro import snapshot
    from repro.core.runner import wall_split_totals

    split = wall_split_totals()
    warm = split["warm_seconds"] - split_before.get("warm_seconds", 0.0)
    measure = (split["measure_seconds"]
               - split_before.get("measure_seconds", 0.0))
    snap = snapshot.summary()

    def delta(key: str) -> int:
        return int(snap.get(key, 0.0) - snap_before.get(key, 0.0))

    restored = delta("warm_restores")
    fresh = delta("warm_captures")
    stale = delta("stale_rejected")
    if warm == 0.0 and measure == 0.0 and not (restored or fresh or stale):
        return ""
    return (f"warmup: {warm:.2f} s vs measurement {measure:.2f} s "
            f"in-process; snapshots: {restored} restored, "
            f"{fresh} freshly warmed, {stale} stale rejected")
