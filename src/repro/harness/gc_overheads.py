"""Sec. VI-D: garbage-collection overheads vs flash capacity.

The paper argues a 256 GiB flash blocks ~4% of requests behind GC while
a 1 TiB device (4x the planes) blocks <1%, and that asynchronous writes
keep GC off the critical path.  We regenerate the capacity scaling from
the analytic blocking model and validate the off-critical-path claim
with a write-heavy device simulation measuring the actually-observed
blocked fraction.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.config import FlashConfig
from repro.flash import FlashDevice
from repro.harness.common import ExperimentResult
from repro.harness.parallel import map_tasks
from repro.sim import Engine, spawn
from repro.units import GIB

CAPACITIES_GIB: Sequence[int] = (128, 256, 512, 1024)

# Independent stress-device seeds for the measured cross-check; they
# fan out through the parallel harness and are averaged, so the
# reported fraction is identical at any job count.
STRESS_SEEDS: Sequence[int] = (7, 11, 13)


def simulate_blocked_fraction(num_pages: int = 512,
                              hot_pages: int = 8,
                              writes: int = 400,
                              reads: int = 2000,
                              seed: int = 7) -> float:
    """Measured GC-blocked read fraction on a small, GC-heavy device."""
    import random
    rng = random.Random(seed)
    engine = Engine()
    config = FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                         pages_per_block=8, overprovisioning=0.5)
    device = FlashDevice(engine, config, num_pages)

    def writer():
        for index in range(writes):
            yield device.write(index % hot_pages)

    def reader():
        for _ in range(reads):
            yield device.read(rng.randrange(num_pages))

    spawn(engine, writer())
    spawn(engine, reader())
    engine.run()
    return device.gc.blocked_fraction()


def run(scale="quick", jobs: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="gc_overheads",
        title="Sec. VI-D: GC-blocked request fraction vs flash capacity",
        columns=["capacity_gib", "analytic_blocked_fraction"],
        notes=("Paper: ~4% blocked at 256 GiB, <1% at 1 TiB. The "
               "simulated write-heavy device below cross-checks that "
               "the blocking path is actually exercised."),
    )
    base = FlashConfig()
    for capacity in CAPACITIES_GIB:
        config = dataclasses.replace(base, capacity_bytes=capacity * GIB)
        result.add_row(capacity, config.gc_blocked_fraction)
    fractions = map_tasks(
        simulate_blocked_fraction,
        [{"seed": seed} for seed in STRESS_SEEDS],
        jobs=jobs,
    )
    measured = sum(fractions) / len(fractions)
    result.notes += (
        f"\nMeasured blocked fraction (stress device, mean of "
        f"{len(STRESS_SEEDS)} seeds): {measured:.2%}"
    )
    return result
