"""Differential execution harness for the switch-on-miss core.

The strongest claim in Sec. IV-C is semantic: a DRAM-cache miss may
abort *committed* stores in the Store Buffer and everything younger,
and after the thread is rescheduled and the instructions replay, the
architectural state must be exactly as if the miss never happened.

This module tests that end to end with real values:

* :class:`ReferenceMachine` — a trivially-correct in-order interpreter
  of a small ISA (ALU add-immediate, LOAD, STORE) over architectural
  registers and a page-addressed memory;
* :class:`PipelinedMachine` — the same programs executed through the
  rename/ROB/SB machinery of
  :class:`~repro.cpu.speculation.SpeculativeCore`, with values held in
  a physical register file, store-to-load forwarding, and *injected
  DRAM-cache misses* that trigger the paper's abort paths
  (``abort_load`` for loads in the ROB, ``abort_store`` for committed
  stores in the SB) followed by replay from the resume PC.

Because values live in physical registers, restoring the rename map on
an abort automatically restores the values — which is precisely the
mechanism the paper's ASO extension relies on.  The differential test
(:mod:`tests.test_cpu_pipeline`) checks register file and memory
equality over random programs and random miss injections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.config.system import CoreConfig
from repro.cpu.rob import InstructionKind
from repro.cpu.speculation import SpeculativeCore
from repro.errors import ProtocolError

MASK = (1 << 32) - 1


@dataclass(frozen=True)
class Instruction:
    """One instruction of the toy ISA."""

    kind: str                      # InstructionKind value
    dest: Optional[int] = None     # architectural register
    src: Optional[int] = None      # architectural register
    immediate: int = 0
    page: Optional[int] = None     # memory page for loads/stores

    def __repr__(self) -> str:
        if self.kind == InstructionKind.ALU:
            return f"ALU r{self.dest} = r{self.src} + {self.immediate}"
        if self.kind == InstructionKind.LOAD:
            return f"LOAD r{self.dest} = mem[{self.page}]"
        return f"STORE mem[{self.page}] = r{self.src}"


class ReferenceMachine:
    """In-order, abort-free interpreter: the ground truth."""

    def __init__(self, num_registers: int = 8) -> None:
        self.registers = [0] * num_registers
        self.memory: Dict[int, int] = {}

    def execute(self, program: List[Instruction]) -> None:
        for instruction in program:
            if instruction.kind == InstructionKind.ALU:
                value = (self.registers[instruction.src]
                         + instruction.immediate) & MASK
                self.registers[instruction.dest] = value
            elif instruction.kind == InstructionKind.LOAD:
                self.registers[instruction.dest] = \
                    self.memory.get(instruction.page, 0)
            else:
                self.memory[instruction.page] = \
                    self.registers[instruction.src]


class PipelinedMachine:
    """Executes through the speculative core with miss injection.

    ``miss_pages`` lists (program_index, page) pairs: the *first* time
    the instruction at ``program_index`` touches memory it suffers a
    DRAM-cache miss, triggering the abort path; the refill then
    "arrives" and the replay succeeds.
    """

    def __init__(self, config: Optional[CoreConfig] = None,
                 miss_points: Optional[Set[int]] = None) -> None:
        self.core = SpeculativeCore(config or CoreConfig(
            rob_entries=16, store_buffer_entries=4,
            base_physical_registers=24,
            registers_per_speculative_store=4,
            architectural_registers=8,
        ))
        self.miss_points = set(miss_points or ())
        # Values of physical registers.
        total = self.core.prf.num_registers
        self.prf_values = [0] * total
        # Architectural reset state: map already holds physical regs.
        for arch in range(self.core.map_table.num_arch_registers):
            self.prf_values[self.core.map_table.lookup(arch)] = 0
        self.memory: Dict[int, int] = {}
        # Stores in flight (ROB or SB): (seq, page, value), program order.
        self._pending_stores: List[Tuple[int, int, int]] = []
        self._seq_to_index: Dict[int, int] = {}
        self._store_values: Dict[int, int] = {}  # seq -> value
        self.aborts = 0
        self.replays = 0

    # -- value helpers -------------------------------------------------------

    def _read(self, arch_reg: int) -> int:
        return self.prf_values[self.core.map_table.lookup(arch_reg)]

    def _forwarded_load(self, page: int, load_seq: int) -> int:
        """Store-to-load forwarding from the youngest older store."""
        for seq, store_page, value in reversed(self._pending_stores):
            if seq < load_seq and store_page == page:
                return value
        return self.memory.get(page, 0)

    # -- execution ------------------------------------------------------------

    def execute(self, program: List[Instruction]) -> None:
        fetch_index = 0
        while (fetch_index < len(program) or len(self.core.rob)
               or len(self.core.store_buffer)):
            progressed = False
            # Fetch + execute one instruction if there is ROB room
            # (stores blocked on a full SB wait at retirement).
            if fetch_index < len(program) and not self.core.rob.is_full:
                fetch_index = self._fetch(program, fetch_index)
                progressed = True
            # Retire the head if possible.
            retired = self._try_retire(program)
            progressed = progressed or retired is not None
            # Complete the oldest SB store (may inject a miss).
            drained = self._try_drain_store(program)
            progressed = progressed or drained
            if not progressed:
                raise ProtocolError("pipeline deadlocked")
            # Resume index may have moved backwards after an abort.
            fetch_index = min(fetch_index, self._resume_index)

    # Internal: where the next fetch must happen after an abort.
    @property
    def _resume_index(self) -> int:
        return getattr(self, "_resume", 1 << 60)

    def _set_resume(self, index: int) -> None:
        self._resume = index

    def _clear_resume(self) -> None:
        self._resume = 1 << 60

    def _fetch(self, program: List[Instruction], index: int) -> int:
        """Fetch/rename/execute program[index]; returns the next index."""
        self._clear_resume()
        instruction = program[index]
        if instruction.kind == InstructionKind.ALU:
            value = (self._read(instruction.src)
                     + instruction.immediate) & MASK
            entry = self.core.fetch(InstructionKind.ALU,
                                    dest_arch_reg=instruction.dest)
            self.prf_values[entry.new_preg] = value
            self.core.complete(entry.seq)
        elif instruction.kind == InstructionKind.LOAD:
            entry = self.core.fetch(InstructionKind.LOAD,
                                    dest_arch_reg=instruction.dest,
                                    page=instruction.page)
            self._seq_to_index[entry.seq] = index
            if index in self.miss_points:
                # DRAM-cache miss on a load still in the ROB: squash it
                # and everything younger, refill, and replay.
                self.miss_points.discard(index)
                self.aborts += 1
                resume_seq = self.core.abort_load(entry.seq)
                self._drop_pending_stores(resume_seq)
                self._set_resume(self._seq_to_index[resume_seq])
                self.replays += 1
                return self._seq_to_index[resume_seq]
            value = self._forwarded_load(instruction.page, entry.seq)
            self.prf_values[entry.new_preg] = value
            self.core.complete(entry.seq)
        else:  # STORE
            entry = self.core.fetch(InstructionKind.STORE,
                                    page=instruction.page)
            self._seq_to_index[entry.seq] = index
            value = self._read(instruction.src)
            self._store_values[entry.seq] = value
            self._pending_stores.append((entry.seq, instruction.page, value))
        self._seq_to_index.setdefault(entry.seq, index)
        return index + 1

    def _try_retire(self, program: List[Instruction]):
        head = self.core.rob.head
        if head is None:
            return None
        if head.kind == InstructionKind.STORE:
            if self.core.store_buffer.is_full:
                return None
            return self.core.retire()
        if head.completed:
            return self.core.retire()
        return None

    def _try_drain_store(self, program: List[Instruction]) -> bool:
        head = self.core.store_buffer.head
        if head is None:
            return False
        index = self._seq_to_index[head.seq]
        if index in self.miss_points:
            # The committed store's write misses the DRAM cache: the
            # ASO path aborts it (and all younger state) post-retirement.
            self.miss_points.discard(index)
            self.aborts += 1
            resume_seq = self.core.abort_store(head.seq)
            self._drop_pending_stores(resume_seq)
            self._set_resume(self._seq_to_index[resume_seq])
            self.replays += 1
            return True
        # The write completes: commit to memory, free the window.
        entry = self.core.complete_store()
        value = self._store_values.pop(entry.seq)
        self.memory[entry.page] = value
        self._pending_stores = [
            record for record in self._pending_stores
            if record[0] != entry.seq
        ]
        return True

    def _drop_pending_stores(self, from_seq: int) -> None:
        self._pending_stores = [
            record for record in self._pending_stores if record[0] < from_seq
        ]
        self._store_values = {
            seq: value for seq, value in self._store_values.items()
            if seq < from_seq
        }

    # -- inspection --------------------------------------------------------------

    def architectural_registers(self) -> List[int]:
        return [
            self._read(arch)
            for arch in range(self.core.map_table.num_arch_registers)
        ]


def random_program(rng: random.Random, length: int = 30,
                   num_registers: int = 8, num_pages: int = 8
                   ) -> List[Instruction]:
    """A random toy-ISA program (for differential testing)."""
    program: List[Instruction] = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.4:
            program.append(Instruction(
                InstructionKind.ALU,
                dest=rng.randrange(num_registers),
                src=rng.randrange(num_registers),
                immediate=rng.randrange(1, 100),
            ))
        elif roll < 0.7:
            program.append(Instruction(
                InstructionKind.LOAD,
                dest=rng.randrange(num_registers),
                page=rng.randrange(num_pages),
            ))
        else:
            program.append(Instruction(
                InstructionKind.STORE,
                src=rng.randrange(num_registers),
                page=rng.randrange(num_pages),
            ))
    return program
