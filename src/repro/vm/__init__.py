"""Virtual-memory substrate: page tables, TLBs, walker, shootdowns."""

from repro.vm.address_space import AddressSpace
from repro.vm.page_table import PageTable
from repro.vm.shootdown import TlbShootdownModel
from repro.vm.tlb import Tlb
from repro.vm.walker import PageTableWalker

__all__ = [
    "AddressSpace",
    "PageTable",
    "PageTableWalker",
    "Tlb",
    "TlbShootdownModel",
]
