"""Workload and job abstractions.

A *job* is one client request (a database transaction, a lookup, ...).
Executing a job produces a sequence of :class:`Step` objects: a compute
segment (cycles the core spends before the next memory access that
reaches DRAM) followed by one page access.  The core loop advances
through the steps; when a step's page misses the DRAM cache the thread
halts and the same step is replayed after the refill.

Workloads own their data structures and produce jobs; they also declare
the knobs the core model needs (typical ROB occupancy for the flush
penalty — TPCC's compute-heavy window makes flushes costlier,
Sec. VI-A).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.errors import WorkloadError


class Step:
    """One compute segment followed by one memory access."""

    __slots__ = ("compute_ns", "page", "is_write")

    def __init__(self, compute_ns: float, page: int, is_write: bool = False):
        self.compute_ns = compute_ns
        self.page = page
        self.is_write = is_write

    def __repr__(self) -> str:
        rw = "W" if self.is_write else "R"
        return f"<Step {self.compute_ns:.0f}ns {rw} page={self.page}>"


class Job:
    """One request: an iterator of steps plus latency bookkeeping."""

    __slots__ = ("job_id", "workload_name", "steps", "arrived_at",
                 "started_at", "finished_at", "queue_latency_ns",
                 "service_latency_ns", "misses")

    def __init__(self, job_id: int, workload_name: str,
                 steps: Iterator[Step]) -> None:
        self.job_id = job_id
        self.workload_name = workload_name
        self.steps = steps
        self.arrived_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.queue_latency_ns: Optional[float] = None
        self.service_latency_ns: Optional[float] = None
        self.misses = 0

    def next_step(self) -> Optional[Step]:
        """The next step, or None when the job is done."""
        return next(self.steps, None)

    @property
    def response_latency_ns(self) -> float:
        """Queueing + service (the client-observed latency)."""
        if self.finished_at is None or self.arrived_at is None:
            raise WorkloadError("job not finished")
        return self.finished_at - self.arrived_at

    def __repr__(self) -> str:
        return f"<Job {self.workload_name}#{self.job_id}>"


class Workload:
    """Base class for the evaluated applications."""

    #: Registry name; subclasses override.
    name = "base"
    #: Typical ROB occupancy when a miss signal flushes the pipeline.
    rob_occupancy = 64.0

    def __init__(self, dataset_pages: int, seed: int = 42) -> None:
        if dataset_pages < 1:
            raise WorkloadError("dataset needs at least one page")
        self.dataset_pages = dataset_pages
        self.seed = seed
        self._rng = random.Random(seed)
        # Bound method: _compute runs once per generated step.
        self._rng_random = self._rng.random
        self._next_job_id = 0
        # Lazily-created buffered RNG bridge for numpy planners
        # (repro.sim.vector.BatchedRandom); see _planner_rng().
        self._vector_rng = None

    # -- job production -----------------------------------------------------

    def make_job(self) -> Job:
        """Create one request (thread-safe within the single-threaded
        simulation)."""
        job_id = self._next_job_id
        self._next_job_id += 1
        return Job(job_id, self.name, self._steps_for_job(job_id))

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        raise NotImplementedError

    # -- vector-backend planning (repro.sim.vector) ---------------------------

    def plan_steps(self, job: "Job"):
        """Materialize ``job``'s steps as parallel columns.

        Returns ``(compute_ns, pages, is_write)`` — plain Python lists
        (no numpy scalars: pages flow into dict keys and state dumps
        that must repr identically to the scalar path).  The base
        implementation drains the job's own generator, so the RNG
        draws are the scalar draws by construction; subclasses with
        block-drawable streams (see
        :meth:`repro.workloads.arrayswap.ArraySwapWorkload.plan_steps`)
        override it with a numpy planner that consumes the same
        streams in the same order.  The job's step iterator is spent
        afterwards; the vector backend executes from the columns.
        """
        compute: List[float] = []
        pages: List[int] = []
        writes: List[bool] = []
        for step in job.steps:
            compute.append(step.compute_ns)
            pages.append(step.page)
            writes.append(step.is_write)
        return compute, pages, writes

    def _planner_rng(self):
        """Persistent buffered bridge over ``self._rng`` for numpy
        planners.  Amortizes the Mersenne-Twister state transplant
        across jobs; the vector backend calls :meth:`plan_sync` at end
        of run to land the Python stream on the consumed position."""
        rng = self._vector_rng
        if rng is None:
            from repro.sim.vector import BatchedRandom

            rng = self._vector_rng = BatchedRandom(self._rng)
        return rng

    def plan_sync(self) -> None:
        """Resynchronize ``self._rng`` after buffered planner draws."""
        if self._vector_rng is not None:
            self._vector_rng.sync()

    # -- calibration helpers -------------------------------------------------

    def _compute(self, mean_ns: float) -> float:
        """A jittered compute segment (uniform +-50% around the mean).

        Inlined ``uniform(0.5, 1.5)``: with these bounds the stdlib
        computes ``0.5 + (1.5 - 0.5) * random()`` where the span is
        exactly 1.0, so ``0.5 + random()`` consumes the same draw and
        yields the same bits — one call frame cheaper on the hottest
        workload path.
        """
        return mean_ns * (0.5 + self._rng_random())

    def sample_trace(self, num_jobs: int = 32) -> List[Step]:
        """Flat step trace of a few jobs (calibration/tests)."""
        steps: List[Step] = []
        for _ in range(num_jobs):
            job = self.make_job()
            while True:
                step = job.next_step()
                if step is None:
                    break
                steps.append(step)
        return steps

    def average_service_time_ns(self, num_jobs: int = 64) -> float:
        """Sum of compute segments plus nominal DRAM hits per job,
        assuming every access hits (the DRAM-only service time)."""
        total = 0.0
        for _ in range(num_jobs):
            job = self.make_job()
            while True:
                step = job.next_step()
                if step is None:
                    break
                total += step.compute_ns
        return total / num_jobs
