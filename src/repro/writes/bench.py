"""Write-path sweeps: WA and lifetime across admission policies.

``python -m repro writes <experiment> --write-ratio-sweep 0.2,0.5``
runs the write-enabled presets across the admission-policy axis
(write-through, write-back, Flashield-style readiness) and a set of
SET-ratio points, and reports write amplification, the P/E-budget
lifetime estimate, and tail latency per cell — the write-path analogue
of the chaos degradation curves.  Each ``(preset, policy, ratio)``
cell is one independent simulation fanned out through
:mod:`repro.harness.parallel`.

Two write-amplification numbers per cell, both from the measurement
window (DESIGN.md §4j):

* ``wa_factor`` — device-level WA: flash programs issued (host
  writebacks + GC migrations) per host writeback.  ≥ 1.0 by
  construction; the classic FTL metric.
* ``flash_writes_per_app_write`` — end-to-end WA in Flashield's sense:
  flash programs per *application* store.  The DRAM cache coalesces
  repeated stores to a page into one writeback, so this can be far
  below 1 — and it is where the admission policies separate by
  construction: write-through programs flash on (almost) every SET,
  write-back only on dirty eviction, and the readiness filter drops
  evictions of pages without a read history.

Determinism: every cell uses the same simulation seed, the readiness
sketch hashes with its own seeded salts, and write-path runs fall back
to the scalar backend (the ``execution`` block records the ``writes``
fallback reason) — two invocations produce byte-identical
``BENCH_writes.json``, the acceptance bar the CI smoke job reruns.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.system import WritesConfig
from repro.errors import ReproError
from repro.harness.common import HarnessScale, build_config, resolve_scale
from repro.jsonutil import dumps as json_dumps
from repro.sim import vector as _vector
from repro.harness.parallel import (
    ParallelRunError,
    RunSpec,
    execute_spec,
    run_specs,
)

#: Bump when the JSON layout of :class:`WritesBench` changes so CI
#: consumers of ``BENCH_writes.json`` can detect incompatible files.
WRITES_SCHEMA_VERSION = 1

#: The write-enabled presets (outside EVALUATED_CONFIG_NAMES).
DEFAULT_PRESETS: Tuple[str, ...] = ("astriflash-writes", "flash-sync-writes")

#: Default SET-ratio points (``--write-ratio-sweep`` overrides).
DEFAULT_WRITE_RATIOS: Tuple[float, ...] = (0.5,)

#: Sweep order = expected end-to-end WA order, highest first.
POLICY_ORDER: Tuple[str, ...] = WritesConfig.POLICIES

#: Window-scoped write counters lifted out of ``result.counters``
#: (``writes.`` prefix) into the cell, in cell-field order.
_WINDOW_FIELDS: Tuple[str, ...] = (
    "host_writes",
    "device_writes",
    "app_writes",
    "admission_rejects",
    "writeback_elided",
    "gc_migrated_pages",
    "gc_erases",
    "wa_factor",
    "flash_writes_per_app_write",
)


@dataclass
class WritesCell:
    """One (preset, policy, write_ratio) point of the sweep grid."""

    preset: str
    policy: str
    write_ratio: float
    throughput_jobs_per_s: float = 0.0
    service_p99_ns: float = 0.0
    service_mean_ns: float = 0.0
    host_writes: float = 0.0
    device_writes: float = 0.0
    app_writes: float = 0.0
    admission_rejects: float = 0.0
    writeback_elided: float = 0.0
    gc_migrated_pages: float = 0.0
    gc_erases: float = 0.0
    wa_factor: float = 1.0
    flash_writes_per_app_write: float = 0.0
    #: None when the window saw no erases (P/E budget untouched).
    lifetime_years: Optional[float] = None
    #: True when the run died (e.g. write-buffer capacity exhaustion).
    failed: bool = False


@dataclass
class WritesBench:
    """Everything one write sweep produced, schema-stamped for CI."""

    experiment: str
    scale: str
    workload: str
    seed: int
    write_ratio_points: List[float]
    presets: List[str]
    policies: List[str]
    cells: List[WritesCell]
    #: True iff for every (preset, ratio) group the end-to-end WA
    #: (``flash_writes_per_app_write``) is strictly decreasing in
    #: write-through → write-back → readiness order (failed cells
    #: void the group) — the acceptance property CI asserts.
    policy_order_ok: bool = True
    schema_version: int = WRITES_SCHEMA_VERSION
    config_preset: str = ""  # HarnessScale.name the run resolved to
    #: Backend accounting (same contract as the chaos bench): derived
    #: from config facts only, so deterministic — but it names the
    #: backend, so byte-diffs across backends must exclude this key.
    execution: dict = dataclasses.field(default_factory=dict)

    def grid(self, preset: str, write_ratio: float) -> List[WritesCell]:
        """The preset's cells at one ratio, in policy sweep order."""
        return [cell for cell in self.cells
                if cell.preset == preset and cell.write_ratio == write_ratio]

    def format_text(self) -> str:
        lines = [
            f"write sweep: {self.experiment} (scale={self.scale}, "
            f"workload={self.workload}, seed={self.seed})",
            f"  policy WA order (wt > wb > readiness): "
            f"{'yes' if self.policy_order_ok else 'NO'}",
        ]
        for preset in self.presets:
            for ratio in self.write_ratio_points:
                lines.append(f"  {preset} @ write_ratio={ratio:g}:")
                lines.append(
                    f"    {'policy':>13}  {'jobs/s':>9}  {'p99 us':>8}  "
                    f"{'WA(dev)':>7}  {'WA(e2e)':>8}  {'host wr':>8}  "
                    f"{'gc moves':>8}  {'rejects':>7}  {'life yrs':>9}"
                )
                for cell in self.grid(preset, ratio):
                    if cell.failed:
                        lines.append(f"    {cell.policy:>13}  "
                                     f"{'run failed':>9}")
                        continue
                    # Model-scale years are microscopic (tiny device,
                    # 4 KiB blocks): scientific notation or nothing.
                    life = "inf" if cell.lifetime_years is None \
                        else f"{cell.lifetime_years:.2e}"
                    lines.append(
                        f"    {cell.policy:>13}  "
                        f"{cell.throughput_jobs_per_s:>9,.0f}  "
                        f"{cell.service_p99_ns / 1000.0:>8.1f}  "
                        f"{cell.wa_factor:>7.3f}  "
                        f"{cell.flash_writes_per_app_write:>8.4f}  "
                        f"{cell.host_writes:>8.0f}  "
                        f"{cell.gc_migrated_pages:>8.0f}  "
                        f"{cell.admission_rejects:>7.0f}  "
                        f"{life:>8}"
                    )
        return "\n".join(lines)

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def key_metrics(self) -> dict:
        """Registry-namespace projection for the run ledger."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).metrics

    def fingerprint(self) -> str:
        """Deterministic digest over the cells (ledger identity)."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).fingerprint


def parse_write_ratio_sweep(text: str) -> Tuple[float, ...]:
    """Parse a ``--write-ratio-sweep`` comma list into sorted floats."""
    points = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            value = float(token)
        except ValueError:
            raise ReproError(
                f"bad write-ratio sweep point {token!r}") from None
        if not 0.0 < value <= 1.0:
            raise ReproError(
                f"write-ratio sweep point {value} outside (0, 1]")
        points.append(value)
    if not points:
        raise ReproError("write-ratio sweep needs at least one point")
    return tuple(sorted(set(points)))


def writes_overrides(policy: str) -> Tuple[Tuple[str, object], ...]:
    """Config overrides selecting one admission policy.

    The write presets already enable the write path; the sweep only
    varies the policy axis, so every cell shares one warm-state key.
    """
    if policy not in WritesConfig.POLICIES:
        known = ", ".join(WritesConfig.POLICIES)
        raise ReproError(f"unknown admission policy {policy!r}; "
                         f"known: {known}")
    return (("writes.admission_policy", policy),)


#: Extra kvstore knobs for sweep cells.  ``compute_ns`` models a few
#: microseconds of per-op request handling, which throttles the SET
#: rate to the small write-preset device's program bandwidth —
#: without it the closed loop offers an order of magnitude more
#: stores than the device can ever program and every policy saturates
#: identically.  ``num_keys`` bounds the dirtied footprint well below
#: the FTL's usable space so steady-state GC always has garbage to
#: compact (see the preset's over-provisioning note).
KV_SWEEP_OVERRIDES: Tuple[Tuple[str, object], ...] = (
    ("compute_ns", 5_000.0),
    ("num_keys", 192),
)


def writes_scale(scale: HarnessScale) -> HarnessScale:
    """Derive the write-sweep scale from a harness scale.

    The dataset is capped far below harness scale so the shrunken
    write-preset device turns its physical space over inside the
    (stretched) measurement window — steady-state GC, measured WA and
    a finite lifetime estimate need the space to actually churn.  The
    zipf exponent is capped at 1.2: the read presets' 1.7 concentrates
    half the SET stream on one value page, and since a logical page is
    pinned to one plane, that single plane saturates long before the
    device does.
    """
    return dataclasses.replace(
        scale,
        name=f"{scale.name}-writes",
        dataset_pages=min(scale.dataset_pages, 192),
        measurement_us=max(scale.measurement_us, 30_000.0),
        zipf_s=min(scale.zipf_s, 1.2),
    )


def _check_policy_order(bench: WritesBench) -> bool:
    ordered = [p for p in POLICY_ORDER if p in bench.policies]
    if len(ordered) < 2:
        return True
    for preset in bench.presets:
        for ratio in bench.write_ratio_points:
            by_policy: Dict[str, WritesCell] = {
                cell.policy: cell for cell in bench.grid(preset, ratio)
            }
            last = None
            for policy in ordered:
                cell = by_policy.get(policy)
                if cell is None or cell.failed:
                    return False
                value = cell.flash_writes_per_app_write
                if last is not None and value >= last:
                    return False
                last = value
    return True


def run_writes(experiment: str = "kv", scale="quick",
               write_ratios: Optional[Sequence[float]] = None,
               policies: Optional[Sequence[str]] = None,
               presets: Optional[Sequence[str]] = None,
               workload: str = "kvstore", seed: int = 42,
               jobs: Optional[int] = None,
               snapshots: Optional[bool] = None,
               snapshot_dir=None,
               backend: Optional[str] = None) -> WritesBench:
    """Sweep admission policies and SET ratios over the write presets.

    ``backend`` selects the execution backend per cell; write-enabled
    runs fall back to the scalar backend with the ``writes`` reason
    the ``execution`` block accounts for.
    """
    base_scale = resolve_scale(scale)
    scale = writes_scale(base_scale)
    backend = _vector.preferred_backend(backend)
    if write_ratios is None:
        write_ratios = DEFAULT_WRITE_RATIOS
    write_ratios = tuple(sorted(set(float(r) for r in write_ratios)))
    if policies is None:
        policies = POLICY_ORDER
    policies = tuple(policies)
    for policy in policies:
        writes_overrides(policy)  # validate early
    if presets is None:
        presets = DEFAULT_PRESETS
    presets = tuple(presets)

    grid = [
        (preset, policy, ratio)
        for preset in presets
        for ratio in write_ratios
        for policy in policies
    ]
    kv_overrides = KV_SWEEP_OVERRIDES if workload == "kvstore" else ()
    specs = [
        RunSpec(preset, workload, scale, seed=seed,
                workload_overrides=tuple(sorted(
                    kv_overrides + (("write_ratio", ratio),))),
                config_overrides=writes_overrides(policy))
        for preset, policy, ratio in grid
    ]
    try:
        results = run_specs(specs, jobs=jobs, snapshots=snapshots,
                            snapshot_dir=snapshot_dir, backend=backend)
    except ParallelRunError:
        # Some point of the grid died (e.g. write-buffer capacity at an
        # extreme ratio).  Re-run cell by cell so the surviving points
        # still produce curves and the dead ones are marked.
        results = []
        for spec in specs:
            try:
                results.append(execute_spec(spec, snapshots=snapshots,
                                            snapshot_dir=snapshot_dir,
                                            backend=backend))
            except ReproError:
                results.append(None)

    cells = []
    for (preset, policy, ratio), result in zip(grid, results):
        if result is None:
            cells.append(WritesCell(preset=preset, policy=policy,
                                    write_ratio=ratio, failed=True))
            continue
        window = {
            name: result.counters.get(f"writes.{name}", 0.0)
            for name in _WINDOW_FIELDS
        }
        lifetime = result.counters.get("writes.lifetime_years")
        cells.append(WritesCell(
            preset=preset,
            policy=policy,
            write_ratio=ratio,
            throughput_jobs_per_s=result.throughput_jobs_per_s,
            service_p99_ns=result.service_p99_ns,
            service_mean_ns=result.service_mean_ns,
            lifetime_years=lifetime,
            **window,
        ))

    bench = WritesBench(
        experiment=experiment,
        scale=base_scale.name,
        workload=workload,
        seed=seed,
        write_ratio_points=list(write_ratios),
        presets=list(presets),
        policies=list(policies),
        cells=cells,
        config_preset=scale.name,
    )
    bench.policy_order_ok = _check_policy_order(bench)

    # Backend accounting: classified from config facts so the block is
    # identical whether cells executed or came from the cache.  Write
    # cells are closed-loop and unfaulted; the enabled write path is
    # what drives the vector backend's ``writes`` fallback.
    shape_counts = []
    for preset in presets:
        config = build_config(preset, scale)
        count = len(write_ratios) * len(policies)
        shape_counts.append((config.mode, config.num_cores, False, False,
                             config.writes.enabled, count))
    bench.execution = _vector.execution_summary(backend, shape_counts)
    return bench
