"""Tests for machine assembly across the four paging modes."""

import pytest

from repro.config import make_config
from repro.core import Machine, PTES_PER_PAGE
from repro.errors import ConfigurationError
from repro.workloads import make_workload


def small_config(name, **scale):
    config = make_config(name)
    config.num_cores = 2
    config.scale.dataset_pages = 2048
    for key, value in scale.items():
        setattr(config.scale, key, value)
    return config


class TestMachineAssembly:
    def test_dram_only_has_no_flash(self):
        machine = Machine(small_config("dram-only"))
        assert machine.flash is None
        assert machine.dram_cache is None
        assert machine.pager is None

    def test_astriflash_has_cache_and_libraries(self):
        machine = Machine(small_config("astriflash"))
        assert machine.flash is not None
        assert machine.dram_cache is not None
        assert machine.pager is None
        assert all(lib is not None for lib in machine.libraries)
        # Handler installed via the privileged path on every core.
        for core in machine.cores:
            assert core.registers.handler_address is not None

    def test_flash_sync_has_cache_but_no_threads(self):
        machine = Machine(small_config("flash-sync"))
        assert machine.dram_cache is not None
        assert all(lib is None for lib in machine.libraries)

    def test_os_swap_has_pager_and_kernel_threads(self):
        config = small_config("os-swap")
        machine = Machine(config)
        assert machine.pager is not None
        assert machine.dram_cache is None
        for library in machine.libraries:
            assert library is not None
            assert library.config.switch_latency_ns == \
                config.os.context_switch_ns

    def test_cache_capacity_is_3_percent(self):
        config = small_config("astriflash")
        machine = Machine(config)
        expected = config.scaled_dram_cache_pages
        # Rounded down to whole sets.
        assert abs(machine.dram_cache.capacity_pages - expected) < \
            config.dram_cache.associativity


class TestPageTablePlacement:
    def test_pt_pages_sit_above_dataset(self):
        machine = Machine(small_config("astriflash"))
        pt_page = machine.page_table_page(0)
        assert pt_page >= machine.dataset_pages
        assert machine.page_table_page(PTES_PER_PAGE - 1) == pt_page
        assert machine.page_table_page(PTES_PER_PAGE) == pt_page + 1

    def test_out_of_range_data_page_raises(self):
        machine = Machine(small_config("astriflash"))
        with pytest.raises(ConfigurationError):
            machine.page_table_page(machine.dataset_pages)

    def test_partitioning_flag(self):
        assert not Machine(small_config("astriflash")).page_tables_in_flash_space
        assert Machine(small_config("astriflash-nodp")).page_tables_in_flash_space
        # Other modes never walk through the cache.
        assert not Machine(small_config("flash-sync")).page_tables_in_flash_space


class TestWarmup:
    def test_warm_caches_populates_dram_cache(self):
        machine = Machine(small_config("astriflash"))
        workload = make_workload("arrayswap", 2048, seed=1)
        machine.warm_caches(workload, num_steps=5000)
        assert machine.dram_cache.organization.occupancy() > 0

    def test_warm_caches_populates_resident_set(self):
        machine = Machine(small_config("os-swap"))
        workload = make_workload("arrayswap", 2048, seed=1)
        machine.warm_caches(workload, num_steps=5000)
        assert len(machine.pager.resident) > 0

    def test_warm_caches_noop_for_dram_only(self):
        machine = Machine(small_config("dram-only"))
        workload = make_workload("arrayswap", 2048, seed=1)
        machine.warm_caches(workload, num_steps=100)  # must not raise
