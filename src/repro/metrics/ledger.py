"""The run ledger: one JSONL line per CLI invocation.

Every measuring verb (``report``, ``profile``, ``bench-kernel``,
``bench-sweep``, ``chaos``, ``loadgen``, ``simulate``) appends a
schema-stamped :class:`RunRecord` to ``.repro_runs/ledger.jsonl`` —
the persistent perf trajectory that ``repro history``/``diff``/
``regress``/``dashboard`` read.  The ledger is observability, not a
result store: appends are best-effort (IO failures warn, never fail
the verb) and can be disabled wholesale with ``REPRO_LEDGER=0``.

Determinism contract: a record's identity (``record_id``) is the
digest of its *normalized* payload — every field except the
wall-clock ones (:data:`WALL_FIELDS`) and the host-dependent artifact
paths.  Two identical-seed runs of the same source tree therefore
produce identical normalized records and identical ids, which is what
lets ``repro diff`` certify "nothing moved" and the tests pin
round-trip determinism.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.jsonutil import dumps as json_dumps, loads as json_loads

#: Bump when the JSONL layout of :class:`RunRecord` changes so ledger
#: consumers can detect incompatible lines.
LEDGER_SCHEMA_VERSION = 1

#: Wall-clock / host-dependent record fields, excluded from the
#: normalized payload (and so from ``record_id`` and ``repro diff``'s
#: determinism check).
WALL_FIELDS = ("wall_seconds", "events_per_second", "timestamp")

#: Environment switches: directory override and global disable.
DIR_ENV_VAR = "REPRO_RUNS_DIR"
ENABLE_ENV_VAR = "REPRO_LEDGER"

LEDGER_FILENAME = "ledger.jsonl"


def ledger_enabled() -> bool:
    """False when ``REPRO_LEDGER`` is set to an off value."""
    return os.environ.get(ENABLE_ENV_VAR, "1").strip().lower() \
        not in ("0", "false", "no", "off")


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` or ``.repro_runs`` in the working directory
    (mirrors the ``.repro_cache`` convention in the parallel harness)."""
    return Path(os.environ.get(DIR_ENV_VAR, ".repro_runs"))


def ledger_path(path: Optional[os.PathLike] = None) -> Path:
    if path is not None:
        return Path(path)
    return default_runs_dir() / LEDGER_FILENAME


@dataclass
class RunRecord:
    """One ledger line: what ran, on what source, and what it measured."""

    verb: str
    experiment: str = ""
    preset: str = ""
    workload: str = ""
    backend: str = ""
    scale: str = ""
    seed: int = 0
    source_digest: str = ""
    fingerprint: str = ""
    #: Rendered registry keys (see repro.metrics.registry) -> values;
    #: deterministic by construction — wall figures live below instead.
    metrics: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    events_per_second: float = 0.0
    timestamp: str = ""
    artifacts: List[str] = field(default_factory=list)
    schema_version: int = LEDGER_SCHEMA_VERSION
    record_id: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        known = {name for name in cls.__dataclass_fields__}
        kwargs = {key: value for key, value in payload.items()
                  if key in known}
        kwargs.setdefault("verb", "")
        return cls(**kwargs)

    def normalized(self) -> Dict[str, object]:
        """The record minus wall fields, artifact paths and the id —
        the comparison (and ``record_id``) surface."""
        payload = self.to_dict()
        for name in WALL_FIELDS + ("artifacts", "record_id"):
            payload.pop(name, None)
        return payload

    def compute_id(self) -> str:
        canonical = json_dumps(self.normalized(), indent=None)
        return sha256(canonical.encode()).hexdigest()[:12]

    def label(self) -> str:
        """Compact human identity for diff/history output."""
        parts = [self.record_id or "-", self.verb]
        if self.experiment:
            parts.append(self.experiment)
        if self.preset or self.workload:
            parts.append(f"{self.preset or '*'}/{self.workload or '*'}")
        return " ".join(parts)


def make_record(verb: str, *, experiment: str = "", preset: str = "",
                workload: str = "", backend: str = "", scale: str = "",
                seed: int = 0, metrics: Optional[Dict[str, float]] = None,
                fingerprint: str = "", wall_seconds: float = 0.0,
                events_per_second: float = 0.0,
                artifacts: Sequence[str] = ()) -> RunRecord:
    """Build a fully-stamped record (source digest, timestamp, id)."""
    from repro.snapshot import source_digest  # deferred: walks the tree once

    record = RunRecord(
        verb=verb,
        experiment=experiment,
        preset=preset,
        workload=workload,
        backend=backend,
        scale=scale,
        seed=int(seed),
        source_digest=source_digest(),
        fingerprint=fingerprint,
        metrics=dict(metrics or {}),
        wall_seconds=float(wall_seconds),
        events_per_second=float(events_per_second),
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        artifacts=[str(item) for item in artifacts],
    )
    record.record_id = record.compute_id()
    return record


def append_record(record: RunRecord,
                  path: Optional[os.PathLike] = None) -> Optional[Path]:
    """Append one JSONL line; returns the path, or None when disabled."""
    if not ledger_enabled():
        return None
    target = ledger_path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json_dumps(record.to_dict(), indent=None) + "\n")
    return target


def read_ledger(path: Optional[os.PathLike] = None) -> List[RunRecord]:
    """Every parseable record, oldest first; a missing ledger is empty.

    Malformed lines (a crashed append, hand edits) are skipped rather
    than poisoning every history/diff invocation after them.
    """
    target = ledger_path(path)
    if not target.is_file():
        return []
    records: List[RunRecord] = []
    with open(target, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json_loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and payload.get("verb"):
                records.append(RunRecord.from_dict(payload))
    return records


def filter_records(records: Sequence[RunRecord], verb: str = "",
                   experiment: str = "", preset: str = "",
                   workload: str = "", backend: str = "",
                   last: Optional[int] = None) -> List[RunRecord]:
    """Ledger query: equality filters, then keep the newest ``last``."""
    selected = [
        record for record in records
        if (not verb or record.verb == verb)
        and (not experiment or record.experiment == experiment)
        and (not preset or record.preset == preset)
        and (not workload or record.workload == workload)
        and (not backend or record.backend == backend)
    ]
    if last is not None and last >= 0:
        selected = selected[-last:] if last else []
    return selected


def select_record(records: Sequence[RunRecord], selector: str) -> RunRecord:
    """Resolve a ``repro diff`` selector against the ledger.

    Accepts a ledger index (``0`` oldest, ``-1`` newest), a
    ``record_id`` prefix, or a path to a JSON file holding either a
    :class:`RunRecord` dump or any recognized bench payload (which is
    projected through :func:`repro.metrics.registry.bench_view`).
    """
    try:
        index = int(selector)
    except ValueError:
        pass
    else:
        try:
            return records[index]
        except IndexError:
            raise ReproError(
                f"ledger index {index} out of range "
                f"({len(records)} records)"
            ) from None
    matches = [record for record in records
               if record.record_id.startswith(selector)]
    if len(matches) == 1:
        return matches[0]
    if len(matches) > 1:
        raise ReproError(
            f"record id prefix {selector!r} is ambiguous "
            f"({len(matches)} matches)"
        )
    if os.path.isfile(selector):
        return record_from_file(selector)
    raise ReproError(
        f"no ledger record matches {selector!r} (not an index, id "
        "prefix, or readable JSON file)"
    )


def record_from_file(path: os.PathLike) -> RunRecord:
    """A RunRecord from a JSON file: either a ledger-record dump or a
    bench payload adapted through the registry."""
    from repro.metrics.registry import bench_view

    with open(path, "r", encoding="utf-8") as handle:
        payload = json_loads(handle.read())
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: expected a JSON object")
    if "verb" in payload and "metrics" in payload:
        return RunRecord.from_dict(payload)
    view = bench_view(payload)
    record = RunRecord(verb=view.verb, metrics=view.metrics,
                       fingerprint=view.fingerprint,
                       scale=str(payload.get("scale", "")),
                       experiment=str(payload.get("experiment", "")))
    record.record_id = record.compute_id()
    return record
