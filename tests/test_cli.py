"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestListingCommands:
    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tatp" in out and "masstree" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "astriflash" in out and "flash-sync" in out


class TestRunCommands:
    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig42"])

    def test_run_accepts_jobs_flag(self, capsys):
        assert main(["run", "fig2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_simulate_closed_loop(self, capsys):
        assert main([
            "simulate", "--config", "dram-only", "--workload", "arrayswap",
            "--dataset-pages", "2048", "--measurement-us", "800",
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_simulate_open_loop(self, capsys):
        assert main([
            "simulate", "--config", "dram-only", "--workload", "arrayswap",
            "--dataset-pages", "2048", "--measurement-us", "800",
            "--interarrival-us", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "jobs/s" in out

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestSnapshotFlags:
    def test_no_snapshot_sets_env(self, capsys, monkeypatch):
        # setenv first so monkeypatch restores the pre-test value after
        # main() mutates os.environ directly.
        monkeypatch.setenv("REPRO_SNAPSHOT", "1")
        assert main(["run", "fig3", "--no-snapshot"]) == 0
        assert os.environ.get("REPRO_SNAPSHOT") == "0"

    def test_snapshot_dir_sets_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_DIR",
                           os.environ.get("REPRO_SNAPSHOT_DIR", ""))
        target = str(tmp_path / "snaps")
        assert main(["run", "fig3", "--snapshot-dir", target]) == 0
        assert os.environ.get("REPRO_SNAPSHOT_DIR") == target


class TestCacheCommand:
    def test_cache_clean_missing_dir(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["cache", "clean", "--dir", str(missing)]) == 0
        assert "does not exist" in capsys.readouterr().out

    def test_cache_clean_removes_files(self, tmp_path, capsys):
        (tmp_path / "a.snap").write_bytes(b"x" * 10)
        (tmp_path / "b.pkl").write_bytes(b"y" * 10)
        assert main(["cache", "clean", "--dir", str(tmp_path)]) == 0
        assert "removed 2 files" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_cache_clean_max_bytes_prunes_lru(self, tmp_path, capsys):
        old = tmp_path / "old.snap"
        old.write_bytes(b"x" * 100)
        os.utime(old, (1_000_000, 1_000_000))
        new = tmp_path / "new.snap"
        new.write_bytes(b"y" * 100)
        assert main(["cache", "clean", "--dir", str(tmp_path),
                     "--max-bytes", "100"]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert new.exists() and not old.exists()


class TestBenchSweepCommand:
    def test_bench_sweep_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sweep.json"
        assert main(["bench-sweep", "fig1", "--scale", "quick",
                     "--json", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "speedup" in printed
        data = json.loads(out.read_text())
        assert data["experiment"] == "fig1"
        assert data["speedup"] > 0


class TestReportCommand:
    def test_report_writes_file(self, tmp_path, capsys, monkeypatch):
        # Patch the registry down to cheap analytic artifacts.
        import repro.cli as cli
        from repro.harness import EXPERIMENTS
        cheap = {k: EXPERIMENTS[k] for k in ("table1", "fig2", "fig3")}
        monkeypatch.setattr(cli, "EXPERIMENTS", cheap)
        out = str(tmp_path / "report.txt")
        assert cli.main(["report", "--out", out]) == 0
        content = open(out).read()
        assert "Table I" in content and "Fig. 3" in content

    def test_report_telemetry_appends_attribution(self, tmp_path, capsys,
                                                  monkeypatch):
        import repro.cli as cli
        from repro.harness import EXPERIMENTS
        cheap = {k: EXPERIMENTS[k] for k in ("table1",)}
        monkeypatch.setattr(cli, "EXPERIMENTS", cheap)
        # The breakdown itself (three traced simulations) is covered by
        # test_obs; here only the report wiring is under test.
        monkeypatch.setattr(cli, "_telemetry_breakdown",
                            lambda scale: "FAKE BREAKDOWN")
        out = str(tmp_path / "report.txt")
        assert cli.main(["report", "--out", out, "--telemetry"]) == 0
        printed = capsys.readouterr().out
        assert "FAKE BREAKDOWN" in printed
        content = open(out).read()
        assert "Tail-latency attribution" in content
        assert "FAKE BREAKDOWN" in content


class TestTraceRunCommand:
    def test_trace_run_writes_valid_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        telemetry = tmp_path / "telemetry.csv"
        # fig2 is analytic (no simulation): the cheapest path through
        # the full trace-run plumbing — the exported trace is empty but
        # must still be a valid document, and the command must succeed.
        assert main(["trace-run", "fig2", "--out", str(out),
                     "--telemetry-out", str(telemetry)]) == 0
        printed = capsys.readouterr().out
        assert "trace:" in printed and "telemetry:" in printed
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        assert telemetry.exists()

    def test_trace_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["trace-run", "fig42"])

    def test_trace_run_traces_a_simulation(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        # table2 quick is the smallest simulation-backed experiment;
        # --sample keeps the record volume low.
        assert main(["trace-run", "table2", "--out", str(out),
                     "--sample", "2"]) == 0
        printed = capsys.readouterr().out
        assert "requests traced" in printed
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["requests_traced"] > 0
