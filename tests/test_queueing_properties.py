"""Property-based tests for the analytic queueing models."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analytic import (
    OverlapModel,
    erlang_c,
    mmk_response_percentile,
    mmk_response_survival,
)


class TestErlangCProperties:
    @given(st.integers(1, 16), st.floats(0.01, 0.98))
    @settings(max_examples=100, deadline=None)
    def test_probability_bounds(self, servers, utilization):
        load = utilization * servers
        value = erlang_c(servers, load)
        assert 0.0 <= value <= 1.0

    @given(st.integers(2, 16), st.floats(0.05, 0.95))
    @settings(max_examples=100, deadline=None)
    def test_more_servers_wait_less(self, servers, utilization):
        """At equal *utilization*, pooling into more servers reduces
        the probability of waiting (economies of scale)."""
        smaller = erlang_c(servers - 1, utilization * (servers - 1))
        larger = erlang_c(servers, utilization * servers)
        assert larger <= smaller + 1e-9


class TestSurvivalProperties:
    @given(st.integers(1, 8), st.floats(0.05, 0.9),
           st.floats(0.0, 50.0), st.floats(0.0, 50.0))
    @settings(max_examples=100, deadline=None)
    def test_survival_monotone_decreasing(self, servers, utilization,
                                          t_a, t_b):
        lam = utilization * servers * 0.1
        mu = 0.1
        low, high = sorted((t_a, t_b))
        s_low = mmk_response_survival(low, lam, mu, servers)
        s_high = mmk_response_survival(high, lam, mu, servers)
        assert 0.0 <= s_high <= s_low <= 1.0 + 1e-9

    @given(st.integers(1, 8), st.floats(0.05, 0.9),
           st.floats(0.5, 0.99), st.floats(0.5, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_monotone_in_fraction(self, servers, utilization,
                                              f_a, f_b):
        lam = utilization * servers * 0.1
        mu = 0.1
        low, high = sorted((f_a, f_b))
        assume(high - low > 1e-6)
        p_low = mmk_response_percentile(low, lam, mu, servers)
        p_high = mmk_response_percentile(high, lam, mu, servers)
        assert p_high >= p_low - 1e-6

    @given(st.integers(1, 8), st.floats(0.05, 0.85))
    @settings(max_examples=60, deadline=None)
    def test_percentile_at_least_service_scale(self, servers, utilization):
        """p99 response is at least the p99 of the service time alone."""
        lam = utilization * servers * 0.1
        mu = 0.1
        p99 = mmk_response_percentile(0.99, lam, mu, servers)
        service_only_p99 = -math.log(0.01) / mu
        # Response = wait + service >= service distribution-wise... the
        # percentile of the sum dominates the service percentile only
        # when wait is independent; here we check the weaker bound that
        # p99 is positive and of the service scale.
        assert p99 >= 0.3 * service_only_p99


class TestOverlapModelProperties:
    @given(st.floats(1_000.0, 50_000.0), st.floats(0.0, 100_000.0),
           st.floats(0.0, 10_000.0))
    @settings(max_examples=100, deadline=None)
    def test_async_never_slower_than_sync(self, work, stall, overhead):
        sync = OverlapModel("sync", work, stall_ns=stall,
                            core_overhead_ns=overhead, synchronous=True)
        overlapped = OverlapModel("async", work, stall_ns=stall,
                                  core_overhead_ns=overhead)
        assert overlapped.max_throughput_per_second >= \
            sync.max_throughput_per_second - 1e-6

    @given(st.floats(1_000.0, 50_000.0), st.floats(1_000.0, 100_000.0))
    @settings(max_examples=100, deadline=None)
    def test_servers_cover_the_stall(self, work, stall):
        model = OverlapModel("m", work, stall_ns=stall)
        # k servers of service time S give at least the core-busy
        # throughput: k/S >= 1/busy.
        assert model.servers / model.service_time_ns >= \
            1.0 / model.core_busy_ns - 1e-12
