"""Benchmark: regenerate Table II (p99 service latency normalized to
Flash-Sync).

Paper: AstriFlash ~1.02x, AstriFlash-noPS ~7x, AstriFlash-noDP ~1.7x.
"""

from conftest import run_once

from repro.harness import run_experiment


def test_table2_service_latency(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "table2",
                      scale=harness_scale)
    print("\n" + result.format_table())

    values = {row[0]: row[1] for row in result.rows}
    assert values["flash-sync"] == 1.0
    # AstriFlash stays close to the Flash-Sync service distribution.
    assert values["astriflash"] < 1.6
    # Dropping priority scheduling starves pending jobs.
    assert values["astriflash-nops"] > 2.0 * values["astriflash"]
    # Dropping DRAM partitioning pays for flash-served page walks.
    assert values["astriflash-nodp"] > values["astriflash"]
