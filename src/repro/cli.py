"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments``                 — list the regenerable paper artifacts
* ``run <experiment> [--scale]``  — regenerate one figure/table
* ``run-all [--scale]``           — regenerate everything
* ``simulate``                    — one ad-hoc simulation run
* ``workloads`` / ``configs``     — list registries
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import EVALUATED_CONFIG_NAMES, make_config
from repro.core import Runner
from repro.harness import EXPERIMENTS, run_experiment
from repro.units import US
from repro.workloads import (
    EVALUATED_WORKLOADS,
    PoissonArrivals,
    make_workload,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AstriFlash (HPCA 2023) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("experiments",
                        help="list regenerable paper artifacts")
    commands.add_parser("workloads", help="list workloads")
    commands.add_parser("configs", help="list system configurations")

    jobs_help = ("worker processes for independent simulations "
                 "(default: $REPRO_JOBS or 1 = in-process)")

    run_parser = commands.add_parser("run", help="regenerate one artifact")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", default="quick",
                            choices=("quick", "full"))
    run_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)

    all_parser = commands.add_parser("run-all",
                                     help="regenerate every artifact")
    all_parser.add_argument("--scale", default="quick",
                            choices=("quick", "full"))
    all_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)

    report_parser = commands.add_parser(
        "report", help="regenerate everything into a report file "
                       "(tables + ASCII charts)")
    report_parser.add_argument("--scale", default="quick",
                               choices=("quick", "full"))
    report_parser.add_argument("--out", default="repro_report.txt")
    report_parser.add_argument("--jobs", type=int, default=None,
                               help=jobs_help)

    profile_parser = commands.add_parser(
        "profile", help="regenerate one artifact under cProfile and "
                        "report hotspots + kernel events/sec")
    profile_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    profile_parser.add_argument("--scale", default="quick",
                                choices=("quick", "full"))
    profile_parser.add_argument("--top", type=int, default=15,
                                help="hotspot rows to report (default 15)")
    profile_parser.add_argument("--json", dest="json_out", default=None,
                                metavar="PATH",
                                help="also write the report as JSON "
                                     "(e.g. BENCH_kernel.json for CI)")

    sim_parser = commands.add_parser("simulate", help="one ad-hoc run")
    sim_parser.add_argument("--config", default="astriflash",
                            choices=EVALUATED_CONFIG_NAMES)
    sim_parser.add_argument("--workload", default="tatp",
                            choices=EVALUATED_WORKLOADS)
    sim_parser.add_argument("--cores", type=int, default=2)
    sim_parser.add_argument("--dataset-pages", type=int, default=8192)
    sim_parser.add_argument("--zipf", type=float, default=1.7)
    sim_parser.add_argument("--measurement-us", type=float, default=3000.0)
    sim_parser.add_argument("--interarrival-us", type=float, default=None,
                            help="open-loop Poisson arrivals (default: "
                                 "closed loop)")
    sim_parser.add_argument("--seed", type=int, default=42)
    return parser


def cmd_experiments() -> int:
    for name in EXPERIMENTS:
        print(name)
    return 0


def cmd_workloads() -> int:
    for name in EVALUATED_WORKLOADS:
        print(name)
    return 0


def cmd_configs() -> int:
    for name in EVALUATED_CONFIG_NAMES:
        print(name)
    return 0


def cmd_run(experiment: str, scale: str, jobs: Optional[int]) -> int:
    result = run_experiment(experiment, scale=scale, jobs=jobs)
    print(result.format_table())
    return 0


def cmd_run_all(scale: str, jobs: Optional[int]) -> int:
    for name in EXPERIMENTS:
        print(run_experiment(name, scale=scale, jobs=jobs).format_table())
        print()
    return 0


def cmd_report(scale: str, out: str, jobs: Optional[int]) -> int:
    from repro.harness.report import generate

    generate(
        EXPERIMENTS, scale=scale, jobs=jobs, out=out,
        header=(f"AstriFlash reproduction report (scale={scale}) — "
                "every paper table/figure regenerated"),
    )
    print(f"wrote {out}")
    return 0


def cmd_profile(experiment: str, scale: str, top: int,
                json_out: Optional[str]) -> int:
    from repro.perf import profile_experiment

    report = profile_experiment(experiment, scale=scale, top=top)
    print(report.format_text())
    if json_out is not None:
        report.write_json(json_out)
        print(f"wrote {json_out}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = make_config(args.config)
    config.num_cores = args.cores
    config.scale.dataset_pages = args.dataset_pages
    config.scale.measurement_ns = args.measurement_us * US
    workload = make_workload(args.workload, args.dataset_pages,
                             seed=args.seed, zipf_s=args.zipf)
    arrivals = None
    if args.interarrival_us is not None:
        arrivals = PoissonArrivals(args.interarrival_us * US,
                                   seed=args.seed + 1)
    result = Runner(config, workload, arrivals=arrivals).run()
    print(result.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        return cmd_experiments()
    if args.command == "workloads":
        return cmd_workloads()
    if args.command == "configs":
        return cmd_configs()
    if args.command == "run":
        return cmd_run(args.experiment, args.scale, args.jobs)
    if args.command == "run-all":
        return cmd_run_all(args.scale, args.jobs)
    if args.command == "report":
        return cmd_report(args.scale, args.out, args.jobs)
    if args.command == "profile":
        return cmd_profile(args.experiment, args.scale, args.top,
                           args.json_out)
    if args.command == "simulate":
        return cmd_simulate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
