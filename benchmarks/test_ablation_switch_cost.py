"""Ablation: thread-switch cost sweep.

DESIGN.md design point: the 100 ns user-level switch is 50x cheaper
than an OS context switch.  Sweeping the switch cost from free
(AstriFlash-Ideal) through the paper's 100 ns to an OS-like 5 us shows
how throughput decays toward OS-Swap as switches get heavier.
"""

import dataclasses

from conftest import run_once

from repro.harness.common import build_config, resolve_scale
from repro.core import Runner
from repro.units import US
from repro.workloads import make_workload

SWITCH_COSTS_NS = (0.0, 100.0, 1_000.0, 5_000.0)


def sweep(scale_name):
    scale = resolve_scale(scale_name)
    throughputs = {}
    for switch_ns in SWITCH_COSTS_NS:
        config = build_config("astriflash", scale)
        config.ult = dataclasses.replace(
            config.ult, switch_latency_ns=switch_ns
        )
        workload = make_workload("tatp", scale.dataset_pages, seed=42,
                                 **scale.workload_kwargs())
        result = Runner(config, workload).run()
        throughputs[switch_ns] = result.throughput_jobs_per_s
    return throughputs


def test_ablation_switch_cost(benchmark, harness_scale):
    throughputs = run_once(benchmark, sweep, harness_scale)
    print("\nswitch cost sweep (jobs/s):")
    for cost, tput in throughputs.items():
        print(f"  {cost / 1000:5.1f} us switch -> {tput:10,.0f}")

    # The paper's 100 ns switch costs almost nothing vs free switches.
    assert throughputs[100.0] > 0.85 * throughputs[0.0]
    # OS-scale 5 us switches hurt badly.
    assert throughputs[5_000.0] < 0.9 * throughputs[100.0]
