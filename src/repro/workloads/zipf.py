"""Zipfian popularity distribution.

Datacenter object popularity is heavily skewed (Sec. II-A); the paper
models data accesses with an analytical Zipfian distribution calibrated
so benchmarks miss the 3 %-capacity DRAM cache every 5-25 us.  This
module provides an exact inverse-CDF Zipfian sampler over ``n`` items
with optional permutation (so popular items spread uniformly over the
page space instead of clustering in low page numbers / cache sets).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class ZipfianGenerator:
    """Samples item indices with P(rank k) proportional to 1/k^s."""

    BATCH = 8192

    def __init__(self, n: int, s: float = 1.3, seed: int = 42,
                 permute: bool = True) -> None:
        if n < 1:
            raise ConfigurationError("Zipfian needs at least one item")
        if s < 0:
            raise ConfigurationError("Zipfian exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = np.random.default_rng(seed)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if permute:
            self._permutation: Optional[np.ndarray] = \
                self._rng.permutation(n)
        else:
            self._permutation = None
        # The batch buffer holds plain Python ints: per-sample numpy
        # scalar extraction (`int(ndarray[i])`) costs more than the
        # whole one-off `tolist()` conversion at refill time.
        self._buffer: list = []
        self._cursor = 0

    def _refill(self) -> None:
        uniforms = self._rng.random(self.BATCH)
        ranks = np.searchsorted(self._cdf, uniforms, side="left")
        if self._permutation is not None:
            ranks = self._permutation[ranks]
        self._buffer = ranks.tolist()
        self._cursor = 0

    def sample(self) -> int:
        """One item index in [0, n)."""
        cursor = self._cursor
        buffer = self._buffer
        if cursor >= len(buffer):
            self._refill()
            cursor = 0
            buffer = self._buffer
        self._cursor = cursor + 1
        return buffer[cursor]

    def sample_block(self, count: int) -> list:
        """``count`` item indices from the *buffered* stream.

        Consumes exactly the samples ``count`` successive
        :meth:`sample` calls would return — same buffer, same refill
        policy, same RNG stream position afterwards — so the vector
        backend's eager per-job planning stays bit-identical to the
        scalar one-at-a-time path.  (:meth:`sample_array` draws fresh
        uniforms and is *not* stream-compatible with :meth:`sample`.)
        """
        out: list = []
        remaining = count
        while remaining > 0:
            cursor = self._cursor
            buffer = self._buffer
            available = len(buffer) - cursor
            if available <= 0:
                self._refill()
                cursor = 0
                buffer = self._buffer
                available = len(buffer)
            take = available if available < remaining else remaining
            out.extend(buffer[cursor:cursor + take])
            self._cursor = cursor + take
            remaining -= take
        return out

    def sample_array(self, count: int) -> np.ndarray:
        """``count`` item indices as a numpy array."""
        uniforms = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, uniforms, side="left")
        if self._permutation is not None:
            ranks = self._permutation[ranks]
        return ranks

    def coverage(self, fraction: float) -> float:
        """Probability mass captured by the hottest ``fraction`` of
        items — the analytic hit rate of a perfectly-managed cache of
        that size (Fig. 1's idealized form)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("coverage fraction out of (0, 1]")
        top_k = max(1, int(self.n * fraction))
        return float(self._cdf[top_k - 1])

    def rank_of(self, item: int) -> int:
        """Popularity rank (0 = hottest) of an item index."""
        if self._permutation is None:
            return item
        # Invert the permutation lazily.
        if not hasattr(self, "_inverse"):
            inverse = np.empty(self.n, dtype=np.int64)
            inverse[self._permutation] = np.arange(self.n)
            self._inverse = inverse
        return int(self._inverse[item])
