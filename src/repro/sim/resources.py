"""Queueing resources for simulation processes.

Two primitives cover everything the models need:

* :class:`Server` — a k-server station with FIFO admission.  Used for
  flash channels, PCIe lanes and the backside controller's issue slots.
* :class:`Store` — a bounded FIFO buffer of items with blocking put/get.
  Used for job queues and controller request queues.

Both are process-aware: acquiring a busy resource yields a
:class:`~repro.sim.process.Signal` that fires when the resource becomes
available.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import Signal


class Server:
    """A station with ``capacity`` parallel servers.

    Usage from a process::

        grant = server.acquire()
        if grant is not None:
            yield grant          # wait until a slot frees up
        yield service_time_ns
        server.release()
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"server capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.busy = 0
        self._waiting: Deque[Signal] = deque()
        # Utilization accounting.
        self._busy_integral = 0.0
        self._last_change = engine.now

    def _account(self) -> None:
        now = self.engine.now
        self._busy_integral += self.busy * (now - self._last_change)
        self._last_change = now

    def acquire(self, high_priority: bool = False) -> Optional[Signal]:
        """Claim a server slot.

        Returns ``None`` if a slot was free (claimed immediately), or a
        :class:`Signal` the caller must yield on.  When the signal
        fires the slot is already claimed for the caller.
        ``high_priority`` waiters are granted before normal waiters
        (e.g. flash reads ahead of background program drains).
        """
        self._account()
        if self.busy < self.capacity:
            self.busy += 1
            return None
        signal = Signal(self.engine, f"{self.name}:grant")
        if high_priority:
            self._waiting.appendleft(signal)
        else:
            self._waiting.append(signal)
        return signal

    def release(self) -> None:
        """Free one server slot, handing it to the oldest waiter if any."""
        if self.busy <= 0:
            raise SimulationError(f"release() on idle server {self.name!r}")
        self._account()
        if self._waiting:
            # Hand the slot directly to the next waiter: busy stays constant.
            signal = self._waiting.popleft()
            signal.fire()
        else:
            self.busy -= 1

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiting)

    def utilization(self) -> float:
        """Time-averaged fraction of busy servers since construction."""
        self._account()
        elapsed = self._last_change
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.capacity)

    def __repr__(self) -> str:
        return (
            f"<Server {self.name or id(self)} busy={self.busy}/{self.capacity}"
            f" waiting={len(self._waiting)}>"
        )


class Store:
    """A bounded FIFO buffer with blocking put/get.

    ``put`` blocks (returns a signal to yield on) when the store is
    full; ``get`` blocks when it is empty.  ``None`` capacity means
    unbounded.
    """

    def __init__(self, engine: Engine, capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[tuple] = deque()  # (signal, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put.  Returns False if the store is full."""
        if self._getters:
            # Hand the item straight to the oldest getter.
            self._getters.popleft().fire(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def put(self, item: Any) -> Optional[Signal]:
        """Blocking put.  Returns a signal to yield on when full."""
        if self.try_put(item):
            return None
        signal = Signal(self.engine, f"{self.name}:put")
        self._putters.append((signal, item))
        return signal

    def try_get(self) -> tuple:
        """Non-blocking get.  Returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def get(self) -> "Signal | Any":
        """Blocking get.

        If an item is ready it is returned wrapped in :class:`Ready`;
        otherwise a signal is returned whose fire-value is the item::

            slot = store.get()
            if isinstance(slot, Ready):
                item = slot.item
            else:
                item = yield slot
        """
        ok, item = self.try_get()
        if ok:
            return Ready(item)
        signal = Signal(self.engine, f"{self.name}:get")
        self._getters.append(signal)
        return signal

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            signal, item = self._putters.popleft()
            self._items.append(item)
            signal.fire()

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {self.name or id(self)} {len(self._items)}/{cap}>"


class Ready:
    """Wrapper marking an immediately-available :meth:`Store.get` result."""

    __slots__ = ("item",)

    def __init__(self, item: Any) -> None:
        self.item = item

    def __repr__(self) -> str:
        return f"Ready({self.item!r})"
