"""Exception hierarchy for the AstriFlash reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A system configuration is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class CapacityError(ReproError):
    """A hardware structure (MSR, evict buffer, queue, ...) overflowed
    in a way the design forbids."""


class ProtocolError(ReproError):
    """A component interaction violated the modelled hardware protocol."""


class WorkloadError(ReproError):
    """A workload was asked to do something it cannot (unknown key,
    malformed transaction, exhausted trace, ...)."""
