"""Garbage collection for the flash device.

GC runs per plane when the FTL reports free-block pressure.  While a
plane erases/migrates, its server is occupied, so reads queued behind
GC observe the latency spike the paper discusses in Sec. VI-D.  The
collector records how many foreground requests arrived while a plane
was collecting — the paper's "blocked requests" metric (≈4 % at
256 GiB, <1 % at 1 TiB).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sim import spawn
from repro.stats import CounterSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flash.device import FlashDevice


class GarbageCollector:
    """Drives per-plane GC passes on the owning :class:`FlashDevice`."""

    def __init__(self, device: "FlashDevice") -> None:
        self.device = device
        self.stats = CounterSet("gc")
        self._active: List[bool] = [False] * device.ftl.num_planes
        # Measurement-window baselines (see start_measurement): until
        # the runner marks the warmup boundary both stay 0, so raw
        # device sims keep reporting whole-run fractions.
        self._window_requests = 0.0
        self._window_blocked = 0.0

    def plane_collecting(self, plane_index: int) -> bool:
        """True while a GC pass occupies ``plane_index``."""
        return self._active[plane_index]

    def maybe_collect(self, plane_index: int) -> None:
        """Kick off a GC pass if the plane is under free-block pressure."""
        if self._active[plane_index]:
            return
        if not self.device.ftl.gc_pressure(plane_index):
            return
        self._active[plane_index] = True
        spawn(
            self.device.engine,
            self._collect_process(plane_index),
            name=f"gc:plane{plane_index}",
        )

    def _collect_process(self, plane_index: int):
        device = self.device
        if device.config.gc_policy == "tiny-tail":
            yield from self._collect_tiny_tail(plane_index)
        else:
            yield from self._collect_blocking(plane_index)

    def _collect_blocking(self, plane_index: int):
        """Traditional GC: the plane is held for the whole pass, so
        reads queue behind migrations and the erase."""
        device = self.device
        plane = device.planes[plane_index]
        try:
            while device.ftl.gc_pressure(plane_index):
                grant = plane.acquire()
                if grant is not None:
                    yield grant
                migrated, erased = device.ftl.collect(plane_index)
                if migrated == 0 and erased == 0:
                    plane.release()
                    break
                busy = (
                    migrated
                    * (device.config.read_latency_ns + device.config.program_latency_ns)
                    + erased * device.config.erase_latency_ns
                )
                yield busy
                plane.release()
                self.stats.add("passes")
                self.stats.add("migrated_pages", migrated)
                self.stats.add("busy_ns", busy)
        finally:
            self._active[plane_index] = False

    def _collect_tiny_tail(self, plane_index: int):
        """Tiny-Tail-style GC (the paper's [80]): migrations proceed in
        page-sized slices and the plane is released between slices, so
        priority reads slip in and observe at most one slice of delay
        instead of a multi-millisecond pass."""
        device = self.device
        plane = device.planes[plane_index]
        slice_ns = (device.config.read_latency_ns
                    + device.config.program_latency_ns)
        try:
            while device.ftl.gc_pressure(plane_index):
                migrated, erased = device.ftl.collect(plane_index)
                if migrated == 0 and erased == 0:
                    break
                for _ in range(migrated):
                    grant = plane.acquire()
                    if grant is not None:
                        yield grant
                    yield slice_ns
                    plane.release()
                # Erase-suspend: the long block erase is performed in
                # suspendable windows so priority reads slip in.
                erase_slices = 8
                erase_slice_ns = (erased * device.config.erase_latency_ns
                                  / erase_slices)
                for _ in range(erase_slices):
                    grant = plane.acquire()
                    if grant is not None:
                        yield grant
                    yield erase_slice_ns
                    plane.release()
                self.stats.add("passes")
                self.stats.add("migrated_pages", migrated)
                self.stats.add(
                    "busy_ns",
                    migrated * slice_ns
                    + erased * device.config.erase_latency_ns,
                )
        finally:
            self._active[plane_index] = False

    def start_measurement(self) -> None:
        """Mark the warmup/measurement boundary.

        Snapshots the cumulative request counters so
        :meth:`blocked_fraction` reports the measurement window only —
        the same windowing fix the PR 1 ``miss_ratio`` change applied:
        warmup-era GC stalls (dataset builds, cache fills) must not
        dilute the steady-state blocked fraction.
        """
        stats = self.device.stats
        self._window_requests = stats.get("requests")
        self._window_blocked = stats.get("requests_blocked_by_gc")

    def blocked_fraction(self) -> float:
        """Fraction of foreground requests that arrived during GC,
        scoped to the measurement window once :meth:`start_measurement`
        has been called (whole-run before that)."""
        stats = self.device.stats
        requests = stats.get("requests") - self._window_requests
        blocked = stats.get("requests_blocked_by_gc") - self._window_blocked
        if requests <= 0:
            return 0.0
        return blocked / requests
