"""Page-mapping Flash Translation Layer.

A DFTL-style page-level mapping: every logical page maps to a physical
(plane, block, page) slot.  Writes are out-of-place — they invalidate
the old slot and allocate at the plane's write point — which is what
creates garbage-collection work.  Wear levelling is greedy-with-wear:
GC victims are chosen by fewest valid pages, ties broken by lowest
erase count so erases spread across blocks.

Physical layout bookkeeping is intentionally explicit (per-block valid
bitmaps, free lists, erase counters) so GC and wear statistics fall out
of real state rather than synthetic probabilities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.stats import CounterSet

# A physical slot is (block_index, page_offset) within one plane.
PhysicalSlot = Tuple[int, int]


class Block:
    """One erase block: a run of physical pages with a valid bitmap."""

    __slots__ = ("index", "pages_per_block", "valid", "write_offset", "erase_count")

    def __init__(self, index: int, pages_per_block: int) -> None:
        self.index = index
        self.pages_per_block = pages_per_block
        self.valid: List[Optional[int]] = [None] * pages_per_block
        self.write_offset = 0
        self.erase_count = 0

    @property
    def is_full(self) -> bool:
        return self.write_offset >= self.pages_per_block

    @property
    def valid_count(self) -> int:
        return sum(1 for page in self.valid if page is not None)

    def erase(self) -> None:
        if any(page is not None for page in self.valid):
            raise ProtocolError(f"erasing block {self.index} with valid pages")
        self.valid = [None] * self.pages_per_block
        self.write_offset = 0
        self.erase_count += 1


class PlaneState:
    """FTL state for one plane: blocks, free list and a write point."""

    def __init__(self, plane_index: int, num_blocks: int, pages_per_block: int):
        if num_blocks < 2:
            raise ConfigurationError("each plane needs >= 2 blocks (one spare for GC)")
        self.plane_index = plane_index
        self.blocks = [Block(i, pages_per_block) for i in range(num_blocks)]
        self.free_blocks: List[int] = list(range(1, num_blocks))
        self.open_block: int = 0
        self.pages_per_block = pages_per_block

    @property
    def free_page_count(self) -> int:
        open_blk = self.blocks[self.open_block]
        free_in_open = open_blk.pages_per_block - open_blk.write_offset
        return free_in_open + len(self.free_blocks) * self.pages_per_block

    def allocate(self, logical_page: int) -> PhysicalSlot:
        """Claim the next physical page at the write point."""
        block = self.blocks[self.open_block]
        if block.is_full:
            if not self.free_blocks:
                raise CapacityError(
                    f"plane {self.plane_index} out of free blocks; GC required"
                )
            self.open_block = self.free_blocks.pop(0)
            block = self.blocks[self.open_block]
            if block.write_offset != 0:
                raise ProtocolError("free-list block was not erased")
        offset = block.write_offset
        block.valid[offset] = logical_page
        block.write_offset += 1
        return (block.index, offset)

    def invalidate(self, slot: PhysicalSlot) -> None:
        block_index, offset = slot
        block = self.blocks[block_index]
        if block.valid[offset] is None:
            raise ProtocolError(f"double invalidate of {slot} on plane {self.plane_index}")
        block.valid[offset] = None

    def gc_victim(self) -> Optional[int]:
        """Greedy victim: fullest-garbage block, wear-aware tie break.

        Only closed (full) blocks other than the open block qualify.
        Returns None when no block has any garbage to reclaim.
        """
        best: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for block in self.blocks:
            if block.index == self.open_block or not block.is_full:
                continue
            valid = block.valid_count
            if valid == block.pages_per_block:
                continue  # nothing reclaimable
            key = (valid, block.erase_count)
            if best_key is None or key < best_key:
                best, best_key = block.index, key
        return best


class PageMappingFtl:
    """Device-wide page-mapping FTL striped across planes."""

    def __init__(self, num_logical_pages: int, num_planes: int,
                 pages_per_block: int, overprovisioning: float) -> None:
        if num_logical_pages < 1:
            raise ConfigurationError("FTL needs at least one logical page")
        if not 0.0 <= overprovisioning < 1.0:
            raise ConfigurationError("overprovisioning fraction out of range")
        self.num_logical_pages = num_logical_pages
        self.num_planes = num_planes
        self.pages_per_block = pages_per_block

        physical_pages = int(num_logical_pages * (1.0 + overprovisioning))
        per_plane_pages = -(-physical_pages // num_planes)  # ceil
        # At least 4 blocks per plane: one open, one spare reserved for
        # GC migrations, and room for the pressure threshold below.
        blocks_per_plane = max(4, -(-per_plane_pages // pages_per_block))
        self.planes = [
            PlaneState(i, blocks_per_plane, pages_per_block)
            for i in range(num_planes)
        ]
        # logical page -> (plane, block, offset); None while never written.
        self._mapping: Dict[int, Tuple[int, PhysicalSlot]] = {}
        self.stats = CounterSet("ftl")

    # -- address mapping ----------------------------------------------------

    def plane_of(self, logical_page: int) -> int:
        """Plane serving ``logical_page``.

        Written pages live where the FTL placed them; never-written
        pages (the pristine dataset) are striped round-robin, which is
        how the initial dataset layout spreads load across channels.
        """
        self._check_page(logical_page)
        entry = self._mapping.get(logical_page)
        if entry is not None:
            return entry[0]
        return logical_page % self.num_planes

    def plane_of_many(self, logical_pages) -> List[int]:
        """Plane routing for a whole batch, page-for-page equal to
        :meth:`plane_of`.

        The round-robin stripe for never-written pages is one
        vectorized modulo over the batch; mapped pages (a minority on
        the read path — only pages the FTL has relocated) override
        their stripe slot from the mapping table.
        """
        block = np.asarray(logical_pages, dtype=np.int64)
        if block.size:
            self._check_page(int(block.min()))
            self._check_page(int(block.max()))
        planes = (block % self.num_planes).tolist()
        mapping = self._mapping
        if mapping:
            get = mapping.get
            for position, page in enumerate(logical_pages):
                entry = get(page)
                if entry is not None:
                    planes[position] = entry[0]
        return planes

    def is_mapped(self, logical_page: int) -> bool:
        return logical_page in self._mapping

    def _check_page(self, logical_page: int) -> None:
        if not 0 <= logical_page < self.num_logical_pages:
            raise ProtocolError(
                f"logical page {logical_page} out of range "
                f"[0, {self.num_logical_pages})"
            )

    # -- write path -----------------------------------------------------------

    def write(self, logical_page: int) -> int:
        """Record an out-of-place write; returns the serving plane index.

        The previous slot (if any) is invalidated, creating GC work.
        """
        self._check_page(logical_page)
        old = self._mapping.get(logical_page)
        plane_index = old[0] if old is not None else logical_page % self.num_planes
        plane = self.planes[plane_index]
        if old is not None:
            plane.invalidate(old[1])
        slot = plane.allocate(logical_page)
        self._mapping[logical_page] = (plane_index, slot)
        self.stats.add("writes")
        return plane_index

    # -- garbage collection ---------------------------------------------------

    def gc_pressure(self, plane_index: int) -> bool:
        """True when the plane is low enough on free blocks to need GC.

        The threshold keeps one free block in reserve so a GC pass
        always has room to migrate a victim's valid pages.
        """
        plane = self.planes[plane_index]
        return len(plane.free_blocks) < 2

    def has_reclaimable(self, plane_index: int) -> bool:
        """True when a GC pass on the plane could free space.

        Distinguishes transient pressure (garbage exists, GC just has
        to catch up — callers should keep waiting) from genuine
        capacity exhaustion (every closed block fully valid — waiting
        is hopeless).
        """
        return self.planes[plane_index].gc_victim() is not None

    def collect(self, plane_index: int) -> Tuple[int, int]:
        """Run one GC pass on a plane.

        Migrates the victim block's valid pages to the write point and
        erases it.  Returns ``(migrated_pages, erased_blocks)`` so the
        device model can charge the right latencies.
        """
        plane = self.planes[plane_index]
        victim_index = plane.gc_victim()
        if victim_index is None:
            return (0, 0)
        victim = plane.blocks[victim_index]
        migrated = 0
        for offset, logical_page in enumerate(victim.valid):
            if logical_page is None:
                continue
            victim.valid[offset] = None
            slot = plane.allocate(logical_page)
            self._mapping[logical_page] = (plane_index, slot)
            migrated += 1
        victim.erase()
        plane.free_blocks.append(victim_index)
        self.stats.add("gc_passes")
        self.stats.add("gc_migrated_pages", migrated)
        self.stats.add("gc_erases")
        return (migrated, 1)

    # -- wear statistics --------------------------------------------------------

    def erase_count_of(self, logical_page: int) -> int:
        """Erase count of the block currently holding ``logical_page``.

        Never-written pages live in the pristine striped layout, which
        by definition has no erase history, so they report 0.  The
        fault model uses this to couple effective RBER to wear.
        """
        self._check_page(logical_page)
        entry = self._mapping.get(logical_page)
        if entry is None:
            return 0
        plane_index, (block_index, _offset) = entry
        return self.planes[plane_index].blocks[block_index].erase_count

    def erase_counts(self) -> List[int]:
        """Erase counts of every block on the device (wear profile)."""
        return [
            block.erase_count
            for plane in self.planes
            for block in plane.blocks
        ]

    def wear_imbalance(self) -> float:
        """max/mean erase count; 1.0 is perfectly level, 0.0 if no erases."""
        counts = self.erase_counts()
        total = sum(counts)
        if total == 0:
            return 0.0
        mean = total / len(counts)
        return max(counts) / mean
