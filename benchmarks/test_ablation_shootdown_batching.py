"""Ablation: LATR-style batched TLB shootdowns under OS-Swap.

Sec. II-C notes that batching proposals ([1], [46]) reduce shootdown
overhead but the total still grows with core count.  This bench
measures OS-Swap throughput with and without batching and checks that
batching helps yet still leaves OS-Swap far from AstriFlash.
"""

import dataclasses

from conftest import run_once

from repro.harness.common import build_config, resolve_scale
from repro.core import Runner
from repro.workloads import make_workload


def sweep(scale_name):
    scale = resolve_scale(scale_name)
    outcomes = {}
    variants = {
        "os-swap": ("os-swap", False),
        "os-swap+latr": ("os-swap", True),
        "astriflash": ("astriflash", False),
    }
    for name, (config_name, batched) in variants.items():
        config = build_config(config_name, scale)
        config.os = dataclasses.replace(
            config.os, batched_shootdowns=batched
        )
        workload = make_workload("arrayswap", scale.dataset_pages, seed=42,
                                 **scale.workload_kwargs())
        result = Runner(config, workload).run()
        outcomes[name] = result.throughput_jobs_per_s
    return outcomes


def test_ablation_shootdown_batching(benchmark, harness_scale):
    outcomes = run_once(benchmark, sweep, harness_scale)
    print("\nshootdown batching sweep (jobs/s):")
    for name, tput in outcomes.items():
        print(f"  {name:14s} -> {tput:10,.0f}")

    # Batching helps OS-Swap (or at worst is neutral)...
    assert outcomes["os-swap+latr"] >= 0.95 * outcomes["os-swap"]
    # ...but hardware-managed caching still wins decisively, which is
    # the paper's Sec. II-C argument against incremental paging fixes.
    assert outcomes["astriflash"] > 1.2 * outcomes["os-swap+latr"]
