"""Four-level radix page table.

Used two ways:

* functionally — translating virtual page numbers and enumerating the
  table pages a hardware walk touches;
* for placement — every table node lives on a page whose number comes
  from an allocator callback, so the system can put page tables in the
  flat DRAM partition (AstriFlash) or in flash-backed cached space
  (AstriFlash-noDP), which is exactly the Sec. IV-A design point.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, WorkloadError

PageAllocator = Callable[[], int]


class _Node:
    """One radix-tree node occupying one physical page."""

    __slots__ = ("page", "children")

    def __init__(self, page: int) -> None:
        self.page = page
        self.children: Dict[int, object] = {}


class PageTable:
    """A radix page table with configurable depth and fan-out bits."""

    def __init__(self, node_page_allocator: PageAllocator,
                 levels: int = 4, bits_per_level: int = 9) -> None:
        if levels < 1:
            raise ConfigurationError("page table needs at least one level")
        if bits_per_level < 1:
            raise ConfigurationError("bits per level must be positive")
        self.levels = levels
        self.bits_per_level = bits_per_level
        self._allocate_page = node_page_allocator
        self._root = _Node(self._allocate_page())
        self._mappings = 0

    def _indices(self, vpn: int) -> List[int]:
        mask = (1 << self.bits_per_level) - 1
        indices = []
        for level in range(self.levels):
            shift = (self.levels - 1 - level) * self.bits_per_level
            indices.append((vpn >> shift) & mask)
        return indices

    def map(self, vpn: int, ppn: int) -> None:
        """Install a translation, allocating interior nodes as needed."""
        node = self._root
        indices = self._indices(vpn)
        for index in indices[:-1]:
            child = node.children.get(index)
            if child is None:
                child = _Node(self._allocate_page())
                node.children[index] = child
            elif not isinstance(child, _Node):
                raise WorkloadError(f"vpn {vpn} collides with an existing leaf")
            node = child
        node.children[indices[-1]] = ppn
        self._mappings += 1

    def translate(self, vpn: int) -> Optional[int]:
        """The mapped PPN, or None when unmapped."""
        node = self._root
        indices = self._indices(vpn)
        for index in indices[:-1]:
            child = node.children.get(index)
            if not isinstance(child, _Node):
                return None
            node = child
        leaf = node.children.get(indices[-1])
        return leaf if isinstance(leaf, int) else None

    def unmap(self, vpn: int) -> int:
        """Remove a translation; returns the old PPN."""
        node = self._root
        indices = self._indices(vpn)
        for index in indices[:-1]:
            child = node.children.get(index)
            if not isinstance(child, _Node):
                raise WorkloadError(f"vpn {vpn} is not mapped")
            node = child
        leaf = node.children.pop(indices[-1], None)
        if not isinstance(leaf, int):
            raise WorkloadError(f"vpn {vpn} is not mapped")
        self._mappings -= 1
        return leaf

    def walk_path(self, vpn: int) -> List[int]:
        """Pages a hardware walker reads for this translation, root
        first.  Shorter than ``levels`` if the walk aborts early."""
        pages = [self._root.page]
        node = self._root
        for index in self._indices(vpn)[:-1]:
            child = node.children.get(index)
            if not isinstance(child, _Node):
                break
            node = child
            pages.append(node.page)
        return pages

    @property
    def mapping_count(self) -> int:
        return self._mappings

    def node_count(self) -> int:
        """Total radix nodes (page-table memory footprint in pages)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            for child in node.children.values():
                if isinstance(child, _Node):
                    stack.append(child)
        return count
