"""Unit tests for the OS demand-paging substrate."""

import pytest

from repro.config import FlashConfig, OsConfig
from repro.errors import ConfigurationError
from repro.flash import FlashDevice
from repro.osmodel import DemandPager, ResidentSetManager
from repro.sim import Engine, spawn
from repro.units import US


class TestResidentSetManager:
    def test_fault_then_hit(self):
        rsm = ResidentSetManager(4)
        assert not rsm.lookup(1)
        rsm.insert(1)
        assert rsm.lookup(1)
        assert rsm.fault_ratio() == pytest.approx(0.5)

    def test_lru_eviction(self):
        rsm = ResidentSetManager(2)
        rsm.insert(1)
        rsm.insert(2)
        rsm.lookup(1)
        victim = rsm.insert(3)
        assert victim == (2, False)

    def test_dirty_tracking(self):
        rsm = ResidentSetManager(1)
        rsm.insert(1)
        rsm.lookup(1, is_write=True)
        victim = rsm.insert(2)
        assert victim == (1, True)

    def test_insert_resident_page_is_noop_eviction(self):
        rsm = ResidentSetManager(2)
        rsm.insert(1)
        assert rsm.insert(1) is None
        assert len(rsm) == 1

    def test_warm(self):
        rsm = ResidentSetManager(8)
        rsm.warm(range(5))
        assert len(rsm) == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ResidentSetManager(0)


def make_pager(capacity=8, num_cores=4, dataset_pages=256):
    engine = Engine()
    flash = FlashDevice(
        engine,
        FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                    pages_per_block=16, overprovisioning=0.5),
        dataset_pages,
    )
    resident = ResidentSetManager(capacity)
    pager = DemandPager(engine, OsConfig(), resident, flash, num_cores)
    return engine, pager, flash


class TestDemandPager:
    def test_fault_brings_page_in(self):
        engine, pager, flash = make_pager()
        durations = []

        def faulter():
            start = engine.now
            yield from pager.fault(10)
            durations.append(engine.now - start)

        spawn(engine, faulter())
        engine.run()
        assert pager.resident.is_resident(10)
        # Kernel stack (~5 us) + flash read (~50 us).
        assert durations[0] >= 55.0 * US
        assert flash.stats["reads"] == 1

    def test_concurrent_faults_coalesce(self):
        engine, pager, flash = make_pager()
        done = []

        def faulter(tag):
            yield from pager.fault(20)
            done.append(tag)

        for tag in range(3):
            spawn(engine, faulter(tag))
        engine.run()
        assert sorted(done) == [0, 1, 2]
        assert flash.stats["reads"] == 1
        assert pager.stats["coalesced_faults"] == 2

    def test_eviction_costs_a_shootdown(self):
        engine, pager, flash = make_pager(capacity=1)

        def faulter():
            yield from pager.fault(1)
            yield from pager.fault(2)  # evicts page 1

        spawn(engine, faulter())
        engine.run()
        assert pager.stats["shootdowns"] == 1
        assert not pager.resident.is_resident(1)
        assert pager.resident.is_resident(2)

    def test_dirty_eviction_writes_back(self):
        engine, pager, flash = make_pager(capacity=1)

        def faulter():
            yield from pager.fault(1, is_write=True)
            yield from pager.fault(2)
            yield 2000.0 * US  # let the async writeback finish

        spawn(engine, faulter())
        engine.run()
        assert pager.stats["writebacks"] == 1
        assert flash.stats["writes"] == 1

    def test_page_table_lock_serializes_installs(self):
        engine, pager, flash = make_pager(capacity=1, num_cores=16)
        finish_times = []

        def faulter(page):
            yield from pager.fault(page)
            finish_times.append(engine.now)

        # Two distinct faults, both evicting: installs must serialize on
        # the kernel lock + shootdown.
        spawn(engine, faulter(1))
        spawn(engine, faulter(2))
        spawn(engine, faulter(3))
        engine.run()
        assert pager.stats["lock_waits"] >= 1 or len(set(finish_times)) == 3

    def test_average_fault_latency_reported(self):
        engine, pager, flash = make_pager()

        def faulter():
            yield from pager.fault(5)

        spawn(engine, faulter())
        engine.run()
        assert pager.average_fault_latency_ns() >= 50.0 * US

    def test_access_fast_path(self):
        engine, pager, flash = make_pager()
        pager.resident.insert(7)
        assert pager.access(7)
        assert not pager.access(8)
