"""Layered Masstree: the trie-of-B+-trees structure for long keys.

Masstree (Mao et al., EuroSys'12) indexes variable-length byte-string
keys as a *trie with a fanout of 2^64*: each layer is a B+ tree over
one 8-byte key slice; keys sharing an 8-byte prefix descend into a
sub-tree for the next slice.  The flat :class:`~repro.workloads.
masstree.Masstree` used by the evaluation workloads covers the paper's
short-integer-key usage; this module provides the full layered
structure so string-keyed stores are first-class too.

Page accounting composes: a lookup's page path is the concatenation of
the per-layer B+-tree paths, which is exactly what a hardware page
trace would show.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import WorkloadError
from repro.workloads.masstree import Masstree
from repro.workloads.pagedheap import SpreadHeap

SLICE_BYTES = 8

# Layer key marking "the key ends exactly at the previous slice".
# Real slices carry a length tag of 1..8, so 0 never collides.
TERMINAL_SENTINEL = 0


def key_slices(key: bytes) -> List[int]:
    """Split a byte-string key into 8-byte big-endian integer slices.

    The final slice is length-tagged (shifted by its byte count) so
    prefixes order before their extensions, mirroring Masstree's
    keylen-in-permuter trick.
    """
    if not isinstance(key, (bytes, bytearray)):
        raise WorkloadError("layered Masstree keys are byte strings")
    if len(key) == 0:
        raise WorkloadError("empty key")
    slices = []
    for offset in range(0, len(key), SLICE_BYTES):
        chunk = bytes(key[offset:offset + SLICE_BYTES])
        value = int.from_bytes(chunk.ljust(SLICE_BYTES, b"\0"), "big")
        # Tag with the chunk length so "ab" != "ab\0" and prefixes sort
        # before extensions within the layer.
        slices.append((value << 4) | len(chunk))
    return slices


class _SubtreePointer:
    """A layer-N value that points at the layer-N+1 tree."""

    __slots__ = ("tree",)

    def __init__(self, tree: "LayeredMasstree") -> None:
        self.tree = tree


class LayeredMasstree:
    """A trie of B+ trees over 8-byte key slices."""

    def __init__(self, index_heap: SpreadHeap,
                 leaf_capacity: int = 16, interior_fanout: int = 8) -> None:
        self._heap = index_heap
        self._leaf_capacity = leaf_capacity
        self._interior_fanout = interior_fanout
        self._layer = Masstree(index_heap, leaf_capacity, interior_fanout)
        # slice -> either a value page (int) or a _SubtreePointer; the
        # Masstree stores an opaque int (an id into this table) so the
        # flat tree stays unmodified.
        self._values: List[Union[int, _SubtreePointer]] = []
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def depth(self) -> int:
        """Number of layers along the deepest path."""
        deepest = 1
        for entry in self._values:
            if isinstance(entry, _SubtreePointer):
                deepest = max(deepest, 1 + entry.tree.depth())
        return deepest

    # -- operations --------------------------------------------------------------

    def insert(self, key: bytes, value_page: int) -> List[int]:
        """Insert/update a byte-string key; returns touched pages."""
        return self._insert_slices(key_slices(key), value_page)

    def _insert_slices(self, slices: List[int], value_page: int
                       ) -> List[int]:
        head, rest = slices[0], slices[1:]
        existing_id, path = self._layer.get(head)
        if existing_id is None:
            if not rest:
                self._values.append(value_page)
                self._size += 1
                return self._layer.insert(head, len(self._values) - 1)
            subtree = LayeredMasstree(self._heap, self._leaf_capacity,
                                      self._interior_fanout)
            self._values.append(_SubtreePointer(subtree))
            pages = self._layer.insert(head, len(self._values) - 1)
            pages += subtree._insert_slices(rest, value_page)
            self._size += 1
            return pages

        entry = self._values[existing_id]
        if isinstance(entry, _SubtreePointer):
            pages = list(path)
            before = entry.tree.size
            # A key ending exactly here is stored under the terminal
            # sentinel in the sub-layer (Masstree's keylen trick).
            next_slices = rest if rest else [TERMINAL_SENTINEL]
            pages += entry.tree._insert_slices(next_slices, value_page)
            self._size += entry.tree.size - before
            return pages
        if not rest:
            # Update in place.
            self._values[existing_id] = value_page
            return list(path)
        # An existing key terminates at this full-8-byte slice while the
        # new key continues past it: split the entry into a sub-layer
        # holding both the terminal value and the extension.
        subtree = LayeredMasstree(self._heap, self._leaf_capacity,
                                  self._interior_fanout)
        subtree._insert_slices([TERMINAL_SENTINEL], entry)
        subtree._insert_slices(rest, value_page)
        self._values[existing_id] = _SubtreePointer(subtree)
        self._size += 1
        return list(path)

    def get(self, key: bytes) -> Tuple[Optional[int], List[int]]:
        """(value page or None, page path across all layers)."""
        slices = key_slices(key)
        tree: LayeredMasstree = self
        pages: List[int] = []
        for index, piece in enumerate(slices):
            value_id, path = tree._layer.get(piece)
            pages += path
            if value_id is None:
                return None, pages
            entry = tree._values[value_id]
            if isinstance(entry, _SubtreePointer):
                if index == len(slices) - 1:
                    # The key ends exactly here: its value lives under
                    # the terminal sentinel of the sub-layer.
                    value_id, path = entry.tree._layer.get(TERMINAL_SENTINEL)
                    pages += path
                    if value_id is None:
                        return None, pages
                    terminal = entry.tree._values[value_id]
                    if isinstance(terminal, _SubtreePointer):
                        return None, pages
                    return terminal, pages
                tree = entry.tree
                continue
            if index == len(slices) - 1:
                return entry, pages
            return None, pages  # key continues but the trie does not
        return None, pages

    def check_invariants(self) -> None:
        self._layer.check_invariants()
        for entry in self._values:
            if isinstance(entry, _SubtreePointer):
                entry.tree.check_invariants()
