"""Unified metrics registry: one labeled namespace for every stat.

The simulator's observability surface grew organically — counters in
:class:`repro.stats.CounterSet` bags, latency percentiles as
``SimulationResult`` fields, process-wide vector-backend telemetry in
``repro.sim.vector.stats()``, GC/wear figures living on the machine,
and five disjoint ``BENCH_*`` JSON schemas.  This module folds all of
them into a single flat namespace:

    ``subsystem/name{label=value,...}`` -> float

Labels are the cross-cutting dimensions every comparison tool needs
(``preset``, ``workload``, ``backend``, ``core``, plus sweep axes like
``rber``/``qps``), rendered into the key in sorted order so the same
metric always serializes to the same string.  The rendered keys are
what the run ledger stores and ``repro diff``/``repro regress``
compare — plain ``Dict[str, float]`` on the wire, structured
:class:`Metric` objects in memory.

:func:`bench_view` is the adapter layer: it recognizes any of the
repo's schema-stamped bench payloads (kernel, sweep, chaos, loadgen,
writes, profile) and projects it onto the namespace, together with per-metric
*comparison policies* (exact, floor, relative, informational) that
drive the regression verdicts in :mod:`repro.metrics.diff`.
"""

from __future__ import annotations

import hashlib
import math
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.jsonutil import dumps as json_dumps

#: The canonical label dimensions (sweep adapters may add axis labels
#: such as ``rber`` or ``qps`` on top).
METRIC_LABELS = ("preset", "workload", "backend", "core")

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(\{(?P<labels>[^}]*)\})?$")


def format_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Render ``subsystem/name`` + labels as a canonical string key."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`format_key` (tolerant: bad labels -> empty)."""
    match = _KEY_RE.match(key)
    if match is None:
        return key, {}
    name = match.group("name")
    raw = match.group("labels")
    labels: Dict[str, str] = {}
    if raw:
        for part in raw.split(","):
            if "=" in part:
                label, _, value = part.partition("=")
                labels[label] = value
    return name, labels


@dataclass(frozen=True)
class Metric:
    """One named, labeled sample of the registry namespace."""

    name: str                                  # "subsystem/name"
    value: float
    labels: Tuple[Tuple[str, str], ...] = ()   # sorted (key, value) pairs

    def label(self, key: str, default: str = "") -> str:
        for name, value in self.labels:
            if name == key:
                return value
        return default

    @property
    def subsystem(self) -> str:
        return self.name.split("/", 1)[0]

    def key(self) -> str:
        return format_key(self.name, dict(self.labels))


class MetricSet:
    """An insertion-ordered bag of :class:`Metric` samples.

    ``add`` keeps the *last* value written for a key (collection order
    is deterministic, so re-adding is an explicit overwrite, matching
    counter-restore semantics elsewhere in the repo).
    """

    def __init__(self, metrics: Iterable[Metric] = ()) -> None:
        self._metrics: Dict[str, Metric] = {}
        for metric in metrics:
            self._metrics[metric.key()] = metric

    def add(self, name: str, value: float, **labels: str) -> None:
        if value is None:
            return  # absent samples stay absent (e.g. censored p99)
        value = float(value)
        if not math.isfinite(value):
            # A NaN/inf sample would serialize as null in the ledger
            # and read back as a phantom added/removed key in diffs.
            return
        clean = {key: str(val) for key, val in labels.items()
                 if val not in (None, "")}
        metric = Metric(name=name, value=value,
                        labels=tuple(sorted(clean.items())))
        self._metrics[metric.key()] = metric

    def merge(self, other: "MetricSet") -> None:
        for metric in other:
            self._metrics[metric.key()] = metric

    def get(self, key: str) -> Optional[float]:
        metric = self._metrics.get(key)
        return metric.value if metric is not None else None

    def filter(self, prefix: str) -> "MetricSet":
        """Metrics whose name starts with ``prefix`` (e.g. "flash/")."""
        return MetricSet(m for m in self if m.name.startswith(prefix))

    def as_dict(self) -> Dict[str, float]:
        """The wire form: rendered key -> value, insertion-ordered."""
        return {key: metric.value for key, metric in self._metrics.items()}

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def __repr__(self) -> str:
        return f"<MetricSet {len(self)} metrics>"


# -------------------------------------------------- simulation adapters --

#: SimulationResult fields that depend on the wall clock or warm-state
#: provenance; they are ledger *record* fields, never metrics.
RESULT_WALL_FIELDS = (
    "events_per_second", "wall_seconds", "warm_wall_seconds", "warm_source",
)


def metrics_from_result(result, backend: str = "") -> "MetricSet":
    """Project one ``SimulationResult`` onto the registry namespace.

    Scalar result fields land under ``runner/``; the counters dict is
    split on its dotted prefixes (``engine.compactions`` ->
    ``engine/compactions``).  Wall-clock fields are excluded — they
    belong on the :class:`~repro.metrics.ledger.RunRecord` itself, so
    the metrics mapping of two identical-seed runs is bit-identical.
    """
    labels = {"preset": result.config_name,
              "workload": result.workload_name}
    if backend:
        labels["backend"] = backend
    metrics = MetricSet()
    for name, value in result.__dict__.items():
        if name in RESULT_WALL_FIELDS or name in ("config_name",
                                                  "workload_name",
                                                  "counters"):
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metrics.add(f"runner/{name}", value, **labels)
    for key, value in result.counters.items():
        subsystem, _, stat = key.partition(".")
        if not stat:
            subsystem, stat = "runner", key
        metrics.add(f"{subsystem}/{stat}", value, **labels)
    return metrics


def machine_metrics(machine, **labels: str) -> "MetricSet":
    """GC and wear figures that live on the machine, not the result.

    These stay out of ``SimulationResult.counters`` deliberately (the
    golden determinism pin compares that dict exactly); the registry is
    where they become visible without perturbing the contract.
    """
    metrics = MetricSet()
    flash = getattr(machine, "flash", None)
    if flash is None:
        return metrics
    metrics.add("gc/blocked_fraction", flash.gc.blocked_fraction(), **labels)
    for key, value in flash.gc.stats.as_dict().items():
        metrics.add(f"gc/{key}", value, **labels)
    counts = flash.ftl.erase_counts()
    if counts:
        metrics.add("flash/erase_count_max", float(max(counts)), **labels)
        metrics.add("flash/erase_count_mean",
                    sum(counts) / len(counts), **labels)
    metrics.add("flash/wear_imbalance", flash.ftl.wear_imbalance(), **labels)
    # Write-path figures (DESIGN.md §4j), gated exactly like the
    # counters they mirror: invisible unless the preset enabled writes.
    writes_cfg = getattr(flash, "writes", None)
    if writes_cfg is not None:
        window = flash.gc.write_window()
        metrics.add("writes/wa_factor", window["wa_factor"], **labels)
        metrics.add("writes/host_writes", window["host_writes"], **labels)
        metrics.add("writes/device_writes", window["device_writes"],
                    **labels)
        metrics.add("writes/flash_writes_per_app_write",
                    window["flash_writes_per_app_write"], **labels)
        metrics.add("writes/admission_rejects",
                    window["admission_rejects"],
                    policy=writes_cfg.admission_policy, **labels)
        lifetime = window.get("lifetime_years")
        if lifetime is not None:
            metrics.add("writes/lifetime_years", lifetime, **labels)
    return metrics


def vector_metrics(**labels: str) -> "MetricSet":
    """The process-wide vector-backend telemetry as ``vector/*``."""
    from repro.sim import vector

    metrics = MetricSet()
    for key, value in vector.stats().items():
        metrics.add(f"vector/{key}", float(value), **labels)
    for reason, count in sorted(vector.fallback_reasons().items()):
        metrics.add("vector/fallbacks", float(count),
                    reason=reason.replace(",", ";"), **labels)
    return metrics


def metrics_from_experiments(results) -> Tuple[Dict[str, float], str]:
    """Summarize ``repro report`` output (ExperimentResult list) into
    the namespace, plus a deterministic fingerprint over every table.

    Per experiment, each numeric column contributes its mean under
    ``report/<experiment>/<column>`` and the row count under
    ``report/<experiment>/rows`` — coarse on purpose: the fingerprint
    pins the exact tables, the metrics give ``repro diff`` humane
    per-figure deltas.
    """
    metrics = MetricSet()
    canonical: List[Dict[str, object]] = []
    for result in results:
        canonical.append({"experiment": result.experiment,
                          "columns": result.columns,
                          "rows": result.rows})
        metrics.add(f"report/{result.experiment}/rows",
                    float(len(result.rows)))
        for index, column in enumerate(result.columns):
            values = [row[index] for row in result.rows
                      if isinstance(row[index], (int, float))
                      and not isinstance(row[index], bool)]
            if values:
                metrics.add(f"report/{result.experiment}/{column}",
                            sum(values) / len(values))
    fingerprint = hashlib.sha256(
        json_dumps(canonical, indent=None).encode()
    ).hexdigest()[:16]
    return metrics.as_dict(), fingerprint


# ------------------------------------------------------ bench adapters --

#: Comparison-policy modes understood by repro.metrics.diff:
#: ``exact`` (any change is a regression), ``floor`` (current must not
#: drop below baseline), ``relative`` (directional, thresholded) and
#: ``info`` (recorded, never gated — wall-clock-ish figures).
POLICY_MODES = ("exact", "floor", "relative", "info")


@dataclass
class BenchView:
    """A bench payload projected onto the metrics namespace."""

    verb: str
    metrics: Dict[str, float] = field(default_factory=dict)
    policies: Dict[str, Dict[str, object]] = field(default_factory=dict)
    fingerprint: str = ""


def _cells_fingerprint(payload: Mapping, key: str = "cells") -> str:
    return hashlib.sha256(
        json_dumps(payload.get(key, []), indent=None).encode()
    ).hexdigest()[:16]


def _kernel_view(payload: Mapping) -> BenchView:
    view = BenchView(verb="bench-kernel")
    if payload.get("bit_identical") is not None:
        view.metrics["kernel/bit_identical"] = \
            1.0 if payload["bit_identical"] else 0.0
        view.policies["kernel/bit_identical"] = {"mode": "exact"}
    if payload.get("speedup") is not None:
        view.metrics["kernel/speedup"] = float(payload["speedup"])
        view.policies["kernel/speedup"] = {"mode": "floor"}
    for entry in payload.get("entries", ()):
        backend = entry.get("backend", "")
        for stat, mode in (("events_executed", "exact"),
                           ("events_per_second", "info"),
                           ("wall_seconds", "info")):
            value = entry.get(stat)
            if value is None:
                continue
            key = format_key(f"kernel/{stat}", {"backend": backend})
            view.metrics[key] = float(value)
            view.policies[key] = {"mode": mode}
        for stat, value in (entry.get("vector_stats") or {}).items():
            key = format_key(f"vector/{stat}", {"backend": backend})
            view.metrics[key] = float(value)
            view.policies[key] = {"mode": "info"}
        if backend == "scalar" and entry.get("state_fingerprint"):
            view.fingerprint = entry["state_fingerprint"]
    # Schema v3: per-shape cells.  Bit-identity gates exactly; the
    # per-shape speedup is a floor the baseline hand-pins (3x fused,
    # 2x open-loop/multi-core).
    for shape in payload.get("shapes", ()):
        labels = {"shape": shape.get("shape", "")}
        if shape.get("bit_identical") is not None:
            key = format_key("kernel/bit_identical", labels)
            view.metrics[key] = 1.0 if shape["bit_identical"] else 0.0
            view.policies[key] = {"mode": "exact"}
        if shape.get("speedup") is not None:
            key = format_key("kernel/speedup", labels)
            view.metrics[key] = float(shape["speedup"])
            view.policies[key] = {"mode": "floor"}
        for entry in shape.get("entries", ()):
            entry_labels = dict(labels, backend=entry.get("backend", ""))
            for stat, mode in (("events_executed", "exact"),
                               ("events_per_second", "info"),
                               ("wall_seconds", "info")):
                value = entry.get(stat)
                if value is None:
                    continue
                key = format_key(f"kernel/{stat}", entry_labels)
                view.metrics[key] = float(value)
                view.policies[key] = {"mode": mode}
    if not view.fingerprint:
        for entry in payload.get("entries", ()):
            if entry.get("state_fingerprint"):
                view.fingerprint = entry["state_fingerprint"]
                break
    return view


def _chaos_view(payload: Mapping) -> BenchView:
    view = BenchView(verb="chaos",
                     fingerprint=_cells_fingerprint(payload))
    view.metrics["chaos/monotonic_p99"] = \
        1.0 if payload.get("monotonic_p99") else 0.0
    view.policies["chaos/monotonic_p99"] = {"mode": "exact"}
    for cell in payload.get("cells", ()):
        labels = {"preset": cell.get("preset", ""),
                  "rber": format(cell.get("rber", 0.0), "g")}
        failed_key = format_key("chaos/failed", labels)
        view.metrics[failed_key] = 1.0 if cell.get("failed") else 0.0
        view.policies[failed_key] = {"mode": "exact"}
        if cell.get("failed"):
            continue
        for stat in ("service_p99_ns", "service_mean_ns",
                     "throughput_jobs_per_s"):
            if cell.get(stat) is not None:
                view.metrics[format_key(f"chaos/{stat}", labels)] = \
                    float(cell[stat])
        for counter, value in (cell.get("fault_counters") or {}).items():
            key = format_key(f"chaos/{counter.replace('.', '/')}", labels)
            view.metrics[key] = float(value)
            view.policies[key] = {"mode": "info"}
    return view


def _writes_view(payload: Mapping) -> BenchView:
    view = BenchView(verb="writes",
                     fingerprint=_cells_fingerprint(payload))
    view.metrics["writes/policy_order_ok"] = \
        1.0 if payload.get("policy_order_ok") else 0.0
    view.policies["writes/policy_order_ok"] = {"mode": "exact"}
    for cell in payload.get("cells", ()):
        labels = {"preset": cell.get("preset", ""),
                  "policy": cell.get("policy", ""),
                  "ratio": format(cell.get("write_ratio", 0.0), "g")}
        failed_key = format_key("writes/failed", labels)
        view.metrics[failed_key] = 1.0 if cell.get("failed") else 0.0
        view.policies[failed_key] = {"mode": "exact"}
        if cell.get("failed"):
            continue
        # Event counts and the WA ratios they derive are deterministic
        # per seed, so any drift is a behavior change worth flagging.
        for stat in ("host_writes", "device_writes", "app_writes",
                     "admission_rejects", "writeback_elided",
                     "gc_migrated_pages", "gc_erases",
                     "wa_factor", "flash_writes_per_app_write"):
            if cell.get(stat) is not None:
                key = format_key(f"writes/{stat}", labels)
                view.metrics[key] = float(cell[stat])
                view.policies[key] = {"mode": "exact"}
        # Latency/throughput/lifetime figures are recorded but never
        # gated — they move with any timing tweak elsewhere.
        for stat in ("service_p99_ns", "service_mean_ns",
                     "throughput_jobs_per_s", "lifetime_years"):
            if cell.get(stat) is not None:
                key = format_key(f"writes/{stat}", labels)
                view.metrics[key] = float(cell[stat])
                view.policies[key] = {"mode": "info"}
    return view


def _loadgen_view(payload: Mapping) -> BenchView:
    view = BenchView(verb="loadgen",
                     fingerprint=_cells_fingerprint(payload))
    view.metrics["loadgen/monotonic_p99"] = \
        1.0 if payload.get("monotonic_p99") else 0.0
    view.policies["loadgen/monotonic_p99"] = {"mode": "exact"}
    if payload.get("saturation_qps") is not None:
        view.metrics["loadgen/saturation_qps"] = \
            float(payload["saturation_qps"])
    for knee in payload.get("knees", ()):
        labels = {"preset": knee.get("preset", "")}
        for stat in ("sustained_qps", "sustained_fraction_of_dram"):
            if knee.get(stat) is not None:
                view.metrics[format_key(f"loadgen/{stat}", labels)] = \
                    float(knee[stat])
    for cell in payload.get("cells", ()):
        labels = {"preset": cell.get("preset", ""),
                  "qps": format(cell.get("offered_qps", 0.0), "g")}
        for stat in ("p99_us", "achieved_qps", "backlog_fraction"):
            if cell.get(stat) is not None:
                view.metrics[format_key(f"loadgen/{stat}", labels)] = \
                    float(cell[stat])
    return view


def _sweep_view(payload: Mapping) -> BenchView:
    view = BenchView(verb="bench-sweep")
    for stat in ("wall_seconds_snapshots_off", "wall_seconds_snapshots_cold",
                 "wall_seconds_snapshots_on", "speedup"):
        if payload.get(stat) is not None:
            key = f"sweep/{stat}"
            view.metrics[key] = float(payload[stat])
            view.policies[key] = {"mode": "info"}
    return view


def _profile_view(payload: Mapping) -> BenchView:
    view = BenchView(verb="profile")
    for stat in ("events_executed", "events_per_second", "total_calls",
                 "wall_seconds", "warm_wall_seconds", "scalar_fallbacks"):
        if payload.get(stat) is not None:
            key = f"profile/{stat}"
            view.metrics[key] = float(payload[stat])
            view.policies[key] = {"mode": "info"}
    for reason, count in sorted(
            (payload.get("fallback_reasons") or {}).items()):
        key = format_key("profile/fallbacks",
                         {"reason": reason.replace(",", ";")})
        view.metrics[key] = float(count)
        view.policies[key] = {"mode": "info"}
    return view


def bench_view(payload: Mapping) -> BenchView:
    """Project any recognized ``BENCH_*``/``PROFILE_*`` payload onto
    the namespace; raises :class:`ReproError` for foreign JSON."""
    if "ops_per_job" in payload and "entries" in payload:
        return _kernel_view(payload)
    if "rber_points" in payload:
        return _chaos_view(payload)
    if "write_ratio_points" in payload:
        return _writes_view(payload)
    if "knees" in payload:
        return _loadgen_view(payload)
    if "wall_seconds_snapshots_off" in payload:
        return _sweep_view(payload)
    if "hotspots" in payload:
        return _profile_view(payload)
    raise ReproError(
        "unrecognized bench payload (expected one of the BENCH_kernel/"
        "BENCH_sweep/BENCH_chaos/BENCH_loadgen/BENCH_writes/PROFILE_* "
        "schemas)"
    )
