"""Observability: request-lifecycle tracing, telemetry, attribution.

The subsystem has four parts (DESIGN.md §4d):

* :mod:`repro.obs.tracer` — span/record collection with sampling and a
  single-branch no-op fast path when disabled;
* :mod:`repro.obs.chrometrace` — Chrome trace-event JSON export
  (opens in Perfetto / ``chrome://tracing``) and validation;
* :mod:`repro.obs.telemetry` — periodic read-only snapshots of MSR
  occupancy, queue depths, dirty ways, flash depth and core busy;
* :mod:`repro.obs.attribution` — Table-2-style component breakdown of
  service latency, bucketed by percentile.

:func:`trace_experiment` is the one-call session helper behind
``python -m repro trace-run``: enable a tracer, re-run an experiment
in-process with the result cache off (cached results would yield an
empty trace), and return the tracer alongside the experiment result.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.obs.attribution import (
    AttributionBucket,
    BUCKETS,
    RunAttribution,
    attribute,
    format_attribution,
)
from repro.obs.chrometrace import (
    export_chrome_trace,
    export_trace_events,
    validate_chrome_trace,
    validate_trace_events,
    write_chrome_trace,
)
from repro.obs.telemetry import (
    TELEMETRY_FIELDS,
    TelemetrySampler,
    write_telemetry_csv,
    write_telemetry_json,
)
from repro.obs.tracer import (
    COMPONENTS,
    RequestRecord,
    Tracer,
    active,
    disable,
    enable,
)

__all__ = [
    "AttributionBucket",
    "BUCKETS",
    "COMPONENTS",
    "RequestRecord",
    "RunAttribution",
    "TELEMETRY_FIELDS",
    "Tracer",
    "TelemetrySampler",
    "active",
    "attribute",
    "disable",
    "enable",
    "export_chrome_trace",
    "export_trace_events",
    "format_attribution",
    "trace_experiment",
    "trace_specs",
    "validate_chrome_trace",
    "validate_trace_events",
    "write_chrome_trace",
    "write_telemetry_csv",
    "write_telemetry_json",
]


def trace_experiment(experiment: str, scale: str = "quick",
                     tracer: Optional[Tracer] = None) -> Tuple[Tracer, object]:
    """Run one harness experiment with tracing enabled.

    Forces in-process execution with the result cache off: tracing
    happens inside the simulating process, so cache hits or pool
    workers would leave the tracer empty.  Returns ``(tracer, result)``
    where ``result`` is the experiment's
    :class:`~repro.harness.common.ExperimentResult`.
    """
    from repro.harness import run_experiment

    if tracer is None:
        tracer = Tracer()
    saved_cache = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "0"
    enable(tracer)
    try:
        result = run_experiment(experiment, scale=scale, jobs=1)
    finally:
        disable()
        if saved_cache is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved_cache
    return tracer, result


def trace_specs(specs, tracer: Optional[Tracer] = None) -> Tuple[Tracer, list]:
    """Execute :class:`~repro.harness.parallel.RunSpec`s under tracing.

    Uncached, in-process, in order — the traced analogue of
    ``run_specs`` used by ``repro report --telemetry``.
    """
    from repro.harness.parallel import execute_spec

    if tracer is None:
        tracer = Tracer()
    enable(tracer)
    try:
        results = [execute_spec(spec) for spec in specs]
    finally:
        disable()
    return tracer, results
