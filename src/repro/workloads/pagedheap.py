"""Page-granular heap allocator for workload data structures.

Workload data structures (trees, hash tables, database rows) allocate
their nodes here so every traversal produces an honest page-level
access trace: the allocator decides which 4 KiB page each node lives
on, and pointer chases touch exactly those pages.

Two placement modes:

* **packed** — nodes fill pages sequentially (arrays, table heaps);
* **spread** — nodes are distributed over a fixed page budget with a
  stride, so a structure with fewer nodes than the scaled dataset still
  covers the whole flash-resident page range (see DESIGN.md on scaling).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.units import PAGE_SIZE


class PageRef:
    """A reference to an allocated object: page number + offset."""

    __slots__ = ("page", "offset", "size")

    def __init__(self, page: int, offset: int, size: int) -> None:
        self.page = page
        self.offset = offset
        self.size = size

    def __repr__(self) -> str:
        return f"<PageRef page={self.page}+{self.offset} size={self.size}>"


class PagedHeap:
    """Sequential (packed) allocator over a page range."""

    def __init__(self, base_page: int, page_budget: int,
                 page_size: int = PAGE_SIZE) -> None:
        if page_budget < 1:
            raise ConfigurationError("heap needs at least one page")
        self.base_page = base_page
        self.page_budget = page_budget
        self.page_size = page_size
        self._current_page = 0
        self._current_offset = 0

    @property
    def pages_used(self) -> int:
        return self._current_page + (1 if self._current_offset > 0 else 0)

    def allocate(self, size: int) -> PageRef:
        """Allocate ``size`` bytes; objects never straddle pages."""
        if size < 1 or size > self.page_size:
            raise ConfigurationError(f"cannot allocate {size} bytes")
        if self._current_offset + size > self.page_size:
            self._current_page += 1
            self._current_offset = 0
        if self._current_page >= self.page_budget:
            raise WorkloadError("paged heap exhausted its page budget")
        ref = PageRef(self.base_page + self._current_page,
                      self._current_offset, size)
        self._current_offset += size
        return ref


class SpreadHeap:
    """Allocator that spreads objects uniformly over the page budget.

    Used when a scaled-down structure must still exercise the full
    flash-resident page range: node ``i`` lands on page
    ``base + (i * budget) // expected``, preserving uniform coverage.
    """

    def __init__(self, base_page: int, page_budget: int,
                 expected_objects: int) -> None:
        if page_budget < 1:
            raise ConfigurationError("heap needs at least one page")
        if expected_objects < 1:
            raise ConfigurationError("expected object count must be positive")
        self.base_page = base_page
        self.page_budget = page_budget
        self.expected_objects = expected_objects
        self._allocated = 0

    def allocate(self, size: int = 1) -> PageRef:
        index = self._allocated
        self._allocated += 1
        slot = (index * self.page_budget) // max(self.expected_objects, 1)
        page = self.base_page + min(slot, self.page_budget - 1)
        return PageRef(page, 0, size)

    def allocate_pages(self, count: int) -> List[int]:
        """Pages for the next ``count`` allocations, as plain ints.

        Bulk-construction fast path: yields exactly the page sequence
        ``count`` successive :meth:`allocate` calls would, without
        materializing a :class:`PageRef` per object.
        """
        base = self.base_page
        budget = self.page_budget
        expected = max(self.expected_objects, 1)
        start = self._allocated
        end = start + count
        self._allocated = end
        if end * budget <= 2 ** 62:
            # Exact in int64: vectorize the slot computation.
            slots = (np.arange(start, end, dtype=np.int64) * budget) \
                // expected
            np.minimum(slots, budget - 1, out=slots)
            return (slots + base).tolist()
        last = budget - 1
        return [base + min((index * budget) // expected, last)
                for index in range(start, end)]

    @property
    def allocated(self) -> int:
        return self._allocated
