"""User-level thread schedulers (Sec. IV-D2, Fig. 8).

Two policies:

* :class:`PriorityAgingScheduler` — the paper's scheduler.  New jobs
  run at priority 2, pending jobs at priority 1, and an aging rule
  promotes the head of the pending queue when it has waited longer than
  the average flash response time.  Ready pending jobs are also drained
  ahead of new work once their data has arrived (the queue-pair
  notification path), which keeps the service-latency distribution
  close to Flash-Sync (Table II).
* :class:`FifoScheduler` — the `AstriFlash-noPS` ablation: new jobs
  always win; the pending queue is only consulted when no new job is
  available.  Starves pending jobs under bursts, giving the ~7x p99
  degradation of Table II.

Schedulers are pure policy objects: the core loop in
:mod:`repro.core.runner` owns timing and thread-switch costs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.config.system import SchedulingPolicy, UltConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.tracer import active as _tracer_active
from repro.stats import CounterSet
from repro.ult.thread import ThreadState, UserThread


class UltScheduler:
    """Base class: queue bookkeeping shared by both policies."""

    def __init__(self, config: UltConfig, name: str) -> None:
        if config.pending_queue_limit < 1:
            raise ConfigurationError("pending queue needs at least one slot")
        self.config = config
        self.name = name
        self._new: Deque[UserThread] = deque()
        self._pending: Deque[UserThread] = deque()
        self.stats = CounterSet(name)
        self._tracer = _tracer_active()

    # -- queue maintenance ---------------------------------------------------

    def add_new(self, thread: UserThread) -> None:
        if thread.state is not ThreadState.NEW:
            raise ProtocolError("only NEW threads enter the new-job queue")
        self._new.append(thread)
        self.stats.add("new_enqueued")

    def add_pending(self, thread: UserThread) -> None:
        """A running thread halted on a DRAM-cache miss."""
        if thread.state is not ThreadState.PENDING:
            raise ProtocolError("only PENDING threads enter the pending queue")
        if self.pending_full:
            raise ProtocolError("pending queue overflow; caller must block")
        self._pending.append(thread)
        self.stats.add("pending_enqueued")

    @property
    def pending_full(self) -> bool:
        return len(self._pending) >= self.config.pending_queue_limit

    @property
    def new_count(self) -> int:
        return len(self._new)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def oldest_pending(self) -> Optional[UserThread]:
        return self._pending[0] if self._pending else None

    def has_work(self) -> bool:
        if self._new:
            return True
        return any(t.state is ThreadState.READY for t in self._pending)

    # -- policy ---------------------------------------------------------------

    def note_miss(self) -> None:
        """Hook invoked when a thread halts on a miss (used by the
        FIFO ablation's miss-gated pending check)."""

    def pick_next(self, now: float, avg_flash_response_ns: float
                  ) -> Optional[UserThread]:
        raise NotImplementedError

    def _pop_ready_pending(self) -> Optional[UserThread]:
        """Oldest pending thread whose data has arrived."""
        for index, thread in enumerate(self._pending):
            if thread.state is ThreadState.READY:
                del self._pending[index]
                return thread
        return None

    def _pop_new(self) -> Optional[UserThread]:
        return self._new.popleft() if self._new else None


class PriorityAgingScheduler(UltScheduler):
    """Priority scheduling with aging (the AstriFlash policy)."""

    def __init__(self, config: UltConfig) -> None:
        super().__init__(config, "priority-aging")

    def pick_next(self, now: float, avg_flash_response_ns: float
                  ) -> Optional[UserThread]:
        head = self.oldest_pending()
        threshold = avg_flash_response_ns * self.config.aging_threshold_factor
        if (head is not None and head.pending_age(now) >= threshold
                and head.state is ThreadState.READY):
            # Aging rule: the head waited longer than a typical flash
            # response, so it runs ahead of new jobs.  The queue-pair
            # notification path (Sec. IV-D2) tells the scheduler when
            # data has *not* arrived yet (flash-side queueing or GC
            # spikes); in that case blocking the core would waste it,
            # so the head is left pending and other work runs.
            self._pending.popleft()
            self.stats.add("aged_dispatches")
            if self._tracer is not None:
                self._tracer.instant(
                    f"core{head.core_id}", "aged_dispatch", now,
                    {"age_ns": round(head.pending_age(now), 1)},
                )
            return head
        new = self._pop_new()
        if new is not None:
            self.stats.add("new_dispatches")
            return new
        # No new jobs: drain the oldest ready pending job.
        ready = self._pop_ready_pending()
        if ready is not None:
            self.stats.add("ready_dispatches")
            return ready
        # Nothing ready and no new jobs: when saturated, run the head
        # even though it must block on flash, rather than idle
        # (the scheduler "waits for the flash response for the oldest
        # job", Sec. IV-D1).
        if head is not None and self.pending_full:
            self._pending.popleft()
            self.stats.add("forced_dispatches")
            if self._tracer is not None:
                self._tracer.instant(
                    f"core{head.core_id}", "forced_dispatch", now,
                    {"age_ns": round(head.pending_age(now), 1)},
                )
            return head
        return None


class FifoScheduler(UltScheduler):
    """`AstriFlash-noPS` (Sec. VI-B): new jobs always beat pending jobs.

    The ablated scheduler "executes new jobs even if the requested page
    for a pending job has arrived and only checks the pending queue
    when encountering a miss".  Two behaviours follow:

    * pending jobs are only noticed at miss-triggered scheduling points
      (``note_miss``), never on completion boundaries;
    * the pending queue is strict FIFO: a ready job behind an unready
      head suffers head-of-line blocking.

    Together these starve the pending queue, producing Table II's ~7x
    p99 service-latency inflation.
    """

    def __init__(self, config: UltConfig) -> None:
        super().__init__(config, "fifo")
        self._miss_event = False

    def note_miss(self) -> None:
        """A DRAM-cache miss occurred: the next scheduling decision is
        allowed to look at the pending queue."""
        self._miss_event = True

    def pick_next(self, now: float, avg_flash_response_ns: float
                  ) -> Optional[UserThread]:
        if self._miss_event:
            self._miss_event = False
            head = self.oldest_pending()
            if head is not None and head.state is ThreadState.READY:
                self._pending.popleft()
                self.stats.add("ready_dispatches")
                return head
        new = self._pop_new()
        if new is not None:
            self.stats.add("new_dispatches")
            return new
        if self.pending_full:
            # Saturated: drain the head, blocking on flash if needed.
            head = self._pending.popleft()
            self.stats.add("forced_dispatches")
            if self._tracer is not None:
                self._tracer.instant(
                    f"core{head.core_id}", "forced_dispatch", now,
                    {"age_ns": round(head.pending_age(now), 1)},
                )
            return head
        # Ready pending jobs keep waiting: they are only seen at miss
        # points — the starvation the priority scheduler fixes.
        return None


def make_scheduler(config: UltConfig) -> UltScheduler:
    """Build the scheduler selected by ``config.policy``."""
    if config.policy is SchedulingPolicy.PRIORITY_AGING:
        return PriorityAgingScheduler(config)
    if config.policy is SchedulingPolicy.FIFO:
        return FifoScheduler(config)
    raise ConfigurationError(f"unknown scheduling policy {config.policy!r}")
