"""Fault injection & resilience subsystem (DESIGN.md §4f).

Layout:

* :mod:`repro.faults.model` — the error math: RBER -> Poisson-tail
  codeword failure -> page failure, retry-round RBER scaling, and the
  :class:`ReadOutcome` value object.
* :mod:`repro.faults.plan` — :class:`FaultPlan`, the seeded per-read
  decision stream (own RNG, never the sim RNG) plus per-plane failure
  tracking that drives the degraded mirror-read mode.
* :mod:`repro.faults.chaos` — the chaos-sweep harness behind
  ``python -m repro chaos``: degradation curves (throughput / p99 vs
  injected RBER) per preset, schema-stamped for CI.

``chaos`` pulls in the full experiment harness, so it is deliberately
*not* imported here — the flash device only needs the plan, and
importing it from this package must stay cheap and cycle-free.  Use
``from repro.faults.chaos import run_chaos``.
"""

from repro.faults.model import (
    ReadOutcome,
    codeword_failure_probability,
    describe_outcome,
    effective_rber,
    page_failure_probability,
    poisson_tail,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "FaultPlan",
    "ReadOutcome",
    "codeword_failure_probability",
    "describe_outcome",
    "effective_rber",
    "page_failure_probability",
    "poisson_tail",
]
