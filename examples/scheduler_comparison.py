#!/usr/bin/env python
"""Scheduler study: why priority-with-aging matters (Table II live).

Runs the same moderate-load TATP service under the three core-side
designs — priority+aging (AstriFlash), FIFO (AstriFlash-noPS), and
synchronous waiting (Flash-Sync) — and prints the service-latency
distributions, showing how the scheduler keeps pending jobs from
starving while still overlapping flash accesses.

Usage:  python examples/scheduler_comparison.py
"""

from repro.config import make_config
from repro.core import Runner
from repro.units import US
from repro.workloads import PoissonArrivals, make_workload

DATASET_PAGES = 8192
NUM_CORES = 2
LOAD = 0.6


def run(config_name, interarrival_ns, seed=5):
    config = make_config(config_name)
    config.num_cores = NUM_CORES
    config.scale.dataset_pages = DATASET_PAGES
    config.scale.warmup_ns = 300.0 * US
    config.scale.measurement_ns = 3_000.0 * US
    workload = make_workload("tatp", DATASET_PAGES, seed=seed, zipf_s=1.7)
    runner = Runner(config, workload,
                    arrivals=PoissonArrivals(interarrival_ns, seed=seed + 1))
    return runner, runner.run()


def main() -> None:
    saturation_runner = Runner(
        (lambda c: (setattr(c, "num_cores", NUM_CORES), c)[1])(
            make_config("dram-only")
        ),
        make_workload("tatp", DATASET_PAGES, seed=5, zipf_s=1.7),
    )
    saturation_runner.config.scale.dataset_pages = DATASET_PAGES
    saturation_runner.config.scale.warmup_ns = 300.0 * US
    saturation_runner.config.scale.measurement_ns = 3_000.0 * US
    max_rate = saturation_runner.run().throughput_jobs_per_s
    interarrival = NUM_CORES / (LOAD * max_rate) * 1e9

    print(f"TATP at {LOAD:.0%} load "
          f"({max_rate * LOAD:,.0f} jobs/s offered)\n")
    print(f"{'design':20s} {'p50':>10} {'p99':>10} {'sched detail'}")
    results = {}
    for name in ("flash-sync", "astriflash", "astriflash-nops"):
        runner, result = run(name, interarrival)
        results[name] = result
        detail = ""
        library = runner.machine.libraries[0]
        if library is not None:
            stats = library.scheduler.stats
            detail = (f"aged={stats['aged_dispatches']:.0f} "
                      f"ready={stats['ready_dispatches']:.0f} "
                      f"new={stats['new_dispatches']:.0f}")
        print(f"{name:20s} {result.service_p50_ns / US:9.1f}u "
              f"{result.service_p99_ns / US:9.1f}u  {detail}")

    base = results["flash-sync"].service_p99_ns
    print("\np99 service latency normalized to Flash-Sync:")
    for name, result in results.items():
        print(f"  {name:20s} {result.service_p99_ns / base:5.2f}x")
    print("\nPriority+aging resumes a pending job as soon as its page "
          "arrives (aging ~= one flash response), so its distribution "
          "hugs Flash-Sync's; FIFO only notices pending jobs at miss "
          "events and lets them starve behind new work.")


if __name__ == "__main__":
    main()
