"""Request-lifecycle tracer: spans, sampling, and the no-op fast path.

The tracer is the collection half of the observability subsystem
(DESIGN.md §4d).  Simulator components bind the module-level active
tracer once at construction time and guard every instrumentation site
with a single ``if tracer is not None`` branch, so a run with tracing
disabled pays one predictable branch per site and nothing else.

Two kinds of data are collected:

* **Track events** — Chrome-trace-shaped slices (``B``/``E``), complete
  spans (``X``), instants (``i``) and counter samples (``C``) keyed by
  ``(run, track)``.  Tracks are strings (``core0``, ``flash-plane3``,
  ``bc``, ``counters``); the exporter in
  :mod:`repro.obs.chrometrace` maps them to Chrome tids.
* **Request records** — per-job component accounting (compute, DRAM
  hit, TLB walk, miss signal, thread switch, MSR wait, flash read,
  install wait, ready wait, sync wait) whose sum reconstructs the
  measured service latency exactly; the attribution report in
  :mod:`repro.obs.attribution` aggregates them by latency percentile.

Determinism contract: the tracer only *reads* simulator state.  It
never draws from any RNG (request sampling is ``job_id % sample_every``)
and never schedules result-affecting events, so enabling it leaves
simulation statistics bit-identical (pinned by the golden determinism
test).  Memory is bounded by the sampling rate plus hard caps on
retained events and request records; overflow increments drop counters
instead of growing without bound.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.units import US

#: Per-request latency components, in report order.  The sum of every
#: component except ``queue_wait`` reconstructs the measured service
#: latency (dispatch -> completion) of the request.
COMPONENTS = (
    "compute",       # compute segments retired on the core
    "dram_hit",      # DRAM-cache hit / flat-DRAM access latency
    "tlb_walk",      # TLB-miss page walks (incl. cold walks on misses)
    "miss_signal",   # miss-detect latency + ROB flush (+ fault entry)
    "switch",        # user-level thread / OS context switches
    "msr_wait",      # miss parked: FC miss -> flash read issued
    "flash_read",    # miss parked: flash read in flight
    "fault_stall",   # miss parked: failed attempts (retry/timeout/reissue)
    "install_wait",  # miss parked: page arrived -> install + notify
    "flash_wait",    # parked wait that could not be decomposed (OS swap)
    "ready_wait",    # data arrived -> rescheduled on the core
    "sync_wait",     # core blocked synchronously on a refill
)

# ------------------------------------------------------------- fast path --

#: Module-level fast-path flag: ``True`` iff a tracer is active.
#: Components read :func:`active` once at construction; hot paths then
#: branch on their bound reference, never on this module.
ENABLED = False

_ACTIVE: Optional["Tracer"] = None


def enable(tracer: "Tracer") -> None:
    """Install ``tracer`` as the process-wide active tracer."""
    global ENABLED, _ACTIVE
    _ACTIVE = tracer
    ENABLED = True


def disable() -> None:
    """Remove the active tracer (instrumentation reverts to no-op)."""
    global ENABLED, _ACTIVE
    _ACTIVE = None
    ENABLED = False


def active() -> Optional["Tracer"]:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


# ------------------------------------------------------------ request side --


class RequestRecord:
    """Component accounting for one sampled request (job)."""

    __slots__ = ("job_id", "workload", "run", "arrived_at", "started_at",
                 "finished_at", "misses", "spans",
                 "compute", "dram_hit", "tlb_walk", "miss_signal", "switch",
                 "msr_wait", "flash_read", "fault_stall", "install_wait",
                 "flash_wait", "ready_wait", "sync_wait")

    #: Timestamped sub-spans kept per record (components stay exact
    #: past the cap; only the span *list* is bounded).
    MAX_SPANS = 256

    def __init__(self, job_id: int, workload: str, run: str,
                 arrived_at: float, started_at: float) -> None:
        self.job_id = job_id
        self.workload = workload
        self.run = run
        self.arrived_at = arrived_at
        self.started_at = started_at
        self.finished_at: Optional[float] = None
        self.misses = 0
        #: (component, start_ns, end_ns) spans with real timestamps;
        #: quantum-batched on-core components (compute/hits/walks) are
        #: amount-only and do not appear here.
        self.spans: List[Tuple[str, float, float]] = []
        self.compute = 0.0
        self.dram_hit = 0.0
        self.tlb_walk = 0.0
        self.miss_signal = 0.0
        self.switch = 0.0
        self.msr_wait = 0.0
        self.flash_read = 0.0
        self.fault_stall = 0.0
        self.install_wait = 0.0
        self.flash_wait = 0.0
        self.ready_wait = 0.0
        self.sync_wait = 0.0

    # -- charging helpers ----------------------------------------------------

    def add_span(self, component: str, start: float, end: float) -> None:
        if len(self.spans) < self.MAX_SPANS:
            self.spans.append((component, start, end))

    def charge_resume(self, pending_since: float,
                      data_ready_at: Optional[float], run_start: float,
                      switch_ns: float, payload: Any) -> None:
        """Attribute the interval from a miss halt to the next dispatch.

        ``[pending_since, run_start]`` splits into the parked wait (up
        to ``data_ready_at``), the ready-queue wait, and the thread
        switch.  When ``payload`` is the install-signal payload (a
        ``MissRequest`` carrying flash issue/done stamps) the parked
        wait is further decomposed into MSR wait, flash read and
        install; stamps are clipped into the parked interval so the
        decomposition sums exactly.
        """
        park_end = run_start - switch_ns
        ready_at = data_ready_at
        if ready_at is None or ready_at > park_end:
            ready_at = park_end
        if ready_at < pending_since:
            ready_at = pending_since
        self.switch += switch_ns
        self.ready_wait += park_end - ready_at
        if park_end > ready_at:
            self.add_span("ready_wait", ready_at, park_end)
        issued = getattr(payload, "flash_issued_at", None)
        done = getattr(payload, "flash_done_at", None)
        if issued is None or done is None:
            self.flash_wait += ready_at - pending_since
            if ready_at > pending_since:
                self.add_span("flash_wait", pending_since, ready_at)
            return
        issued = min(max(issued, pending_since), ready_at)
        done = min(max(done, issued), ready_at)
        self.msr_wait += issued - pending_since
        # Under fault injection the in-flight interval includes time
        # burned on failed attempts (timeouts, uncorrectable replies,
        # reissues); the BC stamps that as fault_stall_ns.  Those
        # failed attempts precede the read that delivered data, so the
        # stall occupies the front of the interval.
        fault_ns = getattr(payload, "fault_stall_ns", 0.0)
        span = done - issued
        if fault_ns > span:
            fault_ns = span
        stall_end = issued + fault_ns
        self.fault_stall += fault_ns
        self.flash_read += span - fault_ns
        self.install_wait += ready_at - done
        if issued > pending_since:
            self.add_span("msr_wait", pending_since, issued)
        if stall_end > issued:
            self.add_span("fault_stall", issued, stall_end)
        if done > stall_end:
            self.add_span("flash_read", stall_end, done)
        if ready_at > done:
            self.add_span("install_wait", done, ready_at)

    # -- derived quantities --------------------------------------------------

    @property
    def queue_wait_ns(self) -> float:
        return self.started_at - self.arrived_at

    @property
    def service_latency_ns(self) -> float:
        if self.finished_at is None:
            raise ValueError(f"request {self.job_id} not finished")
        return self.finished_at - self.started_at

    def components(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENTS}

    def span_sum_ns(self) -> float:
        total = 0.0
        for name in COMPONENTS:
            total += getattr(self, name)
        return total

    def coverage(self) -> float:
        """Span-sum over measured service latency (1.0 = exact)."""
        measured = self.service_latency_ns
        if measured <= 0.0:
            return 1.0
        return self.span_sum_ns() / measured

    def __repr__(self) -> str:
        return (f"<RequestRecord {self.workload}#{self.job_id} "
                f"misses={self.misses}>")


# ------------------------------------------------------------------ tracer --


class Tracer:
    """Collects track events and request records for one traced session.

    ``sample_every`` traces one request in N (deterministically, by
    ``job_id`` — never via the simulation RNG).  ``max_events`` and
    ``max_requests`` bound memory; overflow is counted, not stored.
    ``telemetry_interval_ns`` is the cadence of the time-series sampler
    (:class:`repro.obs.telemetry.TelemetrySampler`); 0 disables it.
    """

    def __init__(self, sample_every: int = 1,
                 max_events: int = 1_000_000,
                 max_requests: int = 200_000,
                 telemetry_interval_ns: float = 5.0 * US) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_events = max_events
        self.max_requests = max_requests
        self.telemetry_interval_ns = telemetry_interval_ns
        #: (ts_ns, run_index, track, phase, name, args, dur_ns)
        self.events: List[Tuple] = []
        self.dropped_events = 0
        self.runs: List[str] = []
        self.completed: List[RequestRecord] = []
        self.dropped_requests = 0
        self.requests_seen = 0
        #: Time-series rows appended by the telemetry sampler.
        self.telemetry_rows: List[Dict[str, float]] = []
        self._run_index = -1
        self._active_requests: Dict[int, RequestRecord] = {}
        self._open: Dict[Tuple[int, str], List[bool]] = {}

    # -- run scoping ----------------------------------------------------------

    @property
    def current_run(self) -> str:
        if self._run_index < 0:
            return ""
        return self.runs[self._run_index]

    def begin_run(self, label: str) -> None:
        """Open a new run scope (one simulation = one trace process)."""
        self.runs.append(label)
        self._run_index = len(self.runs) - 1
        # Job ids restart per run; records still in flight belong to
        # the previous run and will never complete.
        self._active_requests = {}

    def _ensure_run(self) -> int:
        if self._run_index < 0:
            self.begin_run("untitled")
        return self._run_index

    def end_run(self, now: float) -> None:
        """Close the run: jobs still in flight when the simulation
        horizon was reached leave open B slices — emit their matching
        E events at the final timestamp so the trace stays balanced."""
        run = self._run_index
        if run < 0:
            return
        for (event_run, track), stack in self._open.items():
            if event_run != run:
                continue
            while stack:
                if stack.pop():
                    self.events.append((now, run, track, "E", None,
                                        {"truncated": True}, None))
                else:
                    self.dropped_events += 1

    # -- request lifecycle ----------------------------------------------------

    def start_request(self, job: Any, now: float) -> Optional[RequestRecord]:
        """Sample ``job`` at dispatch time; returns its record or None."""
        self.requests_seen += 1
        if job.job_id % self.sample_every != 0:
            return None
        run = self._ensure_run()
        record = RequestRecord(
            job.job_id, job.workload_name, self.runs[run],
            arrived_at=(job.arrived_at
                        if job.arrived_at is not None else now),
            started_at=now,
        )
        self._active_requests[job.job_id] = record
        return record

    def lookup(self, job_id: int) -> Optional[RequestRecord]:
        """The in-flight record for ``job_id`` (None if unsampled)."""
        return self._active_requests.get(job_id)

    def finish_request(self, job: Any, now: float) -> None:
        """Close the record (if sampled) and file it for attribution."""
        record = self._active_requests.pop(job.job_id, None)
        if record is None:
            return
        record.finished_at = now
        record.misses = job.misses
        if len(self.completed) < self.max_requests:
            self.completed.append(record)
        else:
            self.dropped_requests += 1
        # Async request span for the Chrome trace ("b"/"e" by id).
        if len(self.events) < self.max_events - 1:
            name = f"{record.workload}#{record.job_id}"
            run = self._run_index
            self.events.append((record.started_at, run, "requests", "b",
                                name, None, None))
            self.events.append((now, run, "requests", "e", name,
                                {k: round(v, 1) for k, v
                                 in record.components().items() if v},
                                None))
        else:
            self.dropped_events += 1

    # -- track events ---------------------------------------------------------

    def push(self, track: str, name: str, ts: float,
             args: Optional[dict] = None) -> None:
        """Open a ``B`` slice on ``track``; pair with :meth:`pop`.

        Budget accounting keeps B/E pairs matched even at the event
        cap: a dropped ``B`` drops its matching ``E`` too.
        """
        run = self._ensure_run()
        ok = len(self.events) < self.max_events
        self._open.setdefault((run, track), []).append(ok)
        if ok:
            self.events.append((ts, run, track, "B", name, args, None))
        else:
            self.dropped_events += 1

    def pop(self, track: str, ts: float,
            args: Optional[dict] = None) -> None:
        """Close the innermost open slice on ``track``."""
        run = self._ensure_run()
        stack = self._open.get((run, track))
        if not stack:
            return  # unbalanced pop; drop rather than corrupt the trace
        if stack.pop():
            self.events.append((ts, run, track, "E", None, args, None))
        else:
            self.dropped_events += 1

    def complete(self, track: str, name: str, start: float, end: float,
                 args: Optional[dict] = None) -> None:
        """A complete ``X`` span (may overlap others on its track)."""
        run = self._ensure_run()
        if len(self.events) < self.max_events:
            self.events.append((start, run, track, "X", name, args,
                                end - start))
        else:
            self.dropped_events += 1

    def instant(self, track: str, name: str, ts: float,
                args: Optional[dict] = None) -> None:
        run = self._ensure_run()
        if len(self.events) < self.max_events:
            self.events.append((ts, run, track, "i", name, args, None))
        else:
            self.dropped_events += 1

    def counter(self, name: str, ts: float, value: float) -> None:
        """One counter sample (rendered as a Chrome ``C`` track)."""
        run = self._ensure_run()
        if len(self.events) < self.max_events:
            self.events.append((ts, run, "counters", "C", name,
                                {"value": value}, None))
        else:
            self.dropped_events += 1

    # -- summaries ------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        return {
            "runs": len(self.runs),
            "events": len(self.events),
            "dropped_events": self.dropped_events,
            "requests_seen": self.requests_seen,
            "requests_traced": len(self.completed),
            "dropped_requests": self.dropped_requests,
            "telemetry_samples": len(self.telemetry_rows),
        }

    def __repr__(self) -> str:
        return (f"<Tracer runs={len(self.runs)} events={len(self.events)} "
                f"requests={len(self.completed)}>")
