"""Profiling subsystem: ``python -m repro profile <experiment>``.

The kernel hot-path work (DESIGN.md §4c) is driven by measurement, not
guesswork; this module packages that measurement loop so regressions
are one command away:

* :func:`profile_experiment` regenerates one paper artifact under
  :mod:`cProfile` — result cache disabled, in-process (``jobs=1``) so
  every simulated event is actually executed and attributed — and
  distils the run into a :class:`ProfileReport`: wall time, kernel
  events/sec, and the top-N hotspots by internal time.
* :meth:`ProfileReport.to_json` emits the machine-readable form CI
  archives as ``BENCH_kernel.json``.

Events/sec counts *simulated events retired per wall-clock second*
(see :func:`repro.sim.engine.total_events_executed`), which makes it a
workload-independent figure of merit for the event loop itself; note
that cProfile's instrumentation slows call-heavy code severalfold, so
the events/sec reported here is pessimistic relative to an
unprofiled run (:class:`~repro.core.runner.SimulationResult` carries
the unprofiled per-run value).
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time
from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.errors import ReproError
from repro.jsonutil import dumps as json_dumps
from repro.sim.engine import total_events_executed


@dataclass
class Hotspot:
    """One profile row: a function and where its time went."""

    function: str
    calls: int
    total_s: float        # time inside the function itself (tottime)
    cumulative_s: float   # time including callees (cumtime)


#: Bump when the JSON layout of :class:`ProfileReport` changes so CI
#: consumers of ``BENCH_kernel.json`` can detect incompatible files.
PROFILE_SCHEMA_VERSION = 1


@dataclass
class ProfileReport:
    """Everything one profiled experiment run produced."""

    experiment: str
    scale: str
    wall_seconds: float
    total_calls: int
    events_executed: int
    events_per_second: float
    hotspots: List[Hotspot] = field(default_factory=list)
    schema_version: int = PROFILE_SCHEMA_VERSION
    config_preset: str = ""  # HarnessScale.name the run resolved to

    def format_text(self) -> str:
        lines = [
            f"profile: {self.experiment} (scale={self.scale})",
            f"  wall time       {self.wall_seconds:.2f} s (under cProfile)",
            f"  kernel events   {self.events_executed:,} "
            f"({self.events_per_second:,.0f} events/s)",
            f"  function calls  {self.total_calls:,}",
            "",
            f"  {'calls':>10}  {'tottime':>8}  {'cumtime':>8}  function",
        ]
        for spot in self.hotspots:
            lines.append(
                f"  {spot.calls:>10,}  {spot.total_s:>8.3f}  "
                f"{spot.cumulative_s:>8.3f}  {spot.function}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def _function_label(func_key) -> str:
    """Compact ``path:lineno(name)`` label for a pstats function key."""
    filename, lineno, name = func_key
    if filename in ("~", ""):
        return name  # C builtins have no source location
    parts = filename.replace(os.sep, "/").split("/")
    short = "/".join(parts[-3:])
    return f"{short}:{lineno}({name})"


def hotspots_from_stats(stats: pstats.Stats, top: int = 15) -> List[Hotspot]:
    """The ``top`` functions by internal time as :class:`Hotspot` rows."""
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][2],  # tottime
        reverse=True,
    )
    return [
        Hotspot(
            function=_function_label(func_key),
            calls=ncalls,
            total_s=tottime,
            cumulative_s=cumtime,
        )
        for func_key, (_cc, ncalls, tottime, cumtime, _callers)
        in rows[:top]
    ]


def profile_experiment(experiment: str, scale: str = "quick",
                       top: int = 15,
                       profiler: Optional[cProfile.Profile] = None
                       ) -> ProfileReport:
    """Regenerate ``experiment`` under cProfile and report hotspots.

    The result cache is disabled for the duration (a cache hit would
    profile pickle loads, not the simulator) and runs stay in-process
    (``jobs=1``) so the profiler sees every event.
    """
    if top < 1:
        raise ReproError("profile needs at least one hotspot row")
    from repro.harness import EXPERIMENTS, resolve_scale  # deferred: heavy

    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment!r}; known: {known}"
        ) from None

    profiler = profiler if profiler is not None else cProfile.Profile()
    # Disable both caching layers for the duration: a result-cache hit
    # would profile pickle loads, and a warm-state snapshot restore
    # would hide the warmup the profiler is supposed to attribute.
    saved_env = {name: os.environ.get(name)
                 for name in ("REPRO_CACHE", "REPRO_SNAPSHOT")}
    os.environ["REPRO_CACHE"] = "0"
    os.environ["REPRO_SNAPSHOT"] = "0"
    events_before = total_events_executed()
    wall_start = time.perf_counter()
    try:
        profiler.enable()
        try:
            runner(scale=scale, jobs=1)
        finally:
            profiler.disable()
    finally:
        for name, value in saved_env.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value
    wall_seconds = time.perf_counter() - wall_start
    events = total_events_executed() - events_before

    stats = pstats.Stats(profiler)
    return ProfileReport(
        experiment=experiment,
        scale=scale,
        wall_seconds=wall_seconds,
        total_calls=stats.total_calls,  # type: ignore[attr-defined]
        events_executed=events,
        events_per_second=(events / wall_seconds
                           if wall_seconds > 0 else 0.0),
        hotspots=hotspots_from_stats(stats, top=top),
        config_preset=resolve_scale(scale).name,
    )


# ------------------------------------------------------------- sweep bench --

#: Bump when the JSON layout of :class:`SweepBench` changes so CI
#: consumers of ``BENCH_sweep.json`` can detect incompatible files.
SWEEP_SCHEMA_VERSION = 1


@dataclass
class SweepBench:
    """End-to-end sweep wall time, snapshots off vs on.

    The harness-level companion to the kernel series: kernel events/s
    tracks the event loop, this tracks what :mod:`repro.snapshot`
    amortizes across a sweep (dataset builds, cache warmup).  Three
    timings: snapshots off, the cold on-run that also *builds* the
    snapshots, and the warm on-run that reuses them.  ``speedup`` is
    off/on — the figure the acceptance bar (>= 1.3x) reads.
    """

    experiment: str
    scale: str
    wall_seconds_snapshots_off: float
    wall_seconds_snapshots_cold: float
    wall_seconds_snapshots_on: float
    speedup: float
    schema_version: int = SWEEP_SCHEMA_VERSION
    config_preset: str = ""

    def format_text(self) -> str:
        return "\n".join([
            f"sweep bench: {self.experiment} (scale={self.scale})",
            f"  snapshots off   {self.wall_seconds_snapshots_off:.3f} s",
            f"  snapshots cold  {self.wall_seconds_snapshots_cold:.3f} s "
            "(building snapshot files)",
            f"  snapshots on    {self.wall_seconds_snapshots_on:.3f} s",
            f"  speedup         {self.speedup:.2f}x (off/on)",
        ])

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def bench_sweep(experiment: str = "fig1", scale: str = "quick",
                snapshot_dir: Optional[str] = None) -> SweepBench:
    """Time one experiment sweep with snapshots off, cold, and on.

    The result cache is disabled throughout (it would short-circuit the
    runs being timed) and everything stays in-process so the three
    timings are comparable.  Snapshots go to a throwaway directory
    (``snapshot_dir`` or a fresh temp dir) — the bench must not be
    contaminated by, or contaminate, a real snapshot store.
    """
    import shutil
    import tempfile

    from repro import snapshot
    from repro.harness import EXPERIMENTS, resolve_scale  # deferred: heavy

    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment!r}; known: {known}"
        ) from None

    own_tmp = snapshot_dir is None
    directory = snapshot_dir if snapshot_dir is not None \
        else tempfile.mkdtemp(prefix="repro-bench-sweep-")
    # Policy via environment so every experiment participates, whether
    # or not its run() threads explicit snapshot kwargs.
    saved_env = {name: os.environ.get(name)
                 for name in ("REPRO_CACHE", "REPRO_SNAPSHOT",
                              "REPRO_SNAPSHOT_DIR")}
    os.environ["REPRO_CACHE"] = "0"
    os.environ["REPRO_SNAPSHOT_DIR"] = str(directory)
    try:
        def timed(snapshots_on: bool) -> float:
            os.environ["REPRO_SNAPSHOT"] = "1" if snapshots_on else "0"
            start = time.perf_counter()
            runner(scale=scale, jobs=1)
            return time.perf_counter() - start

        t_off = timed(False)
        t_cold = timed(True)
        # Drop the in-process memo so the warm run exercises the real
        # restore path (memo repopulates from the snapshot files).
        snapshot.SnapshotStore.clear_memo()
        t_on = timed(True)
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if own_tmp:
            shutil.rmtree(directory, ignore_errors=True)

    return SweepBench(
        experiment=experiment,
        scale=scale,
        wall_seconds_snapshots_off=t_off,
        wall_seconds_snapshots_cold=t_cold,
        wall_seconds_snapshots_on=t_on,
        speedup=(t_off / t_on if t_on > 0 else 0.0),
        config_preset=resolve_scale(scale).name,
    )
