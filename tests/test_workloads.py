"""Tests for the seven evaluated workloads and arrival processes."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    EVALUATED_WORKLOADS,
    ClosedLoop,
    PoissonArrivals,
    Step,
    make_workload,
)

DATASET_PAGES = 2048


@pytest.fixture(scope="module")
def workloads():
    return {
        name: make_workload(name, DATASET_PAGES, seed=7)
        for name in EVALUATED_WORKLOADS
    }


def collect_steps(workload, num_jobs=20):
    steps = []
    for _ in range(num_jobs):
        job = workload.make_job()
        while True:
            step = job.next_step()
            if step is None:
                break
            steps.append(step)
    return steps


class TestAllWorkloads:
    def test_registry_has_all_seven(self):
        assert len(EVALUATED_WORKLOADS) == 7

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            make_workload("no-such-workload", DATASET_PAGES)

    @pytest.mark.parametrize("name", EVALUATED_WORKLOADS)
    def test_jobs_produce_valid_steps(self, workloads, name):
        workload = workloads[name]
        steps = collect_steps(workload, num_jobs=5)
        assert steps, f"{name} produced no steps"
        for step in steps:
            assert isinstance(step, Step)
            assert 0 <= step.page < DATASET_PAGES, \
                f"{name} touched page {step.page} outside the dataset"
            assert step.compute_ns > 0

    @pytest.mark.parametrize("name", EVALUATED_WORKLOADS)
    def test_job_ids_are_unique(self, workloads, name):
        workload = workloads[name]
        ids = {workload.make_job().job_id for _ in range(10)}
        assert len(ids) == 10

    @pytest.mark.parametrize("name", EVALUATED_WORKLOADS)
    def test_service_time_is_microsecond_scale(self, workloads, name):
        # Paper: datacenter jobs take ~10-100 us (Sec. IV-D2).
        workload = workloads[name]
        service_ns = workload.average_service_time_ns(num_jobs=30)
        assert 2_000 <= service_ns <= 120_000, \
            f"{name} service time {service_ns:.0f} ns out of range"

    @pytest.mark.parametrize("name", EVALUATED_WORKLOADS)
    def test_write_traffic_is_limited(self, workloads, name):
        # Paper Sec. V-A: workloads mimic limited write traffic.
        steps = collect_steps(workloads[name], num_jobs=30)
        write_fraction = sum(s.is_write for s in steps) / len(steps)
        # Array Swap is the read-write extreme at exactly half; the
        # database workloads are far below it.
        assert write_fraction <= 0.5, f"{name} writes {write_fraction:.0%}"

    @pytest.mark.parametrize("name", EVALUATED_WORKLOADS)
    def test_accesses_are_skewed(self, workloads, name):
        # The hottest 10% of pages should absorb well over 10% of
        # accesses (Zipfian popularity).
        from collections import Counter
        steps = collect_steps(workloads[name], num_jobs=60)
        counts = Counter(step.page for step in steps)
        total = sum(counts.values())
        hottest = sum(count for _, count in
                      counts.most_common(max(1, len(counts) // 10)))
        assert hottest / total > 0.3, f"{name} not skewed enough"

    def test_tpcc_is_most_computationally_intensive(self, workloads):
        tpcc_occupancy = workloads["tpcc"].rob_occupancy
        for name in EVALUATED_WORKLOADS:
            if name != "tpcc":
                assert workloads[name].rob_occupancy < tpcc_occupancy


class TestArrivals:
    def test_poisson_mean(self):
        arrivals = PoissonArrivals(1000.0, seed=1)
        gaps = [arrivals.next_gap_ns() for _ in range(20_000)]
        assert sum(gaps) / len(gaps) == pytest.approx(1000.0, rel=0.05)

    def test_poisson_rate(self):
        arrivals = PoissonArrivals(10_000.0)
        assert arrivals.rate_per_second == pytest.approx(1e5)

    def test_poisson_invalid(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)

    def test_closed_loop_is_backlogged(self):
        source = ClosedLoop()
        assert source.next_gap_ns() == 0.0
        assert source.rate_per_second == float("inf")


class TestSiloOcc:
    def test_sequential_transactions_commit(self):
        from repro.workloads import SiloWorkload
        workload = SiloWorkload(2048, seed=3)
        for _ in range(20):
            job = workload.make_job()
            while job.next_step() is not None:
                pass
        assert workload.commits > 0
        assert workload.aborts == 0  # no interleaving: no conflicts

    def test_interleaved_transactions_conflict(self):
        import random
        from repro.workloads import SiloWorkload
        # High contention: tiny key space, write-heavy.
        workload = SiloWorkload(2048, seed=3, num_keys=1024, zipf_s=2.5,
                                reads_per_txn=3, writes_per_txn=2)
        # Randomly interleave many jobs, mimicking the irregular
        # progress of concurrent cores (lockstep interleavings align
        # all validation phases and cannot conflict).
        rng = random.Random(5)
        live = [workload.make_job() for _ in range(16)]
        while live:
            job = rng.choice(live)
            if job.next_step() is None:
                live.remove(job)
        assert workload.commits > 0
        assert workload.aborts > 0, "interleaving must cause OCC conflicts"
        assert 0.0 < workload.abort_rate() < 1.0

    def test_retry_bound_respected(self):
        from repro.workloads import SiloWorkload
        workload = SiloWorkload(2048, seed=3)
        assert workload.retry_exhaustions == 0
