"""Experiment harness: one module per paper figure/table.

``EXPERIMENTS`` maps experiment ids to their ``run(scale=...)``
callables; ``run_all`` regenerates everything and returns the formatted
report.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.harness import fig1, fig2, fig3, fig9, fig10, gc_overheads
from repro.harness import table1, table2
from repro.harness.common import (
    FULL,
    QUICK,
    SCALES,
    ExperimentResult,
    HarnessScale,
    build_config,
    resolve_scale,
    run_simulation,
)
from repro.harness.parallel import (
    ParallelRunError,
    RunSpec,
    execute_spec,
    map_tasks,
    run_spec,
    run_specs,
)

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "table1": table1.run,
    "table2": table2.run,
    "gc_overheads": gc_overheads.run,
}


def run_experiment(name: str, scale="quick", **kwargs) -> ExperimentResult:
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    return runner(scale=scale, **kwargs)


def run_all(scale="quick", jobs=None) -> List[ExperimentResult]:
    return [run_experiment(name, scale=scale, jobs=jobs)
            for name in EXPERIMENTS]


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "FULL",
    "HarnessScale",
    "ParallelRunError",
    "QUICK",
    "RunSpec",
    "SCALES",
    "build_config",
    "execute_spec",
    "map_tasks",
    "resolve_scale",
    "run_all",
    "run_experiment",
    "run_simulation",
    "run_spec",
    "run_specs",
]
