"""Machine assembly: wire the substrates for one configuration.

A :class:`Machine` owns the simulation engine and builds, per the
configured :class:`~repro.config.PagingMode`:

* the flash device (all flash-backed modes);
* the hardware DRAM cache (AstriFlash variants and Flash-Sync — the
  latter is FlatFlash-style: same hardware cache, but the core waits
  synchronously on misses);
* the OS demand pager + resident set (OS-Swap);
* per-core :class:`~repro.cpu.CoreModel` and, for AstriFlash, the
  per-core user-level thread library;
* the page-table page space used by the `noDP` ablation (page tables
  live in flash-backed cached space when partitioning is off).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.config.system import (
    PagingMode,
    SchedulingPolicy,
    SystemConfig,
    UltConfig,
)
from repro.cpu.core import CoreModel
from repro.dramcache.cache import DramCache
from repro.dramcache.timing import flat_partition_access_ns
from repro.errors import ConfigurationError
from repro.flash.device import FlashDevice
from repro.osmodel.paging import DemandPager
from repro.osmodel.resident import ResidentSetManager
from repro.sim import Engine
from repro.ult.library import ThreadLibrary

# Page-table granularity: data pages covered per PT leaf page.  Real
# hardware packs 512 8-byte PTEs per 4 KiB page; the scaled simulation
# uses a smaller fan-out so the PT working set keeps the same relation
# to the (scaled) DRAM cache — PT leaves covering cold data regions
# must be evictable, which is the behaviour the `noDP` ablation
# measures (DESIGN.md records this scaling substitution).
PTES_PER_PAGE = 16


class Machine:
    """All hardware/OS state for one simulated server."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.engine = Engine()

        dataset_pages = config.scaled_dataset_pages
        self.dataset_pages = dataset_pages
        # Page-table leaf pages sit above the dataset in the flash-
        # mapped physical space (used by AstriFlash-noDP walks).
        self.pt_base_page = dataset_pages
        self.pt_pages = max(1, dataset_pages // PTES_PER_PAGE)
        total_flash_pages = dataset_pages + self.pt_pages

        self.flash: Optional[FlashDevice] = None
        self.dram_cache: Optional[DramCache] = None
        self.pager: Optional[DemandPager] = None

        mode = config.mode
        if mode is not PagingMode.DRAM_ONLY:
            self.flash = FlashDevice(self.engine, config.flash,
                                     total_flash_pages,
                                     faults=config.faults,
                                     writes=config.writes)
        # DRAM→flash admission policy (DESIGN.md §4j): built only when
        # the write path is enabled, so the default controllers keep
        # their original branches.  Imported lazily — the writes
        # package pulls the harness, which imports this module.
        self.admission = None
        if (config.writes.enabled
                and mode in (PagingMode.ASTRIFLASH, PagingMode.FLASH_SYNC)):
            from repro.writes.admission import make_admission

            self.admission = make_admission(config.writes)
        if mode in (PagingMode.ASTRIFLASH, PagingMode.FLASH_SYNC):
            self.dram_cache = DramCache(
                self.engine, config.dram_cache,
                cache_pages=config.scaled_dram_cache_pages,
                flash=self.flash,
                admission=self.admission,
            )
        elif mode is PagingMode.OS_SWAP:
            resident = ResidentSetManager(config.scaled_dram_cache_pages)
            self.pager = DemandPager(self.engine, config.os, resident,
                                     self.flash, config.num_cores)

        self.cores: List[CoreModel] = [
            CoreModel(core_id, config.core)
            for core_id in range(config.num_cores)
        ]
        self.libraries: List[Optional[ThreadLibrary]] = []
        if mode is PagingMode.ASTRIFLASH:
            self.libraries = [
                ThreadLibrary(core.core_id, config.ult,
                              registers=core.registers)
                for core in self.cores
            ]
        elif mode is PagingMode.OS_SWAP:
            # OS-Swap multiplexes kernel threads: the same switch-on-
            # stall structure but with OS context-switch costs and no
            # pending-queue limit (the kernel's run queue is unbounded).
            kernel_threads = UltConfig(
                threads_per_core=config.os.kernel_threads_per_core,
                switch_latency_ns=config.os.context_switch_ns,
                policy=SchedulingPolicy.PRIORITY_AGING,
                pending_queue_limit=config.os.kernel_threads_per_core,
            )
            self.libraries = [
                ThreadLibrary(core.core_id, kernel_threads)
                for core in self.cores
            ]
        else:
            self.libraries = [None] * config.num_cores

        # Flat-DRAM access latency (page tables under partitioning,
        # and the DRAM-only system's memory latency).
        self.flat_dram_latency_ns = flat_partition_access_ns(config.dram_cache)

    # -- page-table placement ---------------------------------------------------

    def page_table_page(self, data_page: int) -> int:
        """The PT leaf page translating ``data_page``."""
        if not 0 <= data_page < self.dataset_pages:
            raise ConfigurationError(
                f"data page {data_page} outside the dataset"
            )
        return self.pt_base_page + (data_page // PTES_PER_PAGE) % self.pt_pages

    @property
    def page_tables_in_flash_space(self) -> bool:
        """True when walks go through the DRAM cache (noDP ablation)."""
        return (self.config.mode is PagingMode.ASTRIFLASH
                and not self.config.dram_cache.partitioning_enabled)

    # -- warmup ----------------------------------------------------------------

    def warm_caches(self, workload, num_steps: int = 50_000) -> None:
        """Pre-populate the DRAM tier with a functional access trace so
        measurements start from steady state rather than a cold cache."""
        target = (self.dram_cache.organization if self.dram_cache is not None
                  else self.pager.resident if self.pager is not None
                  else None)
        if target is None:
            return
        # Hot loop (tens of thousands of steps per run): hoist the
        # tier dispatch out of the loop and bind the per-step calls
        # once; jobs always run to completion, as before.
        steps_done = 0
        if self.dram_cache is not None:
            warm_job = self.dram_cache.organization.warm_job
            while steps_done < num_steps:
                steps_done += warm_job(workload.make_job().steps)
        else:
            insert = self.pager.resident.insert
            while steps_done < num_steps:
                job = workload.make_job()
                for step in job.steps:
                    insert(step.page, dirty=step.is_write)
                    steps_done += 1

    # -- warm-state snapshot (repro.snapshot) -----------------------------------

    def dump_warm_state(self) -> Dict[str, object]:
        """Picklable dump of everything :meth:`warm_caches` mutates on
        the machine: the DRAM tier (cache tags or resident set).

        Only meaningful at the warm/measure boundary — warmup is
        functional (the engine has not run), so the dump refuses a
        machine whose clock has advanced.
        """
        if self.engine.now != 0 or self.engine.events_executed != 0:
            raise ConfigurationError(
                "warm-state dump after the engine has run; snapshots "
                "capture the warm/measure boundary only"
            )
        # Keyed by tier, not paging mode: AstriFlash variants and
        # Flash-Sync share the same hardware DRAM cache, so their warm
        # state is interchangeable (repro.snapshot keys them together).
        state: Dict[str, object] = {}
        if self.dram_cache is not None:
            state["dram_cache"] = self.dram_cache.organization.dump_state()
        if self.pager is not None:
            state["resident"] = self.pager.resident.dump_state()
        return state

    def load_warm_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`dump_warm_state` dump into this (freshly
        built, never-run) machine, in place of :meth:`warm_caches`."""
        if self.engine.now != 0 or self.engine.events_executed != 0:
            raise ConfigurationError(
                "warm-state restore after the engine has run"
            )
        if ("dram_cache" in state) != (self.dram_cache is not None):
            raise ConfigurationError("warm-state tier mismatch (dram cache)")
        if ("resident" in state) != (self.pager is not None):
            raise ConfigurationError("warm-state tier mismatch (resident)")
        if self.dram_cache is not None:
            self.dram_cache.organization.load_state(state["dram_cache"])
        if self.pager is not None:
            self.pager.resident.load_state(state["resident"])

    def state_fingerprint(self) -> str:
        """Digest of the machine's warm-affected state plus engine
        position.  Equal fingerprints after fresh-warm vs
        snapshot-restore is the bit-identical contract the tests
        enforce."""
        parts: List[object] = [self.config.mode.name, self.engine.now,
                               self.engine.events_executed]
        if self.dram_cache is not None:
            parts.append(sorted(
                self.dram_cache.organization.dump_state().items()))
        if self.pager is not None:
            parts.append(sorted(self.pager.resident.dump_state().items()))
        if self.flash is not None:
            # Device-side activity (reads, GC, retries) — pins the
            # flash path in the scalar-vs-vector identity contract on
            # top of the snapshot contract above (both tiers are empty
            # at the warm/measure boundary, so snapshot comparisons
            # are unaffected).
            parts.append(sorted(self.flash.stats.as_dict().items()))
            parts.append(sorted(self.flash.ftl.stats.as_dict().items()))
        return hashlib.sha256(repr(parts).encode()).hexdigest()
