"""Figure 1: DRAM-cache miss ratio and required flash bandwidth vs
DRAM capacity.

The paper sweeps the DRAM-to-flash capacity ratio, measures the miss
ratio of the DRAM tier (averaged over workloads), and applies
Equation 1 to get the flash refill bandwidth for a 64-core machine.
The miss rate flattens around 3 % of the dataset, where the bandwidth
is ~60 GB/s — within PCIe Gen5 reach.

We reproduce it by running each workload's real page trace through a
fully-associative LRU simulation of the DRAM tier at each capacity
point (the OS/hardware-managed tier is approximately LRU at page
granularity), then averaging miss ratios across workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Sequence

from repro.analytic.bandwidth import (
    PAPER_CORE_COUNT,
    flash_bandwidth_total_gbps,
)
from repro.harness.common import ExperimentResult, HarnessScale, resolve_scale
from repro.harness.parallel import map_tasks
from repro.workloads import make_workload

CAPACITY_FRACTIONS: Sequence[float] = (
    0.01, 0.02, 0.03, 0.04, 0.05, 0.075, 0.10,
)


def _lru_warm_key(tkey: str, capacity: int) -> str:
    """Snapshot key for the warmed LRU state of one (trace, capacity)
    sweep point."""
    from repro import snapshot as snap
    return snap.generic_key("fig1-lru-warm", tkey, int(capacity))


def lru_miss_ratio(pages: Iterable[int], capacity_pages: int) -> float:
    """Miss ratio of an LRU page cache over a page trace."""
    if capacity_pages < 1:
        raise ValueError("capacity must be at least one page")
    cache: "OrderedDict[int, None]" = OrderedDict()
    hits = misses = 0
    for page in pages:
        if page in cache:
            cache.move_to_end(page)
            hits += 1
        else:
            misses += 1
            if len(cache) >= capacity_pages:
                cache.popitem(last=False)
            cache[page] = None
    total = hits + misses
    return misses / total if total else 0.0


def workload_trace(workload_name: str, scale: HarnessScale,
                   num_steps: int, seed: int) -> List[int]:
    workload = make_workload(workload_name, scale.dataset_pages, seed=seed,
                             **scale.workload_kwargs())
    pages: List[int] = []
    append = pages.append
    while len(pages) < num_steps:
        job = workload.make_job()
        for step in job.steps:
            append(step.page)
    return pages[:num_steps]


def workload_trace_cached(workload_name: str, scale: HarnessScale,
                          num_steps: int, seed: int,
                          snapshots: Optional[bool] = None,
                          snapshot_dir=None) -> List[int]:
    """:func:`workload_trace` memoized through the snapshot store —
    trace generation (workload build + page stream) dominates the
    fig1 sweep's wall time, and the trace depends only on the key
    inputs."""
    from repro import snapshot as snap

    store = snap.resolve_store(snapshots, snapshot_dir)
    if not store.enabled:
        return workload_trace(workload_name, scale, num_steps, seed)
    key = snap.trace_key(workload_name, scale.dataset_pages, seed,
                         num_steps, scale.workload_kwargs())
    cached = store.load(snap.TRACE_KIND, key)
    if cached is not None:
        return cached
    trace = workload_trace(workload_name, scale, num_steps, seed)
    store.store(snap.TRACE_KIND, key, trace)
    return trace


def run(scale="quick", steps_per_workload: int = 60_000,
        seed: int = 42, jobs: Optional[int] = None,
        snapshots: Optional[bool] = None,
        snapshot_dir=None) -> ExperimentResult:
    """Regenerate Figure 1's two series."""
    from repro import snapshot as snap

    scale = resolve_scale(scale)
    store = snap.resolve_store(snapshots, snapshot_dir)
    result = ExperimentResult(
        experiment="fig1",
        title=("Fig. 1: miss ratio and required flash bandwidth "
               "(64 cores, Eq. 1) vs DRAM capacity"),
        columns=["dram_capacity_pct", "miss_ratio",
                 "flash_bw_gbps_64cores"],
        notes=("Paper shape: miss rate flattens near 3% capacity; "
               "~60 GB/s of flash bandwidth at the knee."),
    )
    # Per-workload trace generation is independent: serve what the
    # snapshot store already has, fan out only the misses.
    traces = {}
    if store.enabled:
        for name in scale.workloads:
            key = snap.trace_key(name, scale.dataset_pages, seed,
                                 steps_per_workload,
                                 scale.workload_kwargs())
            cached = store.load(snap.TRACE_KIND, key)
            if cached is not None:
                traces[name] = cached
    missing = [name for name in scale.workloads if name not in traces]
    if missing:
        trace_lists = map_tasks(
            workload_trace_cached,
            [{"workload_name": name, "scale": scale,
              "num_steps": steps_per_workload, "seed": seed,
              "snapshots": store.enabled,
              "snapshot_dir": store.directory}
             for name in missing],
            jobs=jobs,
        )
        traces.update(zip(missing, trace_lists))
    # Keep the original (scale.workloads) iteration order regardless of
    # which traces came from the store.
    traces = {name: traces[name] for name in scale.workloads}
    # Warm half the trace, measure on the second half so the cold-start
    # misses do not pollute the steady-state ratio.  The warmed LRU
    # state per (trace, capacity) point is itself memoized: the key
    # order of the OrderedDict *is* the full LRU state, so restoring it
    # is bit-identical to replaying the warm half.
    for fraction in CAPACITY_FRACTIONS:
        capacity = max(1, int(scale.dataset_pages * fraction))
        ratios = []
        for name, trace in traces.items():
            split = len(trace) // 2
            cache: "OrderedDict[int, None]" = OrderedDict()
            move_to_end = cache.move_to_end
            popitem = cache.popitem
            warm_key = None
            warm_pages = None
            if store.enabled:
                warm_key = _lru_warm_key(
                    snap.trace_key(name, scale.dataset_pages, seed,
                                   steps_per_workload,
                                   scale.workload_kwargs()),
                    capacity,
                )
                warm_pages = store.load(snap.WARM_KIND, warm_key)
            if warm_pages is not None:
                for page in warm_pages:
                    cache[page] = None
            else:
                for page in trace[:split]:
                    if page in cache:
                        move_to_end(page)
                    else:
                        if len(cache) >= capacity:
                            popitem(last=False)
                        cache[page] = None
                if warm_key is not None:
                    store.store(snap.WARM_KIND, warm_key,
                                list(cache.keys()))
            hits = misses = 0
            for page in trace[split:]:
                if page in cache:
                    move_to_end(page)
                    hits += 1
                else:
                    misses += 1
                    if len(cache) >= capacity:
                        popitem(last=False)
                    cache[page] = None
            ratios.append(misses / max(1, hits + misses))
        mean_miss = sum(ratios) / len(ratios)
        bandwidth = flash_bandwidth_total_gbps(mean_miss, PAPER_CORE_COUNT)
        result.add_row(fraction * 100.0, mean_miss, bandwidth)
    return result
