"""Figure 2: asynchronous flash accesses — why OS paging cannot scale.

The paper's Fig. 2 compares the throughput of traditional asynchronous
paging against an ideal no-overhead system as core count grows: the
per-miss OS overhead caps per-core throughput, and broadcast TLB
shootdowns serialize machine-wide, so aggregate throughput flattens.

We regenerate it analytically from the same cost structure the DES
uses: each core does ``work_us`` of useful work between misses; paging
charges ``os_overhead_us`` of core time per miss; every miss's install
requires a shootdown whose latency grows with the core count and which
serializes on kernel synchronization.
"""

from __future__ import annotations

from typing import Sequence

from repro.config import OsConfig
from repro.harness.common import ExperimentResult
from repro.units import US
from repro.vm.shootdown import TlbShootdownModel

CORE_COUNTS: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)


def run(scale="quick", work_us: float = 10.0,
        os_overhead_us: float = 10.0, jobs=None) -> ExperimentResult:
    """Regenerate Figure 2: normalized throughput vs core count."""
    del scale, jobs  # analytic: same at every scale, instant serially
    result = ExperimentResult(
        experiment="fig2",
        title="Fig. 2: async paging throughput vs cores (ideal = 1.0)",
        columns=["cores", "ideal_norm", "os_paging_norm",
                 "shootdown_bound_norm"],
        notes=("Per-core overhead halves throughput; the broadcast "
               "shootdown ceiling makes it collapse at high core "
               "counts."),
    )
    os_config = OsConfig()
    for cores in CORE_COUNTS:
        # Useful work rate of an ideal machine (misses cost nothing).
        ideal_rate = cores / (work_us * US)
        # Per-core overhead bound: each miss burns os_overhead_us.
        overhead_rate = cores / ((work_us + os_overhead_us) * US)
        # Global serialization bound: one shootdown per miss, and
        # shootdowns serialize machine-wide on kernel synchronization.
        shootdown = TlbShootdownModel(os_config, cores)
        shootdown_rate = 1.0 / shootdown.latency_ns()
        paging_rate = min(overhead_rate, shootdown_rate)
        result.add_row(
            cores,
            1.0,
            paging_rate / ideal_rate,
            shootdown_rate / ideal_rate,
        )
    return result
