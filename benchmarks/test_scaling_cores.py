"""Benchmark: throughput scaling with core count.

Fig. 2's argument, validated through the full simulator rather than the
analytic model: AstriFlash's per-core throughput stays roughly flat as
cores are added (no global synchronization in the miss path), while
OS-Swap's collapses because every page install serializes on the kernel
page-table lock and a broadcast shootdown whose cost grows with the
core count.
"""

from conftest import run_once

from repro.harness.common import build_config, resolve_scale
from repro.core import Runner
from repro.workloads import make_workload

CORE_COUNTS = (1, 2, 4, 8, 16)


def sweep(scale_name):
    # The scaling question needs a cache big enough that total miss
    # churn (which grows with cores) does not evict parked threads'
    # pages before they resume — a small-cache artifact, not the
    # synchronization effect under test.  Use the full-scale dataset
    # with a shortened window regardless of the harness scale.
    del scale_name
    scale = resolve_scale("full")
    outcomes = {}
    for config_name in ("astriflash", "os-swap"):
        per_core = {}
        for cores in CORE_COUNTS:
            config = build_config(config_name, scale)
            config.num_cores = cores
            config.scale.measurement_ns = 3_000_000.0
            workload = make_workload("arrayswap", scale.dataset_pages,
                                     seed=42, **scale.workload_kwargs())
            result = Runner(config, workload).run()
            per_core[cores] = result.throughput_jobs_per_s / cores
        outcomes[config_name] = per_core
    return outcomes


def test_scaling_cores(benchmark, harness_scale):
    outcomes = run_once(benchmark, sweep, harness_scale)
    print("\nper-core throughput vs cores (jobs/s/core):")
    for name, series in outcomes.items():
        row = "  ".join(f"{c}c:{t:8,.0f}" for c, t in series.items())
        print(f"  {name:12s} {row}")

    astri = outcomes["astriflash"]
    swap = outcomes["os-swap"]
    # AstriFlash stays within ~25% of its single-core efficiency.
    assert astri[max(CORE_COUNTS)] > 0.7 * astri[1]
    # OS-Swap loses per-core efficiency as shootdowns serialize.
    assert swap[max(CORE_COUNTS)] < 0.9 * swap[1]
    # And the scaling gap between the designs widens with cores.
    gap_small = astri[1] / swap[1]
    gap_large = astri[max(CORE_COUNTS)] / swap[max(CORE_COUNTS)]
    assert gap_large > gap_small
