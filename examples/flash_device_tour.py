#!/usr/bin/env python
"""Flash-device tour: the substrate under AstriFlash, by itself.

Walks the SSD model through the behaviors that matter for the paper:

1. baseline read latency (sensing + channel + PCIe);
2. plane-level queueing when reads collide;
3. bandwidth from geometry (parallel reads across planes);
4. write-churn-driven garbage collection and its read-latency tail,
   under both the blocking and Tiny-Tail GC policies.

Usage:  python examples/flash_device_tour.py
"""

import random

from repro.config import FlashConfig
from repro.flash import FlashDevice
from repro.sim import Engine, spawn
from repro.units import US


def section(title):
    print(f"\n=== {title} ===")


def baseline_latency():
    section("1. One read")
    engine = Engine()
    device = FlashDevice(engine, FlashConfig(), 4096)
    latencies = []

    def reader():
        request = yield device.read(7)
        latencies.append(request.latency_ns)

    spawn(engine, reader())
    engine.run()
    print(f"read latency: {latencies[0] / 1000:.1f} us "
          "(50 us sensing + channel + PCIe)")


def plane_queueing():
    section("2. Two reads to the same plane queue; different planes overlap")
    engine = Engine()
    device = FlashDevice(engine, FlashConfig(), 4096)
    results = {}

    def reader(tag, page):
        request = yield device.read(page)
        results[tag] = request.latency_ns

    planes = device.config.num_planes
    spawn(engine, reader("same-plane-a", 0))
    spawn(engine, reader("same-plane-b", planes))   # same plane stripe
    spawn(engine, reader("other-plane", 1))
    engine.run()
    for tag, latency in sorted(results.items()):
        print(f"  {tag:14s} {latency / 1000:6.1f} us")


def parallel_bandwidth():
    section("3. Bandwidth from geometry")
    engine = Engine()
    device = FlashDevice(engine, FlashConfig(), 1 << 16)
    done = []

    def reader(page):
        yield device.read(page)
        done.append(engine.now)

    num_reads = 512
    for page in range(num_reads):
        spawn(engine, reader(page))
    engine.run()
    elapsed_s = max(done) / 1e9
    bandwidth = num_reads * 4096 / elapsed_s / 1e9
    print(f"  {num_reads} parallel reads over "
          f"{device.config.num_planes} planes: "
          f"{bandwidth:.1f} GB/s effective")


def gc_tail(policy):
    engine = Engine()
    config = FlashConfig(channels=1, dies_per_channel=1, planes_per_die=1,
                         pages_per_block=8, overprovisioning=0.5,
                         gc_policy=policy)
    device = FlashDevice(engine, config, 32)
    rng = random.Random(1)
    latencies = []

    def writer():
        for index in range(250):
            yield device.write(index % 4)

    def reader():
        for _ in range(250):
            request = yield device.read(rng.randrange(32))
            latencies.append(request.latency_ns)
            yield 10.0 * US

    spawn(engine, writer())
    spawn(engine, reader())
    engine.run()
    latencies.sort()
    return latencies


def garbage_collection():
    section("4. GC read-latency tail: blocking vs Tiny-Tail")
    for policy in ("blocking", "tiny-tail"):
        latencies = gc_tail(policy)
        p50 = latencies[len(latencies) // 2]
        worst = latencies[-1]
        print(f"  {policy:10s} p50={p50 / 1000:7.1f} us   "
              f"worst={worst / 1000:8.1f} us")
    print("  (Tiny-Tail slices migrations and suspends erases so reads "
          "slip in — Sec. VI-D's mitigation.)")


def main() -> None:
    baseline_latency()
    plane_queueing()
    parallel_bandwidth()
    garbage_collection()


if __name__ == "__main__":
    main()
