"""Unified metrics registry, run ledger, and cross-run tooling.

DESIGN.md §4i.  Three layers:

* :mod:`repro.metrics.registry` — the ``subsystem/name{labels}``
  namespace, adapters from simulation results / machines / bench
  payloads onto it;
* :mod:`repro.metrics.ledger` — schema-stamped :class:`RunRecord`
  lines in ``.repro_runs/ledger.jsonl`` (``REPRO_RUNS_DIR`` /
  ``REPRO_LEDGER`` environment knobs);
* :mod:`repro.metrics.diff` + :mod:`repro.metrics.dashboard` — the
  comparison engine behind ``repro diff``/``repro regress`` and the
  static-HTML observatory behind ``repro dashboard``.
"""

from repro.metrics.dashboard import (
    build_dashboard,
    discover_bench_files,
    load_bench_payloads,
    render_dashboard,
)
from repro.metrics.diff import (
    DEFAULT_THRESHOLD,
    DiffReport,
    MetricDelta,
    RegressReport,
    classify_delta,
    diff_metric_dicts,
    diff_records,
    metric_direction,
    run_regress,
)
from repro.metrics.ledger import (
    LEDGER_SCHEMA_VERSION,
    WALL_FIELDS,
    RunRecord,
    append_record,
    default_runs_dir,
    filter_records,
    ledger_enabled,
    ledger_path,
    make_record,
    read_ledger,
    record_from_file,
    select_record,
)
from repro.metrics.registry import (
    METRIC_LABELS,
    BenchView,
    Metric,
    MetricSet,
    bench_view,
    format_key,
    machine_metrics,
    metrics_from_experiments,
    metrics_from_result,
    parse_key,
    vector_metrics,
)

__all__ = [
    "DEFAULT_THRESHOLD",
    "LEDGER_SCHEMA_VERSION",
    "METRIC_LABELS",
    "WALL_FIELDS",
    "BenchView",
    "DiffReport",
    "Metric",
    "MetricDelta",
    "MetricSet",
    "RegressReport",
    "RunRecord",
    "append_record",
    "bench_view",
    "build_dashboard",
    "classify_delta",
    "default_runs_dir",
    "diff_metric_dicts",
    "diff_records",
    "discover_bench_files",
    "filter_records",
    "format_key",
    "ledger_enabled",
    "ledger_path",
    "load_bench_payloads",
    "machine_metrics",
    "make_record",
    "metric_direction",
    "metrics_from_experiments",
    "metrics_from_result",
    "parse_key",
    "read_ledger",
    "record_from_file",
    "render_dashboard",
    "run_regress",
    "select_record",
    "vector_metrics",
]
