"""User-level threading: contexts, schedulers, per-core library."""

from repro.ult.library import SCHEDULER_HANDLER_VA, ThreadLibrary
from repro.ult.queuepair import CompletionEntry, CompletionQueue
from repro.ult.scheduler import (
    FifoScheduler,
    PriorityAgingScheduler,
    UltScheduler,
    make_scheduler,
)
from repro.ult.thread import ThreadState, UserThread

__all__ = [
    "SCHEDULER_HANDLER_VA",
    "CompletionEntry",
    "CompletionQueue",
    "FifoScheduler",
    "PriorityAgingScheduler",
    "ThreadLibrary",
    "ThreadState",
    "UltScheduler",
    "UserThread",
    "make_scheduler",
]
