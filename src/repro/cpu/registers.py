"""Physical register file and register map table.

AstriFlash extends ASO-style post-retirement speculation so that
*committed* stores sitting in the Store Buffer can still be aborted on
a DRAM-cache miss (Sec. IV-C4).  The enabling bookkeeping is exactly
what these classes model:

* a :class:`PhysicalRegisterFile` with a free list, sized as the base
  128 registers plus 4 extra registers per speculative store
  (32-entry SB x 4 = 128 extra, 1 KiB of SRAM in the paper's estimate);
* a :class:`MapTable` from architectural to physical registers whose
  snapshots are retained until the associated store *leaves the SB*
  (not merely the ROB), so an abort can rewind the rename state.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CapacityError, ConfigurationError, ProtocolError


class PhysicalRegisterFile:
    """A free-list-managed physical register file."""

    def __init__(self, num_registers: int) -> None:
        if num_registers < 1:
            raise ConfigurationError("PRF needs at least one register")
        self.num_registers = num_registers
        self._free: List[int] = list(range(num_registers))
        self._allocated = [False] * num_registers

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return self.num_registers - len(self._free)

    def allocate(self) -> int:
        """Claim a free physical register."""
        if not self._free:
            raise CapacityError("physical register file exhausted")
        reg = self._free.pop()
        self._allocated[reg] = True
        return reg

    def free(self, reg: int) -> None:
        """Return a register to the free list."""
        if not 0 <= reg < self.num_registers:
            raise ProtocolError(f"register {reg} out of range")
        if not self._allocated[reg]:
            raise ProtocolError(f"double free of physical register {reg}")
        self._allocated[reg] = False
        self._free.append(reg)

    def is_allocated(self, reg: int) -> bool:
        return self._allocated[reg]


class MapTable:
    """Architectural-to-physical register mapping with snapshots."""

    def __init__(self, num_arch_registers: int,
                 prf: PhysicalRegisterFile) -> None:
        if num_arch_registers < 1:
            raise ConfigurationError("need at least one architectural register")
        self.num_arch_registers = num_arch_registers
        self.prf = prf
        # Initial mapping: arch register i -> physical register i.
        self._map: List[int] = [prf.allocate() for _ in range(num_arch_registers)]

    def lookup(self, arch_reg: int) -> int:
        self._check(arch_reg)
        return self._map[arch_reg]

    def _check(self, arch_reg: int) -> None:
        if not 0 <= arch_reg < self.num_arch_registers:
            raise ProtocolError(f"architectural register {arch_reg} out of range")

    def rename(self, arch_reg: int) -> tuple:
        """Allocate a new physical register for ``arch_reg``.

        Returns ``(new_physical, old_physical)``; the old register must
        be freed by the caller once the renaming instruction is past
        any possible abort (for stores: when it leaves the SB).
        """
        self._check(arch_reg)
        old = self._map[arch_reg]
        new = self.prf.allocate()
        self._map[arch_reg] = new
        return new, old

    def undo_rename(self, arch_reg: int, old_phys: int) -> None:
        """Revert a rename during a squash (the new mapping is being
        discarded by the caller)."""
        self._check(arch_reg)
        self._map[arch_reg] = old_phys

    def snapshot(self) -> List[int]:
        """A copy of the current mapping (one 8-bit index per arch
        register in hardware; 32 x 8 bits = the paper's map-table
        entry)."""
        return list(self._map)

    def restore(self, snapshot: List[int]) -> None:
        """Rewind the mapping to ``snapshot`` (abort path)."""
        if len(snapshot) != self.num_arch_registers:
            raise ProtocolError("snapshot size mismatch")
        self._map = list(snapshot)

    def current(self) -> Dict[int, int]:
        return {arch: phys for arch, phys in enumerate(self._map)}
