"""Write-path subsystem: DRAM→flash admission policies, write
amplification, and device lifetime (DESIGN.md §4j).

Disabled by default (``WritesConfig.enabled=False``): nothing here is
constructed and the DRAM-cache/flash hot paths take their original
branches, keeping the golden fixtures bit-identical.  When enabled,
:func:`make_admission` builds the configured
:class:`~repro.writes.admission.AdmissionPolicy` and the machine
threads it through both DRAM-cache controllers; the driver in
:mod:`repro.writes.bench` sweeps policies and write ratios into the
schema-stamped ``BENCH_writes.json``.
"""

from repro.writes.admission import (
    AdmissionPolicy,
    ReadinessAdmission,
    ReadinessSketch,
    WriteBackAdmission,
    WriteThroughAdmission,
    make_admission,
)
from repro.writes.bench import (
    DEFAULT_WRITE_RATIOS,
    WRITES_SCHEMA_VERSION,
    WritesBench,
    WritesCell,
    parse_write_ratio_sweep,
    run_writes,
    writes_overrides,
)

__all__ = [
    "AdmissionPolicy",
    "DEFAULT_WRITE_RATIOS",
    "ReadinessAdmission",
    "ReadinessSketch",
    "WRITES_SCHEMA_VERSION",
    "WriteBackAdmission",
    "WriteThroughAdmission",
    "WritesBench",
    "WritesCell",
    "make_admission",
    "parse_write_ratio_sweep",
    "run_writes",
    "writes_overrides",
]
