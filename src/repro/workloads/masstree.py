"""Masstree-style ordered index and its TailBench-like workload.

The paper ports Masstree from TailBench (Sec. V-A).  We implement the
core of what matters at page granularity: a high-fanout B+ tree whose
nodes live on 4 KiB pages (allocated from a :class:`SpreadHeap` so the
index exercises the scaled page range), with every lookup returning the
page path the traversal touched.  Masstree's trie-of-B+-trees layering
for long keys is collapsed to a single B+ tree over 64-bit keys — the
layering only changes constant factors for short keys, which is all the
workload uses; the full layered structure for byte-string keys is
available in :mod:`repro.workloads.masstree_layers`.

Values live in a packed row store covering the rest of the page budget,
so value pages (not index pages) dominate capacity, as in a real store.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.pagedheap import PagedHeap, SpreadHeap
from repro.workloads.zipf import ZipfianGenerator

LEAF_CAPACITY = 32
INTERIOR_FANOUT = 16


class _LeafNode:
    __slots__ = ("page", "keys", "values", "next_leaf")

    def __init__(self, page: int) -> None:
        self.page = page
        self.keys: List[int] = []
        self.values: List[int] = []  # value page numbers
        self.next_leaf: Optional["_LeafNode"] = None


class _InteriorNode:
    __slots__ = ("page", "keys", "children")

    def __init__(self, page: int) -> None:
        self.page = page
        self.keys: List[int] = []
        self.children: List[object] = []


class Masstree:
    """A B+ tree with page-resident nodes and page-path lookups."""

    def __init__(self, index_heap: SpreadHeap,
                 leaf_capacity: int = LEAF_CAPACITY,
                 interior_fanout: int = INTERIOR_FANOUT) -> None:
        if leaf_capacity < 2 or interior_fanout < 3:
            raise WorkloadError("degenerate tree geometry")
        self._heap = index_heap
        self.leaf_capacity = leaf_capacity
        self.interior_fanout = interior_fanout
        self._root: object = _LeafNode(self._new_page())
        self._size = 0
        self._height = 1

    def _new_page(self) -> int:
        return self._heap.allocate().page

    @property
    def size(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # -- search --------------------------------------------------------------

    def get(self, key: int) -> Tuple[Optional[int], List[int]]:
        """Value page for ``key`` (None if absent) plus the index page
        path the traversal touched, root first."""
        path: List[int] = []
        node = self._root
        while isinstance(node, _InteriorNode):
            path.append(node.page)
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
        path.append(node.page)
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index], path
        return None, path

    # -- insert --------------------------------------------------------------

    def insert(self, key: int, value_page: int) -> List[int]:
        """Insert or update; returns the touched index page path."""
        path_nodes: List[_InteriorNode] = []
        node = self._root
        while isinstance(node, _InteriorNode):
            path_nodes.append(node)
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
        leaf: _LeafNode = node
        touched = [n.page for n in path_nodes] + [leaf.page]

        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.values[index] = value_page
            return touched
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value_page)
        self._size += 1

        if len(leaf.keys) > self.leaf_capacity:
            self._split_leaf(leaf, path_nodes)
        return touched

    def _split_leaf(self, leaf: _LeafNode,
                    ancestors: List[_InteriorNode]) -> None:
        mid = len(leaf.keys) // 2
        sibling = _LeafNode(self._new_page())
        sibling.keys = leaf.keys[mid:]
        sibling.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        sibling.next_leaf = leaf.next_leaf
        leaf.next_leaf = sibling
        self._insert_in_parent(leaf, sibling.keys[0], sibling, ancestors)

    def _insert_in_parent(self, left: object, split_key: int, right: object,
                          ancestors: List[_InteriorNode]) -> None:
        if not ancestors:
            root = _InteriorNode(self._new_page())
            root.keys = [split_key]
            root.children = [left, right]
            self._root = root
            self._height += 1
            return
        parent = ancestors[-1]
        slot = bisect.bisect_right(parent.keys, split_key)
        parent.keys.insert(slot, split_key)
        parent.children.insert(slot + 1, right)
        if len(parent.children) > self.interior_fanout:
            self._split_interior(parent, ancestors[:-1])

    def _split_interior(self, node: _InteriorNode,
                        ancestors: List[_InteriorNode]) -> None:
        mid = len(node.keys) // 2
        promote = node.keys[mid]
        sibling = _InteriorNode(self._new_page())
        sibling.keys = node.keys[mid + 1:]
        sibling.children = node.children[mid + 1:]
        del node.keys[mid:]
        del node.children[mid + 1:]
        self._insert_in_parent(node, promote, sibling, ancestors)


    # -- delete --------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if absent.

        Classic B+-tree deletion: underfull leaves borrow from a
        sibling or merge with it, and underflow propagates up the
        interior levels, shrinking the root when it empties.
        """
        ancestors: List[_InteriorNode] = []
        slots: List[int] = []
        node = self._root
        while isinstance(node, _InteriorNode):
            slot = bisect.bisect_right(node.keys, key)
            ancestors.append(node)
            slots.append(slot)
            node = node.children[slot]
        leaf: _LeafNode = node
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        del leaf.keys[index]
        del leaf.values[index]
        self._size -= 1
        self._fix_underflow(leaf, ancestors, slots)
        return True

    def _min_fill(self, node) -> int:
        if isinstance(node, _LeafNode):
            return self.leaf_capacity // 2
        return (self.interior_fanout + 1) // 2  # children

    def _fix_underflow(self, node, ancestors: List[_InteriorNode],
                       slots: List[int]) -> None:
        if not ancestors:
            # Root: collapse an interior root with a single child.
            if isinstance(node, _InteriorNode) and len(node.children) == 1:
                self._root = node.children[0]
                self._height -= 1
            return
        fill = (len(node.keys) if isinstance(node, _LeafNode)
                else len(node.children))
        if fill >= self._min_fill(node):
            return
        parent = ancestors[-1]
        slot = slots[-1]
        left = parent.children[slot - 1] if slot > 0 else None
        right = (parent.children[slot + 1]
                 if slot + 1 < len(parent.children) else None)

        if isinstance(node, _LeafNode):
            if left is not None and len(left.keys) > self._min_fill(left):
                node.keys.insert(0, left.keys.pop())
                node.values.insert(0, left.values.pop())
                parent.keys[slot - 1] = node.keys[0]
                return
            if right is not None and len(right.keys) > self._min_fill(right):
                node.keys.append(right.keys.pop(0))
                node.values.append(right.values.pop(0))
                parent.keys[slot] = right.keys[0]
                return
            # Merge with a sibling.
            if left is not None:
                left.keys += node.keys
                left.values += node.values
                left.next_leaf = node.next_leaf
                del parent.children[slot]
                del parent.keys[slot - 1]
            else:
                node.keys += right.keys
                node.values += right.values
                node.next_leaf = right.next_leaf
                del parent.children[slot + 1]
                del parent.keys[slot]
        else:
            if left is not None and len(left.children) > self._min_fill(left):
                node.children.insert(0, left.children.pop())
                node.keys.insert(0, parent.keys[slot - 1])
                parent.keys[slot - 1] = left.keys.pop()
                return
            if right is not None and \
                    len(right.children) > self._min_fill(right):
                node.children.append(right.children.pop(0))
                node.keys.append(parent.keys[slot])
                parent.keys[slot] = right.keys.pop(0)
                return
            if left is not None:
                left.keys.append(parent.keys[slot - 1])
                left.keys += node.keys
                left.children += node.children
                del parent.children[slot]
                del parent.keys[slot - 1]
            else:
                node.keys.append(parent.keys[slot])
                node.keys += right.keys
                node.children += right.children
                del parent.children[slot + 1]
                del parent.keys[slot]
        self._fix_underflow(parent, ancestors[:-1], slots[:-1])

    # -- scans ---------------------------------------------------------------

    def range_pages(self, start_key: int, count: int) -> List[int]:
        """Index+leaf pages touched by a short range scan."""
        _, path = self.get(start_key)
        pages = list(path)
        node = self._root
        while isinstance(node, _InteriorNode):
            slot = bisect.bisect_right(node.keys, start_key)
            node = node.children[slot]
        leaf: Optional[_LeafNode] = node
        remaining = count
        while leaf is not None and remaining > 0:
            if pages[-1] != leaf.page:
                pages.append(leaf.page)
            remaining -= len(leaf.keys)
            leaf = leaf.next_leaf
        return pages

    def check_invariants(self) -> None:
        """Validate key ordering and fanout bounds (test hook)."""
        def check(node, low, high):
            if isinstance(node, _LeafNode):
                assert node.keys == sorted(node.keys)
                for key in node.keys:
                    assert (low is None or key >= low)
                    assert (high is None or key < high)
                assert len(node.keys) <= self.leaf_capacity
                return
            assert len(node.children) == len(node.keys) + 1
            assert len(node.children) <= self.interior_fanout
            for i, child in enumerate(node.children):
                child_low = node.keys[i - 1] if i > 0 else low
                child_high = node.keys[i] if i < len(node.keys) else high
                check(child, child_low, child_high)

        check(self._root, None, None)


class MasstreeWorkload(Workload):
    """TailBench-style key-value service over the Masstree index."""

    name = "masstree"
    rob_occupancy = 56.0

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_keys: Optional[int] = None, zipf_s: float = 1.55,
                 ops_per_job: int = 10, compute_ns: float = 140.0,
                 write_fraction: float = 0.10,
                 scan_fraction: float = 0.05,
                 scan_length: int = 64) -> None:
        super().__init__(dataset_pages, seed)
        self.scan_fraction = scan_fraction
        self.scan_length = scan_length
        if num_keys is None:
            num_keys = min(1 << 16, max(1024, dataset_pages * 2))
        self.num_keys = num_keys
        self.ops_per_job = ops_per_job
        self.compute_ns = compute_ns
        self.write_fraction = write_fraction

        index_budget = max(16, dataset_pages // 8)
        value_budget = dataset_pages - index_budget
        expected_nodes = max(16, 2 * num_keys // LEAF_CAPACITY)
        self.tree = Masstree(SpreadHeap(0, index_budget, expected_nodes))
        value_heap = SpreadHeap(index_budget, value_budget, num_keys)
        build_rng = random.Random(seed)
        for key in range(num_keys):
            self.tree.insert(key, value_heap.allocate().page)
        self._zipf = ZipfianGenerator(num_keys, zipf_s, seed=seed + 1,
                                         permute=False)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.ops_per_job):
            key = self._zipf.sample()
            if self._rng.random() < self.scan_fraction:
                # Short range scan: after the root-to-leaf descent the
                # leaf chain is walked sequentially (Masstree range
                # queries); sequential leaf pages give spatial locality.
                for page in self.tree.range_pages(key, self.scan_length):
                    yield Step(self._compute(self.compute_ns * 0.5), page)
                continue
            is_write = self._rng.random() < self.write_fraction
            value_page, path = self.tree.get(key)
            if value_page is None:
                raise WorkloadError(f"key {key} missing from index")
            for page in path:
                yield Step(self._compute(self.compute_ns), page)
            yield Step(self._compute(self.compute_ns), value_page,
                       is_write=is_write)
