"""Flash substrate: device geometry, FTL, garbage collection, PCIe."""

from repro.flash.device import FlashDevice, FlashRequest
from repro.flash.ftl import Block, PageMappingFtl, PlaneState
from repro.flash.gc import GarbageCollector
from repro.flash.pcie import PCIeLink

__all__ = [
    "Block",
    "FlashDevice",
    "FlashRequest",
    "GarbageCollector",
    "PCIeLink",
    "PageMappingFtl",
    "PlaneState",
]
