"""Latency histograms and percentile estimation.

Two implementations:

* :class:`ExactReservoir` — stores every sample; exact percentiles.
  Used for service-time distributions where sample counts are modest.
* :class:`LogHistogram` — HdrHistogram-style logarithmic bucketing with
  bounded error; used for long tail-latency sweeps where millions of
  samples may be recorded.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.errors import ReproError


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Exact percentile (nearest-rank with linear interpolation) of a
    pre-sorted sequence.

    ``fraction`` is in [0, 1]; e.g. 0.99 for the 99th percentile.
    """
    if not sorted_samples:
        raise ReproError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"percentile fraction out of range: {fraction}")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    rank = fraction * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_samples[low])
    weight = rank - low
    return float(sorted_samples[low]) * (1 - weight) + float(sorted_samples[high]) * weight


class ExactReservoir:
    """Stores all samples for exact statistics."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True

    def record(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, fraction: float) -> float:
        self._ensure_sorted()
        return percentile(self._samples, fraction)

    def mean(self) -> float:
        if not self._samples:
            raise ReproError("mean of empty sample set")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        self._ensure_sorted()
        if not self._samples:
            raise ReproError("min of empty sample set")
        return self._samples[0]

    def max(self) -> float:
        self._ensure_sorted()
        if not self._samples:
            raise ReproError("max of empty sample set")
        return self._samples[-1]

    def samples(self) -> List[float]:
        """A sorted copy of all recorded samples."""
        self._ensure_sorted()
        return list(self._samples)


class LogHistogram:
    """Logarithmically-bucketed histogram with bounded relative error.

    Values are assigned to bucket ``floor(log(value, base))`` with
    ``sub`` linear sub-buckets per decade step, giving a worst-case
    relative error of roughly ``base**(1/sub) - 1``.
    """

    def __init__(self, min_value: float = 1.0, precision: int = 64) -> None:
        if min_value <= 0:
            raise ReproError("LogHistogram min_value must be positive")
        if precision < 2:
            raise ReproError("LogHistogram precision must be >= 2")
        self._min_value = min_value
        self._precision = precision
        self._log_base = math.log(2.0) / precision  # sub-buckets per octave
        self._buckets: dict = {}
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._min = float("inf")

    def _bucket_index(self, value: float) -> int:
        clamped = max(value, self._min_value)
        return int(math.log(clamped / self._min_value) / self._log_base)

    def _bucket_value(self, index: int) -> float:
        # Midpoint of the bucket in log space.
        return self._min_value * math.exp((index + 0.5) * self._log_base)

    def record(self, value: float) -> None:
        index = self._bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum += value
        self._max = max(self._max, value)
        self._min = min(self._min, value)

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        if self._count == 0:
            raise ReproError("mean of empty histogram")
        return self._sum / self._count

    def max(self) -> float:
        if self._count == 0:
            raise ReproError("max of empty histogram")
        return self._max

    def min(self) -> float:
        if self._count == 0:
            raise ReproError("min of empty histogram")
        return self._min

    def percentile(self, fraction: float) -> float:
        if self._count == 0:
            raise ReproError("percentile of empty histogram")
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"percentile fraction out of range: {fraction}")
        target = fraction * self._count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                return min(self._bucket_value(index), self._max)
        return self._max

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same params)."""
        if other._precision != self._precision or other._min_value != self._min_value:
            raise ReproError("cannot merge histograms with different parameters")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._count += other._count
        self._sum += other._sum
        if other._count:
            self._max = max(self._max, other._max)
            self._min = min(self._min, other._min)
