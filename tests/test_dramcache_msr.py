"""Unit tests for the in-DRAM Miss Status Row."""

import pytest

from repro.dramcache import MissStatusRow
from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.sim import Engine, spawn


def make_msr(capacity=4):
    engine = Engine()
    return engine, MissStatusRow(engine, capacity)


def test_allocate_and_lookup():
    engine, msr = make_msr()
    entry = msr.allocate(10, is_write=False)
    assert msr.lookup(10) is entry
    assert msr.lookup(11) is None
    assert len(msr) == 1


def test_duplicate_allocation_raises():
    engine, msr = make_msr()
    msr.allocate(10, is_write=False)
    with pytest.raises(ProtocolError):
        msr.allocate(10, is_write=False)


def test_capacity_enforced():
    engine, msr = make_msr(capacity=2)
    msr.allocate(1, False)
    msr.allocate(2, False)
    assert msr.is_full
    with pytest.raises(CapacityError):
        msr.allocate(3, False)


def test_coalesce_merges_write_intent():
    engine, msr = make_msr()
    entry = msr.allocate(5, is_write=False)
    msr.coalesce(5, is_write=True)
    assert entry.coalesced == 1
    assert entry.is_write


def test_coalesce_without_entry_raises():
    engine, msr = make_msr()
    with pytest.raises(ProtocolError):
        msr.coalesce(5, is_write=False)


def test_release_frees_space_and_wakes_waiter():
    engine, msr = make_msr(capacity=1)
    msr.allocate(1, False)
    woken = []

    def waiter():
        signal = msr.wait_for_free()
        assert signal is not None
        yield signal
        woken.append(engine.now)
        msr.allocate(2, False)

    def releaser():
        yield 100.0
        msr.release(1)

    spawn(engine, waiter())
    spawn(engine, releaser())
    engine.run()
    assert woken == [100.0]
    assert msr.lookup(2) is not None


def test_release_missing_entry_raises():
    engine, msr = make_msr()
    with pytest.raises(ProtocolError):
        msr.release(99)


def test_wait_for_free_returns_none_when_space():
    engine, msr = make_msr(capacity=2)
    assert msr.wait_for_free() is None


def test_peak_occupancy_tracked():
    engine, msr = make_msr(capacity=8)
    for page in range(5):
        msr.allocate(page, False)
    for page in range(5):
        msr.release(page)
    assert msr.peak_occupancy == 5


def test_zero_capacity_rejected():
    engine = Engine()
    with pytest.raises(ConfigurationError):
        MissStatusRow(engine, 0)
