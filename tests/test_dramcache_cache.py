"""Integration tests: DRAM cache + controllers + flash refills."""

import dataclasses

import pytest

from repro.config import DramCacheConfig, FlashConfig
from repro.dramcache import DramCache, build_timing
from repro.flash import FlashDevice
from repro.sim import Engine, spawn
from repro.units import US


def make_cache(cache_pages=64, assoc=4, dataset_pages=512, msr_entries=32,
               **cache_overrides):
    engine = Engine()
    flash_config = FlashConfig(
        channels=2, dies_per_channel=1, planes_per_die=2,
        pages_per_block=16, overprovisioning=0.5,
    )
    flash = FlashDevice(engine, flash_config, dataset_pages)
    cache_config = dataclasses.replace(
        DramCacheConfig(associativity=assoc, msr_entries=msr_entries),
        **cache_overrides,
    )
    cache = DramCache(engine, cache_config, cache_pages, flash)
    return engine, cache, flash


def test_warm_then_hit():
    engine, cache, flash = make_cache()
    cache.warm(range(16))
    result = cache.access(3)
    assert result.hit
    timing = build_timing(cache.config)
    assert result.latency_ns == pytest.approx(timing.hit_latency_ns)


def test_miss_refills_from_flash_and_then_hits():
    engine, cache, flash = make_cache()
    latencies = []

    def missing_thread():
        result = cache.access(100)
        assert not result.hit
        start = engine.now
        yield result.completion
        latencies.append(engine.now - start)
        replay = cache.access(100)
        assert replay.hit

    spawn(engine, missing_thread())
    engine.run()
    # The refill includes the ~50 us flash read.
    assert latencies[0] >= 50.0 * US
    assert latencies[0] < 70.0 * US
    assert flash.stats["reads"] == 1


def test_concurrent_misses_to_same_page_coalesce():
    engine, cache, flash = make_cache()
    completions = []

    def thread(tag):
        result = cache.access(200)
        assert not result.hit
        yield result.completion
        completions.append(tag)

    for tag in range(3):
        spawn(engine, thread(tag))
    engine.run()
    assert sorted(completions) == [0, 1, 2]
    assert flash.stats["reads"] == 1  # one refill serves all three
    assert cache.frontside.stats["coalesced_misses"] == 2


def test_write_miss_installs_dirty():
    engine, cache, flash = make_cache()

    def writer():
        result = cache.access(50, is_write=True)
        assert not result.hit
        yield result.completion

    spawn(engine, writer())
    engine.run()
    assert cache.organization.dirty_count() == 1


def test_dirty_eviction_writes_back_to_flash():
    # One-set cache so we control evictions precisely.
    engine, cache, flash = make_cache(cache_pages=4, assoc=4)
    num_sets = cache.organization.num_sets
    assert num_sets == 1

    def driver():
        # Fill all 4 ways with dirty pages via write misses.
        for page in range(4):
            result = cache.access(page, is_write=True)
            yield result.completion
        # A 5th page forces a dirty eviction.
        result = cache.access(4)
        yield result.completion
        # Give the async writeback time to finish.
        yield 2000.0 * US

    spawn(engine, driver())
    engine.run()
    assert cache.backside.stats["dirty_writebacks"] == 1
    assert flash.stats["writes"] == 1


def test_miss_ratio_reporting():
    engine, cache, flash = make_cache()
    cache.warm(range(8))
    done = []

    def driver():
        for page in range(8):
            assert cache.access(page).hit
        result = cache.access(400)
        yield result.completion
        done.append(True)

    spawn(engine, driver())
    engine.run()
    assert cache.miss_ratio() == pytest.approx(1 / 9)


def test_msr_capacity_backpressures_admission():
    # MSR of 2 with many distinct misses: all eventually complete.
    engine, cache, flash = make_cache(msr_entries=2)
    completed = []

    def thread(page):
        result = cache.access(page)
        assert not result.hit
        yield result.completion
        completed.append(page)

    pages = [100 + i for i in range(8)]
    for page in pages:
        spawn(engine, thread(page))
    engine.run()
    assert sorted(completed) == pages
    assert cache.backside.msr.peak_occupancy <= 2
    assert cache.backside.msr.stats["full_stalls"] > 0


def test_outstanding_misses_visible():
    engine, cache, flash = make_cache()
    result = cache.access(300)
    assert not result.hit
    # Let the BC accept it.
    engine.run(until=1.0 * US)
    assert cache.outstanding_misses == 1
    engine.run()
    assert cache.outstanding_misses == 0


def test_flat_partition_latency_is_one_dram_access():
    engine, cache, flash = make_cache()
    flat = cache.flat_access_latency_ns()
    timing = build_timing(cache.config)
    # Flat rows skip the tag machinery: never slower than a cached hit
    # (equal when way prediction overlaps the tag check).
    assert flat <= timing.hit_latency_ns
    # Without way prediction the serialized tag probe costs extra.
    import dataclasses
    serialized = build_timing(
        dataclasses.replace(cache.config, way_prediction=False)
    )
    assert flat < serialized.hit_latency_ns
