"""Tests for the ASO-style post-retirement speculation sandbox.

These verify the paper's central microarchitectural claim (Sec. IV-C4):
a committed store in the Store Buffer can be aborted on a DRAM-cache
miss, rewinding rename state to just before the store, without leaking
or corrupting physical registers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CoreConfig
from repro.cpu import InstructionKind, SpeculativeCore
from repro.errors import ProtocolError

ALU = InstructionKind.ALU
LOAD = InstructionKind.LOAD
STORE = InstructionKind.STORE


def small_core():
    return SpeculativeCore(CoreConfig(
        rob_entries=16,
        store_buffer_entries=4,
        base_physical_registers=24,
        registers_per_speculative_store=4,
        architectural_registers=8,
    ))


def drain(core):
    """Retire everything and complete all SB stores."""
    while len(core.rob):
        head = core.rob.head
        if not head.completed:
            core.complete(head.seq)
        core.retire()
    while len(core.store_buffer):
        core.complete_store()


class TestBasicPipeline:
    def test_alu_retire_frees_old_register(self):
        core = small_core()
        free_before = core.prf.free_count
        entry = core.fetch(ALU, dest_arch_reg=0)
        core.complete(entry.seq)
        core.retire()
        assert core.prf.free_count == free_before  # old freed, new live
        core.check_invariants()

    def test_store_moves_to_sb_on_retire(self):
        core = small_core()
        core.fetch(STORE, page=5)
        core.retire()
        assert len(core.store_buffer) == 1
        core.complete_store()
        assert len(core.store_buffer) == 0
        core.check_invariants()

    def test_stores_carry_no_dest(self):
        core = small_core()
        with pytest.raises(ProtocolError):
            core.fetch(STORE, dest_arch_reg=1, page=5)
        with pytest.raises(ProtocolError):
            core.fetch(STORE)  # no page
        with pytest.raises(ProtocolError):
            core.fetch(LOAD, dest_arch_reg=1)  # no page

    def test_quiesced_register_count(self):
        core = small_core()
        for _ in range(3):
            core.fetch(STORE, page=1)
            entry = core.fetch(ALU, dest_arch_reg=2)
            core.complete(entry.seq)
        drain(core)
        assert core.prf.allocated_count == core.quiesced_register_count()
        core.check_invariants()


class TestDeferredFrees:
    def test_retire_behind_sb_store_defers_free(self):
        core = small_core()
        core.fetch(STORE, page=9)
        alu = core.fetch(ALU, dest_arch_reg=3)
        core.complete(alu.seq)
        core.retire()  # store -> SB
        free_before = core.prf.free_count
        core.retire()  # ALU retires behind the SB store
        # The displaced register must NOT be freed yet.
        assert core.prf.free_count == free_before
        core.complete_store()
        assert core.prf.free_count == free_before + 1
        core.check_invariants()


class TestLoadAbort:
    def test_abort_load_unwinds_renames(self):
        core = small_core()
        mapping_before = core.map_table.snapshot()
        load = core.fetch(LOAD, dest_arch_reg=1, page=7)
        younger = core.fetch(ALU, dest_arch_reg=2)
        resume_pc = core.abort_load(load.seq)
        assert resume_pc == load.seq
        assert core.map_table.snapshot() == mapping_before
        assert len(core.rob) == 0
        core.check_invariants()

    def test_abort_load_keeps_older_instructions(self):
        core = small_core()
        older = core.fetch(ALU, dest_arch_reg=0)
        load = core.fetch(LOAD, dest_arch_reg=1, page=7)
        core.abort_load(load.seq)
        assert [e.seq for e in core.rob.entries()] == [older.seq]
        core.check_invariants()


class TestStoreAbort:
    def test_abort_committed_store_restores_pre_store_state(self):
        core = small_core()
        # Program: ALU r1; STORE; ALU r2; ALU r3  (all retire; store in SB)
        a1 = core.fetch(ALU, dest_arch_reg=1)
        store = core.fetch(STORE, page=11)
        # Rename happens in program order at fetch, so this is the
        # architectural map the abort must restore.
        expected_map = core.map_table.snapshot()
        a2 = core.fetch(ALU, dest_arch_reg=2)
        a3 = core.fetch(ALU, dest_arch_reg=3)
        for alu in (a1, a2, a3):
            core.complete(alu.seq)
        core.retire()  # a1
        core.retire()  # store -> SB
        core.retire()  # a2 (speculative behind store)
        core.retire()  # a3
        resume_pc = core.abort_store(store.seq)
        assert resume_pc == store.seq
        assert core.map_table.snapshot() == expected_map
        assert len(core.store_buffer) == 0
        core.check_invariants()
        # No register leaks: only architectural state remains.
        assert core.prf.allocated_count == core.quiesced_register_count()

    def test_abort_store_squashes_unretired_rob_too(self):
        core = small_core()
        store = core.fetch(STORE, page=4)
        core.retire()  # store -> SB
        core.fetch(ALU, dest_arch_reg=5)  # still in ROB
        core.abort_store(store.seq)
        assert len(core.rob) == 0
        assert core.prf.allocated_count == core.quiesced_register_count()
        core.check_invariants()

    def test_abort_middle_store_keeps_older_sb_stores(self):
        core = small_core()
        s1 = core.fetch(STORE, page=1)
        a1 = core.fetch(ALU, dest_arch_reg=1)
        s2 = core.fetch(STORE, page=2)
        expected_map = core.map_table.snapshot()  # map at s2's rename
        a2 = core.fetch(ALU, dest_arch_reg=2)
        core.complete(a1.seq)
        core.complete(a2.seq)
        core.retire()  # s1
        core.retire()  # a1 (window of s1)
        core.retire()  # s2
        core.retire()  # a2 (window of s2)
        core.abort_store(s2.seq)
        assert [e.seq for e in core.store_buffer.entries()] == [s1.seq]
        assert core.map_table.snapshot() == expected_map
        core.check_invariants()
        # s1 still abortable afterwards.
        core.abort_store(s1.seq)
        assert core.prf.allocated_count == core.quiesced_register_count()

    def test_abort_store_then_replay_succeeds(self):
        core = small_core()
        store = core.fetch(STORE, page=3)
        core.retire()
        core.abort_store(store.seq)
        # Replay the store (thread rescheduled, forward progress path).
        replay = core.fetch(STORE, page=3)
        core.retire()
        core.complete_store()
        assert core.prf.allocated_count == core.quiesced_register_count()
        core.check_invariants()


@st.composite
def instruction_streams(draw):
    """Random micro-op streams: (kind, dest, page) tuples."""
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from([ALU, LOAD, STORE]),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=15),
        ),
        min_size=1, max_size=24,
    ))
    return ops


class TestPropertyBased:
    @given(instruction_streams(), st.randoms())
    @settings(max_examples=80, deadline=None)
    def test_random_streams_preserve_invariants(self, ops, rng):
        core = small_core()
        in_rob = []
        for kind, dest, page in ops:
            if core.rob.is_full:
                break
            if kind == STORE and core.store_buffer.is_full:
                kind = ALU
            try:
                if kind == STORE:
                    entry = core.fetch(STORE, page=page)
                elif kind == LOAD:
                    entry = core.fetch(LOAD, dest_arch_reg=dest, page=page)
                else:
                    entry = core.fetch(ALU, dest_arch_reg=dest)
            except Exception:
                break
            in_rob.append(entry)
            # Randomly retire the head sometimes.
            if rng.random() < 0.5 and len(core.rob):
                head = core.rob.head
                if head.kind != STORE and not head.completed:
                    core.complete(head.seq)
                if not (head.kind == STORE and core.store_buffer.is_full):
                    core.retire()
            core.check_invariants()

        # Abort a random committed store if one exists.
        sb_entries = core.store_buffer.entries()
        if sb_entries:
            victim = rng.choice(sb_entries)
            core.abort_store(victim.seq)
            core.check_invariants()
        elif len(core.rob):
            core.abort_load(core.rob.entries()[0].seq)
            core.check_invariants()

        drain(core)
        core.check_invariants()
        assert core.prf.allocated_count == core.quiesced_register_count()
