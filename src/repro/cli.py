"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments``                 — list the regenerable paper artifacts
* ``run <experiment> [--scale]``  — regenerate one figure/table
* ``run-all [--scale]``           — regenerate everything
* ``trace-run <experiment>``      — traced run -> Chrome trace JSON
* ``report [--telemetry]``        — full report (+ tail attribution)
* ``simulate``                    — one ad-hoc simulation run
* ``workloads`` / ``configs``     — list registries
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import EVALUATED_CONFIG_NAMES, make_config
from repro.core import Runner
from repro.harness import EXPERIMENTS, run_experiment
from repro.units import US
from repro.workloads import (
    EVALUATED_WORKLOADS,
    PoissonArrivals,
    make_workload,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AstriFlash (HPCA 2023) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("experiments",
                        help="list regenerable paper artifacts")
    commands.add_parser("workloads", help="list workloads")
    commands.add_parser("configs", help="list system configurations")

    jobs_help = ("worker processes for independent simulations "
                 "(default: $REPRO_JOBS or 1 = in-process)")

    run_parser = commands.add_parser("run", help="regenerate one artifact")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", default="quick",
                            choices=("quick", "full"))
    run_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)

    all_parser = commands.add_parser("run-all",
                                     help="regenerate every artifact")
    all_parser.add_argument("--scale", default="quick",
                            choices=("quick", "full"))
    all_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)

    report_parser = commands.add_parser(
        "report", help="regenerate everything into a report file "
                       "(tables + ASCII charts)")
    report_parser.add_argument("--scale", default="quick",
                               choices=("quick", "full"))
    report_parser.add_argument("--out", default="repro_report.txt")
    report_parser.add_argument("--jobs", type=int, default=None,
                               help=jobs_help)
    report_parser.add_argument("--telemetry", action="store_true",
                               help="also run traced simulations and "
                                    "append the tail-latency attribution "
                                    "(Table-2-style component breakdown)")

    trace_parser = commands.add_parser(
        "trace-run", help="regenerate one artifact with request-lifecycle "
                          "tracing; writes Chrome trace-event JSON for "
                          "Perfetto / chrome://tracing")
    trace_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    trace_parser.add_argument("--scale", default="quick",
                              choices=("quick", "full"))
    trace_parser.add_argument("--out", default="trace.json",
                              help="Chrome trace-event JSON output path")
    trace_parser.add_argument("--sample", type=int, default=1,
                              help="trace one request in N (default 1 = "
                                   "every request)")
    trace_parser.add_argument("--telemetry-out", default=None,
                              metavar="CSV",
                              help="also write the time-series telemetry "
                                   "(MSR/queues/busy) as CSV")
    trace_parser.add_argument("--telemetry-interval-us", type=float,
                              default=5.0,
                              help="telemetry sampling period in "
                                   "simulated us (0 disables; default 5)")

    profile_parser = commands.add_parser(
        "profile", help="regenerate one artifact under cProfile and "
                        "report hotspots + kernel events/sec")
    profile_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    profile_parser.add_argument("--scale", default="quick",
                                choices=("quick", "full"))
    profile_parser.add_argument("--top", type=int, default=15,
                                help="hotspot rows to report (default 15)")
    profile_parser.add_argument("--json", dest="json_out", default=None,
                                metavar="PATH",
                                help="also write the report as JSON "
                                     "(e.g. BENCH_kernel.json for CI)")

    sim_parser = commands.add_parser("simulate", help="one ad-hoc run")
    sim_parser.add_argument("--config", default="astriflash",
                            choices=EVALUATED_CONFIG_NAMES)
    sim_parser.add_argument("--workload", default="tatp",
                            choices=EVALUATED_WORKLOADS)
    sim_parser.add_argument("--cores", type=int, default=2)
    sim_parser.add_argument("--dataset-pages", type=int, default=8192)
    sim_parser.add_argument("--zipf", type=float, default=1.7)
    sim_parser.add_argument("--measurement-us", type=float, default=3000.0)
    sim_parser.add_argument("--interarrival-us", type=float, default=None,
                            help="open-loop Poisson arrivals (default: "
                                 "closed loop)")
    sim_parser.add_argument("--seed", type=int, default=42)
    return parser


def cmd_experiments() -> int:
    for name in EXPERIMENTS:
        print(name)
    return 0


def cmd_workloads() -> int:
    for name in EVALUATED_WORKLOADS:
        print(name)
    return 0


def cmd_configs() -> int:
    for name in EVALUATED_CONFIG_NAMES:
        print(name)
    return 0


def cmd_run(experiment: str, scale: str, jobs: Optional[int]) -> int:
    result = run_experiment(experiment, scale=scale, jobs=jobs)
    print(result.format_table())
    return 0


def cmd_run_all(scale: str, jobs: Optional[int]) -> int:
    for name in EXPERIMENTS:
        print(run_experiment(name, scale=scale, jobs=jobs).format_table())
        print()
    return 0


def cmd_report(scale: str, out: str, jobs: Optional[int],
               telemetry: bool = False) -> int:
    from repro.harness.report import generate

    generate(
        EXPERIMENTS, scale=scale, jobs=jobs, out=out,
        header=(f"AstriFlash reproduction report (scale={scale}) — "
                "every paper table/figure regenerated"),
    )
    print(f"wrote {out}")
    if telemetry:
        breakdown = _telemetry_breakdown(scale)
        print()
        print(breakdown)
        with open(out, "a", encoding="utf-8") as handle:
            handle.write("\nTail-latency attribution "
                         "(traced, sampled requests)\n")
            handle.write("-" * 58 + "\n")
            handle.write(breakdown + "\n")
    return 0


def _telemetry_breakdown(scale: str) -> str:
    """Traced runs of the paper's headline designs -> Table-2-style
    per-percentile component breakdown."""
    from repro.harness.parallel import RunSpec
    from repro.obs import attribute, format_attribution, trace_specs

    specs = [
        RunSpec("astriflash", "tatp", scale),
        RunSpec("flash-sync", "tatp", scale),
        RunSpec("os-swap", "tatp", scale),
    ]
    tracer, _ = trace_specs(specs)
    return format_attribution(attribute(tracer.completed))


def cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.obs import (
        Tracer,
        attribute,
        format_attribution,
        trace_experiment,
        validate_chrome_trace,
        write_chrome_trace,
        write_telemetry_csv,
    )

    if args.sample < 1:
        print("trace-run: --sample must be >= 1", file=sys.stderr)
        return 2
    tracer = Tracer(
        sample_every=args.sample,
        telemetry_interval_ns=args.telemetry_interval_us * US,
    )
    tracer, result = trace_experiment(args.experiment, scale=args.scale,
                                      tracer=tracer)
    print(result.format_table())
    print()
    document = write_chrome_trace(tracer, args.out)
    summary = tracer.summary()
    print(f"trace: {args.out} ({len(document['traceEvents'])} events, "
          f"{summary['requests_traced']} of {summary['requests_seen']} "
          f"requests traced, {summary['dropped_events']} dropped)")
    if args.telemetry_out is not None:
        write_telemetry_csv(tracer.telemetry_rows, args.telemetry_out)
        print(f"telemetry: {args.telemetry_out} "
              f"({summary['telemetry_samples']} samples)")
    print()
    print(format_attribution(attribute(tracer.completed)))
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems[:10]:
            print(f"trace validation: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_profile(experiment: str, scale: str, top: int,
                json_out: Optional[str]) -> int:
    from repro.perf import profile_experiment

    report = profile_experiment(experiment, scale=scale, top=top)
    print(report.format_text())
    if json_out is not None:
        report.write_json(json_out)
        print(f"wrote {json_out}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = make_config(args.config)
    config.num_cores = args.cores
    config.scale.dataset_pages = args.dataset_pages
    config.scale.measurement_ns = args.measurement_us * US
    workload = make_workload(args.workload, args.dataset_pages,
                             seed=args.seed, zipf_s=args.zipf)
    arrivals = None
    if args.interarrival_us is not None:
        arrivals = PoissonArrivals(args.interarrival_us * US,
                                   seed=args.seed + 1)
    result = Runner(config, workload, arrivals=arrivals).run()
    print(result.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        return cmd_experiments()
    if args.command == "workloads":
        return cmd_workloads()
    if args.command == "configs":
        return cmd_configs()
    if args.command == "run":
        return cmd_run(args.experiment, args.scale, args.jobs)
    if args.command == "run-all":
        return cmd_run_all(args.scale, args.jobs)
    if args.command == "report":
        return cmd_report(args.scale, args.out, args.jobs, args.telemetry)
    if args.command == "trace-run":
        return cmd_trace_run(args)
    if args.command == "profile":
        return cmd_profile(args.experiment, args.scale, args.top,
                           args.json_out)
    if args.command == "simulate":
        return cmd_simulate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
