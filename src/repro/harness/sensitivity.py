"""Sensitivity studies beyond the paper's figures.

Two sweeps the paper's design discussion motivates but does not plot:

* :func:`dram_fraction_sweep` — AstriFlash throughput (vs DRAM-only) as
  the DRAM-cache fraction shrinks below / grows above the 3 % design
  point.  Complements Fig. 1 (which only measures miss ratio) by
  closing the loop through the full simulator.
* :func:`thread_count_sweep` — throughput vs user threads per core:
  the multiprogramming level must cover the flash stall
  (Sec. III-A's M/M/k argument predicts a knee around
  service/compute ≈ 6-8 threads; beyond that returns diminish).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.harness.common import (
    ExperimentResult,
    build_config,
    resolve_scale,
)
from repro.core import Runner
from repro.workloads import make_workload

DRAM_FRACTIONS: Sequence[float] = (0.01, 0.02, 0.03, 0.05, 0.10)
THREAD_COUNTS: Sequence[int] = (1, 2, 4, 8, 16, 48)


def dram_fraction_sweep(scale="quick", workload_name: str = "tatp",
                        seed: int = 42,
                        fractions: Sequence[float] = DRAM_FRACTIONS
                        ) -> ExperimentResult:
    """AstriFlash throughput vs DRAM-cache capacity fraction."""
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="sensitivity-dram-fraction",
        title=(f"Sensitivity: AstriFlash throughput vs DRAM fraction "
               f"({workload_name})"),
        columns=["dram_fraction", "throughput_vs_dram_only", "miss_ratio"],
        notes="The paper's 3% design point sits at the knee.",
    )
    baseline_config = build_config("dram-only", scale)
    workload = make_workload(workload_name, scale.dataset_pages, seed=seed,
                             **scale.workload_kwargs())
    baseline = Runner(baseline_config, workload).run()
    for fraction in fractions:
        config = build_config("astriflash", scale)
        config.scale.dram_fraction = fraction
        workload = make_workload(workload_name, scale.dataset_pages,
                                 seed=seed, **scale.workload_kwargs())
        outcome = Runner(config, workload).run()
        result.add_row(
            fraction,
            outcome.throughput_jobs_per_s / baseline.throughput_jobs_per_s,
            outcome.miss_ratio,
        )
    return result


def thread_count_sweep(scale="quick", workload_name: str = "tatp",
                       seed: int = 42,
                       thread_counts: Sequence[int] = THREAD_COUNTS
                       ) -> ExperimentResult:
    """AstriFlash throughput vs user-level threads per core."""
    scale = resolve_scale(scale)
    result = ExperimentResult(
        experiment="sensitivity-threads",
        title=(f"Sensitivity: AstriFlash throughput vs threads/core "
               f"({workload_name})"),
        columns=["threads_per_core", "throughput_jobs_per_s",
                 "core_busy_fraction"],
        notes=("One thread degenerates to Flash-Sync; the knee sits "
               "where the pool covers the flash stall (M/M/k)."),
    )
    for threads in thread_counts:
        config = build_config("astriflash", scale)
        config.ult = dataclasses.replace(
            config.ult, threads_per_core=threads,
            pending_queue_limit=max(1, threads),
        )
        workload = make_workload(workload_name, scale.dataset_pages,
                                 seed=seed, **scale.workload_kwargs())
        outcome = Runner(config, workload).run()
        result.add_row(threads, outcome.throughput_jobs_per_s,
                       outcome.core_busy_fraction)
    return result
