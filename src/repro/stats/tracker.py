"""Latency and throughput trackers for experiment measurement windows.

Experiments run with a warmup phase followed by a measurement window;
the trackers only record samples once :meth:`start_measurement` has
been called so warmup transients do not pollute the results.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.stats.histogram import ExactReservoir, LogHistogram
from repro.units import SECOND


class LatencyTracker:
    """Records per-request latencies inside the measurement window."""

    def __init__(self, exact: bool = True, name: str = "") -> None:
        self.name = name
        self._exact = exact
        self._reservoir = ExactReservoir() if exact else LogHistogram()
        self._measuring = False

    def start_measurement(self) -> None:
        """Open the measurement window.

        Opening (or re-opening) the window discards previously recorded
        samples — including warm-up samples slipped in via
        :meth:`record_always` — so a restarted window never leaks data
        from an earlier one.
        """
        self._reservoir = ExactReservoir() if self._exact else LogHistogram()
        self._measuring = True

    def stop_measurement(self) -> None:
        self._measuring = False

    @property
    def measuring(self) -> bool:
        return self._measuring

    def record(self, latency_ns: float) -> None:
        if self._measuring:
            self._reservoir.record(latency_ns)

    def record_always(self, latency_ns: float) -> None:
        """Record regardless of the measurement window (for debugging)."""
        self._reservoir.record(latency_ns)

    @property
    def count(self) -> int:
        return self._reservoir.count

    def mean(self) -> float:
        return self._reservoir.mean()

    def percentile(self, fraction: float) -> float:
        return self._reservoir.percentile(fraction)

    def p50(self) -> float:
        return self.percentile(0.50)

    def p99(self) -> float:
        return self.percentile(0.99)

    def samples(self):
        """Sorted raw samples when exact, else ``None``.

        The censoring correction in :mod:`repro.core.runner` merges
        unfinished-job ages into the recorded sample set; that needs
        the raw values, which only :class:`ExactReservoir` keeps.
        """
        if isinstance(self._reservoir, ExactReservoir):
            return self._reservoir.samples()
        return None


class ThroughputTracker:
    """Counts completions over the measurement window and reports a rate."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._completions = 0
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None

    def start_measurement(self, now_ns: float) -> None:
        self._window_start = now_ns
        self._completions = 0

    def stop_measurement(self, now_ns: float) -> None:
        if self._window_start is None:
            raise ReproError("stop_measurement before start_measurement")
        self._window_end = now_ns

    def record_completion(self, count: int = 1) -> None:
        if self._window_start is not None and self._window_end is None:
            self._completions += count

    @property
    def completions(self) -> int:
        return self._completions

    def rate_per_second(self) -> float:
        """Completions per second of simulated time."""
        if self._window_start is None or self._window_end is None:
            raise ReproError("throughput window not closed")
        elapsed = self._window_end - self._window_start
        if elapsed <= 0:
            raise ReproError("empty measurement window")
        return self._completions / (elapsed / SECOND)
