"""NAND flash device model.

The device exposes page-granularity reads and writes with the paper's
latencies (50 us reads, Sec. II) behind a PCIe link.  Internally it has
``channels x dies x planes`` independent plane servers plus per-channel
buses; requests queue at their plane, so concurrent misses spread over
the geometry and a hot plane (or one busy with GC) produces the
queueing tails the paper's backside controller must tolerate.

Reads of never-written pages model the pristine memory-mapped dataset:
they are served from the striped layout without FTL allocation.
Writes go through the :class:`~repro.flash.ftl.PageMappingFtl` and can
trigger garbage collection.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.system import FaultConfig, FlashConfig, WritesConfig
from repro.errors import CapacityError, ConfigurationError
from repro.faults.plan import FaultPlan
from repro.flash.ftl import PageMappingFtl
from repro.flash.gc import GarbageCollector
from repro.flash.pcie import PCIeLink
from repro.obs.tracer import active as _tracer_active
from repro.sim import Engine, Server, Signal, spawn
from repro.stats import CounterSet, LatencyTracker


class FlashRequest:
    """One read or write travelling through the device."""

    __slots__ = ("kind", "logical_page", "issue_time", "complete_time",
                 "blocked_by_gc", "plane_index", "signal", "num_bytes",
                 "failed")

    READ = "read"
    WRITE = "write"

    def __init__(self, kind: str, logical_page: int, issue_time: float,
                 signal: Signal) -> None:
        self.kind = kind
        self.logical_page = logical_page
        self.issue_time = issue_time
        self.complete_time: Optional[float] = None
        self.blocked_by_gc = False
        self.plane_index: Optional[int] = None
        self.signal = signal
        self.num_bytes: Optional[int] = None
        # True when fault injection declared the page uncorrectable:
        # the signal still fires (with this request) so the consumer
        # can count the failure and reissue.
        self.failed = False

    @property
    def latency_ns(self) -> float:
        if self.complete_time is None:
            raise ValueError("request not complete yet")
        return self.complete_time - self.issue_time

    def __repr__(self) -> str:
        return f"<FlashRequest {self.kind} page={self.logical_page}>"


class FlashDevice:
    """The SSD: geometry, FTL, GC and a PCIe front end."""

    def __init__(self, engine: Engine, config: FlashConfig,
                 num_logical_pages: int,
                 faults: Optional[FaultConfig] = None,
                 writes: Optional[WritesConfig] = None) -> None:
        if num_logical_pages < 1:
            raise ConfigurationError("flash needs at least one logical page")
        self.engine = engine
        self.config = config
        self.num_logical_pages = num_logical_pages

        self.ftl = PageMappingFtl(
            num_logical_pages=num_logical_pages,
            num_planes=config.num_planes,
            pages_per_block=config.pages_per_block,
            overprovisioning=config.overprovisioning,
        )
        self.planes: List[Server] = [
            Server(engine, capacity=1, name=f"plane{i}")
            for i in range(config.num_planes)
        ]
        self.channels: List[Server] = [
            Server(engine, capacity=1, name=f"channel{i}")
            for i in range(config.channels)
        ]
        self.pcie = PCIeLink(
            engine, config.pcie_bandwidth_gbps, config.pcie_latency_ns
        )
        self.gc = GarbageCollector(self)
        # Fault injection (DESIGN.md §4f): None unless explicitly
        # enabled, so the default read path stays byte-identical to the
        # golden fixtures.  The plan owns its RNG streams.
        self.faults: Optional[FaultPlan] = None
        if faults is not None and faults.enabled:
            self.faults = FaultPlan(faults, config.num_planes, self.ftl)
        # Write-path accounting (DESIGN.md §4j): None unless explicitly
        # enabled, so the default path adds no counters and stays
        # byte-identical to the golden fixtures.  Holding the config
        # (not a plan object) is enough — the write path itself is
        # always modelled; enablement only turns on the host/device
        # write bookkeeping and the BC admission policies.
        self.writes: Optional[WritesConfig] = None
        if writes is not None and writes.enabled:
            self.writes = writes
        # Device-side write cache: writes are acknowledged once
        # buffered; a background drain programs them to the planes.
        self.write_buffer = Server(engine, capacity=config.write_buffer_pages,
                                   name="write-buffer")
        self.stats = CounterSet("flash")
        self._tracer = _tracer_active()
        self.read_latency = LatencyTracker(exact=False, name="flash-read")
        self.read_latency.start_measurement()
        # Per-channel bus time to move one page at ~2 GB/s per channel.
        self._channel_transfer_ns = config.page_size / 2.0

    # -- public API -----------------------------------------------------------

    def read(self, logical_page: int,
             num_bytes: Optional[int] = None) -> Signal:
        """Issue a page read; the returned signal fires with the
        completed :class:`FlashRequest`.

        ``num_bytes`` below the page size models footprint-style
        partial fetches: NAND sensing still reads the full page inside
        the die, but only the requested bytes occupy the channel and
        PCIe link, which is where the bandwidth saving comes from.
        """
        if num_bytes is None:
            num_bytes = self.config.page_size
        if not 0 < num_bytes <= self.config.page_size:
            raise ConfigurationError(
                f"read size {num_bytes} outside (0, page_size]"
            )
        signal = Signal(self.engine, f"flash-read:{logical_page}")
        request = FlashRequest(
            FlashRequest.READ, logical_page, self.engine.now, signal
        )
        request.num_bytes = num_bytes
        spawn(self.engine, self._read_process(request),
              name=f"flash-read:{logical_page}")
        return signal

    def read_many(self, logical_pages,
                  num_bytes: Optional[int] = None) -> List[Signal]:
        """Issue a batch of page reads; signals in request order.

        The vector backend submits each epoch's flash completions per
        plane through this entry point: plane routing for the whole
        batch is resolved in one vectorized FTL pass
        (:meth:`~repro.flash.ftl.PageMappingFtl.plane_of_many`), then
        every read runs the ordinary per-request process in submission
        order — so a batch is event-for-event identical to the same
        sequence of :meth:`read` calls (the per-plane FIFO servers see
        the same arrival order, which is what keeps batching
        bit-identical).
        """
        if num_bytes is None:
            num_bytes = self.config.page_size
        if not 0 < num_bytes <= self.config.page_size:
            raise ConfigurationError(
                f"read size {num_bytes} outside (0, page_size]"
            )
        planes = self.ftl.plane_of_many(logical_pages)
        signals: List[Signal] = []
        engine = self.engine
        now = engine.now
        for position, page in enumerate(logical_pages):
            signal = Signal(engine, f"flash-read:{page}")
            request = FlashRequest(FlashRequest.READ, page, now, signal)
            request.num_bytes = num_bytes
            request.plane_index = planes[position]
            spawn(engine, self._read_process(request),
                  name=f"flash-read:{page}")
            signals.append(signal)
        if signals:
            self.stats.add("batched_reads", len(signals))
        return signals

    def write(self, logical_page: int) -> Signal:
        """Issue a 4 KiB page program (e.g. a dirty-page writeback)."""
        signal = Signal(self.engine, f"flash-write:{logical_page}")
        request = FlashRequest(
            FlashRequest.WRITE, logical_page, self.engine.now, signal
        )
        spawn(self.engine, self._write_process(request),
              name=f"flash-write:{logical_page}")
        return signal

    def average_read_latency_ns(self) -> float:
        """Mean observed read latency (used by the ULT aging policy)."""
        if self.read_latency.count == 0:
            return self.config.read_latency_ns
        return self.read_latency.mean()

    # -- internals -------------------------------------------------------------

    def _channel_of(self, plane_index: int) -> Server:
        planes_per_channel = (
            self.config.dies_per_channel * self.config.planes_per_die
        )
        return self.channels[plane_index // planes_per_channel]

    def _start_request(self, request: FlashRequest) -> Server:
        # read_many pre-routes whole batches through plane_of_many;
        # singleton reads resolve their plane here.
        plane_index = request.plane_index
        if plane_index is None:
            plane_index = self.ftl.plane_of(request.logical_page)
            request.plane_index = plane_index
        self.stats.add("requests")
        self.stats.add(f"{request.kind}s")
        if self.gc.plane_collecting(plane_index):
            request.blocked_by_gc = True
            self.stats.add("requests_blocked_by_gc")
        return self.planes[plane_index]

    def _read_process(self, request: FlashRequest):
        if self.faults is not None:
            yield from self._read_process_faulted(request)
            return
        plane = self._start_request(request)
        # Reads jump ahead of queued background programs (the
        # program-suspend-read priority of modern NAND controllers).
        grant = plane.acquire(high_priority=True)
        if grant is not None:
            yield grant
        tracer = self._tracer
        if tracer is not None:
            sense_start = self.engine.now
        yield self.config.read_latency_ns  # NAND sensing
        plane.release()
        if tracer is not None:
            tracer.complete(f"flash{request.plane_index}", "read",
                            sense_start, self.engine.now,
                            {"page": request.logical_page})
        yield from self._finish_read(request)

    def _finish_read(self, request: FlashRequest):
        """Post-sense read tail: channel burst, PCIe, completion."""
        num_bytes = request.num_bytes or self.config.page_size
        channel = self._channel_of(request.plane_index)
        grant = channel.acquire()
        if grant is not None:
            yield grant
        yield self._channel_transfer_ns * (num_bytes / self.config.page_size)
        channel.release()
        yield from self.pcie.transfer(num_bytes)
        request.complete_time = self.engine.now
        self.read_latency.record(request.latency_ns)
        request.signal.fire(request)

    def _read_process_faulted(self, request: FlashRequest):
        """Read path under fault injection (DESIGN.md §4f).

        The FaultPlan decides the read's fate up front; the process
        then charges the matching latencies: escalating-sense retry
        rounds while holding the plane, slow-plane multipliers,
        transient plane hangs (the completion fires *late* rather than
        never, so consumers without timeout machinery just see a slow
        read), uncorrectable pages (signal fires with
        ``request.failed`` set and no data transfer), and — once the
        plan marks a plane failing — the degraded mirror path that
        bypasses the plane entirely.
        """
        faults = self.faults
        plane = self._start_request(request)
        plane_index = request.plane_index
        tracer = self._tracer

        if faults.plane_failing(plane_index):
            # Graceful degradation: the failing plane is out of the
            # read path; its pages are served synchronously from the
            # mirror/remap copy at a degraded latency.  No plane
            # queueing (the mirror is uncontended by construction) but
            # the channel/PCIe tail is still paid.
            self.stats.add("degraded_reads")
            mirror_start = self.engine.now
            yield (self.config.read_latency_ns
                   * faults.config.degraded_read_multiplier)
            if tracer is not None:
                tracer.complete(f"flash{plane_index}", "degraded_read",
                                mirror_start, self.engine.now,
                                {"page": request.logical_page})
            yield from self._finish_read(request)
            return

        outcome = faults.read_outcome(plane_index, request.logical_page)
        grant = plane.acquire(high_priority=True)
        if grant is not None:
            yield grant
        sense_start = self.engine.now
        sense_ns = self.config.read_latency_ns * outcome.sense_multiplier
        if outcome.sense_multiplier != 1.0:
            self.stats.add("slow_plane_reads")
        yield sense_ns  # first NAND sense
        backoff = faults.config.read_retry_backoff
        for round_index in range(1, outcome.retry_rounds + 1):
            # Shifted-Vref re-read: each round senses again, slower.
            retry_start = self.engine.now
            self.stats.add("read_retries")
            yield sense_ns * (1.0 + backoff * round_index)
            if tracer is not None:
                tracer.complete(f"flash{plane_index}", "read_retry",
                                retry_start, self.engine.now,
                                {"page": request.logical_page,
                                 "round": round_index})
        if outcome.timeout_stall:
            # Transient plane/channel hang: the die stops responding
            # for a while but the operation eventually completes, so
            # the plane stays held (co-located reads queue behind the
            # hang — the plane-level outlier the BC must tolerate).
            self.stats.add("timeout_stalls")
            yield (self.config.read_latency_ns
                   * faults.config.timeout_stall_factor)
        plane.release()
        if tracer is not None:
            tracer.complete(f"flash{plane_index}", "read",
                            sense_start, self.engine.now,
                            {"page": request.logical_page,
                             "retries": outcome.retry_rounds})
        if outcome.retry_rounds and not outcome.uncorrectable:
            self.stats.add("ecc_recovered_reads")
        if outcome.uncorrectable:
            # ECC gave up inside the die: no data crosses the channel;
            # the consumer sees the failure and decides (the BC
            # reissues, capped by DeviceFailedError).
            self.stats.add("uncorrectable_reads")
            request.failed = True
            request.complete_time = self.engine.now
            request.signal.fire(request)
            return
        yield from self._finish_read(request)

    def _write_process(self, request: FlashRequest):
        # Host-to-device transfer, then admission to the write cache.
        yield from self.pcie.transfer(self.config.page_size)
        grant = self.write_buffer.acquire()
        if grant is not None:
            # Write cache full: the host sees backpressure.
            self.stats.add("write_buffer_stalls")
            yield grant
        # Foreground GC backpressure: if the target plane is down to
        # its reserve block the write stalls until GC reclaims space.
        target_plane = self.ftl.plane_of(request.logical_page)
        stalls = 0
        while self.ftl.gc_pressure(target_plane):
            self.gc.maybe_collect(target_plane)
            self.stats.add("write_gc_stalls")
            # Only hopeless stalls count toward the capacity abort:
            # while the plane still holds reclaimable garbage (or a GC
            # pass is mid-flight) the writer is merely queued behind
            # GC, and under a write burst many writers legitimately
            # wait several passes for a free page.
            if (self.ftl.has_reclaimable(target_plane)
                    or self.gc.plane_collecting(target_plane)):
                stalls = 0
            stalls += 1
            if stalls > 64:
                raise CapacityError(
                    f"plane {target_plane} cannot reclaim space: "
                    "logical capacity exceeds physical minus reserve"
                )
            yield self.config.erase_latency_ns / 4
        plane_index = self.ftl.write(request.logical_page)
        request.plane_index = plane_index
        # Writes share the per-plane accounting path with reads
        # (requests / kind / blocked-by-GC), so mixed read/write
        # queueing shows up in the same telemetry.
        plane = self._start_request(request)
        if self.writes is not None:
            self.stats.add("host_writes")
        # Acknowledge the host: the data is durable in the device cache.
        request.complete_time = self.engine.now
        request.signal.fire(request)
        # Background drain: program the page to its plane.
        channel = self._channel_of(plane_index)
        grant = channel.acquire()
        if grant is not None:
            yield grant
        yield self._channel_transfer_ns
        channel.release()
        grant = plane.acquire()
        if grant is not None:
            yield grant
        tracer = self._tracer
        if tracer is not None:
            program_start = self.engine.now
        yield self.config.program_latency_ns
        plane.release()
        if tracer is not None:
            tracer.complete(f"flash{plane_index}", "program",
                            program_start, self.engine.now,
                            {"page": request.logical_page})
        self.write_buffer.release()
        self.stats.add("programs_drained")
        if self.writes is not None:
            self.stats.add("device_writes")
        # Programs may create free-block pressure; GC runs off the
        # critical path (Sec. IV-B: writebacks are de-prioritized).
        self.gc.maybe_collect(plane_index)
