"""Tests for the experiment harness: every figure/table regenerates
with the paper's qualitative shape at quick scale."""

import math

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.harness.common import resolve_scale
from repro.harness.fig1 import lru_miss_ratio
from repro.harness.fig3 import max_load_within_slo


class TestInfrastructure:
    def test_registry_covers_every_artifact(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig9", "fig10", "table1", "table2",
            "gc_overheads",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig42")

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            resolve_scale("huge")

    def test_result_row_validation(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_format_table_renders(self):
        result = ExperimentResult("x", "Title", columns=["a", "b"])
        result.add_row(1, 2.5)
        text = result.format_table()
        assert "Title" in text
        assert "2.500" in text


class TestFig1:
    def test_lru_simulator(self):
        trace = [1, 2, 1, 3, 1, 2]
        assert lru_miss_ratio(trace, capacity_pages=2) == pytest.approx(4 / 6)
        assert lru_miss_ratio([], 4) == 0.0

    def test_miss_rate_decreases_with_capacity(self):
        result = run_experiment("fig1", scale="quick",
                                steps_per_workload=20_000)
        misses = result.column("miss_ratio")
        assert all(b <= a * 1.05 for a, b in zip(misses, misses[1:]))

    def test_knee_near_3_percent(self):
        result = run_experiment("fig1", scale="quick",
                                steps_per_workload=20_000)
        caps = result.column("dram_capacity_pct")
        misses = dict(zip(caps, result.column("miss_ratio")))
        # Going 1% -> 3% buys much more than 3% -> 10%.
        assert misses[1.0] - misses[3.0] > (misses[3.0] - misses[10.0])

    def test_bandwidth_order_of_magnitude(self):
        result = run_experiment("fig1", scale="quick",
                                steps_per_workload=20_000)
        caps = result.column("dram_capacity_pct")
        bw = dict(zip(caps, result.column("flash_bw_gbps_64cores")))
        # Paper: ~60 GB/s at the 3% knee for 64 cores.
        assert 20.0 < bw[3.0] < 150.0


class TestFig2:
    def test_paging_never_beats_ideal(self):
        result = run_experiment("fig2")
        for row in result.rows:
            assert row[2] <= row[1]

    def test_single_core_loses_about_half(self):
        result = run_experiment("fig2")
        first = result.rows[0]
        assert first[2] == pytest.approx(0.5, abs=0.05)

    def test_collapse_at_64_cores(self):
        result = run_experiment("fig2")
        last = result.rows[-1]
        assert last[0] == 64
        assert last[2] < 0.05  # shootdowns destroy scaling


class TestFig3:
    def test_curves_are_monotone_in_load(self):
        result = run_experiment("fig3")
        for config in ("dram-only", "astriflash"):
            series = result.column(config)
            finite = [v for v in series if math.isfinite(v)]
            assert finite == sorted(finite)

    def test_flash_sync_saturates_early(self):
        result = run_experiment("fig3")
        loads = result.column("load")
        sync = dict(zip(loads, result.column("flash-sync")))
        assert math.isinf(sync[0.3])
        assert math.isfinite(sync[0.1])

    def test_os_swap_saturates_near_half(self):
        result = run_experiment("fig3")
        loads = result.column("load")
        swap = dict(zip(loads, result.column("os-swap")))
        assert math.isfinite(swap[0.4])
        assert math.isinf(swap[0.7])

    def test_astriflash_tracks_dram_at_high_load(self):
        result = run_experiment("fig3")
        loads = result.column("load")
        dram = dict(zip(loads, result.column("dram-only")))
        astri = dict(zip(loads, result.column("astriflash")))
        # Within ~20% at 90% load (the Sec. III-A observation).
        assert astri[0.9] / dram[0.9] < 1.3

    def test_slo_40x_supports_high_load(self):
        sustained = max_load_within_slo(slo_factor=40.0)
        # Paper Sec. III-A: within ~20% of DRAM-only under a 40x SLO.
        assert sustained["astriflash"] >= sustained["dram-only"] - 0.25
        # Flash-Sync only survives at negligible load.
        assert sustained["flash-sync"] <= 0.10
        assert sustained["os-swap"] <= 0.55


class TestTable1:
    def test_lists_paper_parameters(self):
        result = run_experiment("table1")
        text = result.format_table()
        assert "Cortex-A76" in text
        assert "50 us" in text
        assert "100 ns switch" in text
        assert "256 GiB" in text


class TestGcOverheads:
    def test_blocking_scales_inversely_with_capacity(self):
        result = run_experiment("gc_overheads")
        rows = {row[0]: row[1] for row in result.rows}
        assert rows[256] == pytest.approx(0.04)
        assert rows[1024] == pytest.approx(0.01)
        assert rows[1024] < 0.01 + 1e-9  # paper: <1% at 1 TiB


@pytest.mark.slow
class TestSimulationExperiments:
    """The heavier simulation-backed artifacts (seconds each)."""

    def test_fig9_shape(self):
        result = run_experiment("fig9", scale="quick")
        geomean = result.rows[-1]
        assert geomean[0] == "geomean"
        columns = result.columns
        values = dict(zip(columns[1:], geomean[1:]))
        assert values["astriflash"] > 0.75
        assert values["flash-sync"] < values["os-swap"] < values["astriflash"]

    def test_table2_shape(self):
        result = run_experiment("table2", scale="quick")
        values = {row[0]: row[1] for row in result.rows}
        assert values["flash-sync"] == pytest.approx(1.0)
        assert values["astriflash"] < 1.6
        assert values["astriflash-nops"] > 2.0
        assert values["astriflash-nodp"] > 1.2

    def test_fig10_shape(self):
        result = run_experiment("fig10", scale="quick",
                                load_points=(0.3, 0.9))
        rows = {row[0]: row for row in result.rows}
        # AstriFlash p99 exceeds DRAM-only at low load (flash tail).
        assert rows[0.3][4] > rows[0.3][2]
        # Both sustain high load within a few percent.
        assert rows[0.9][3] > 0.8
