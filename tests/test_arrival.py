"""Tests for the pluggable arrival processes (repro.workloads.arrival)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrival_from_spec,
)

N_GAPS = 20_000


def empirical_mean(process, n=N_GAPS):
    return sum(process.next_gap_ns() for _ in range(n)) / n


class TestPoisson:
    def test_empirical_mean_matches(self):
        process = PoissonArrivals(1_000.0, seed=7)
        assert empirical_mean(process) == pytest.approx(1_000.0, rel=0.05)

    def test_seeded_determinism(self):
        a = PoissonArrivals(500.0, seed=11)
        b = PoissonArrivals(500.0, seed=11)
        assert [a.next_gap_ns() for _ in range(100)] == \
            [b.next_gap_ns() for _ in range(100)]

    def test_rate(self):
        assert PoissonArrivals(2_000.0).rate_per_second == \
            pytest.approx(5e5)


class TestMMPP:
    def make(self, streams=1, seed=3):
        return MMPPArrivals(
            mean_interarrival_ns=1_000.0, burst_interarrival_ns=250.0,
            mean_dwell_ns=90_000.0, burst_dwell_ns=10_000.0,
            seed=seed, streams=streams,
        )

    def test_stationary_rate(self):
        process = self.make()
        # 0.9 of time at 1/1000, 0.1 at 1/250 (per ns) -> 1.3e6 per s.
        assert process.rate_per_second == pytest.approx(1.3e6)

    def test_empirical_mean_matches_stationary_rate(self):
        process = self.make()
        expected_gap = 1e9 / process.rate_per_second
        assert empirical_mean(process, n=50_000) == \
            pytest.approx(expected_gap, rel=0.05)

    def test_transitions_happen_and_dwell_fractions_hold(self):
        process = self.make()
        in_burst = 0.0
        total = 0.0
        for _ in range(50_000):
            gap = process.next_gap_ns()
            total += gap
            if process.state == 1:
                in_burst += gap
        assert process.transitions > 10
        # ~10% of machine time should be spent in the burst state.
        assert in_burst / total == pytest.approx(0.1, abs=0.05)

    def test_seeded_determinism(self):
        a, b = self.make(seed=5), self.make(seed=5)
        assert [a.next_gap_ns() for _ in range(200)] == \
            [b.next_gap_ns() for _ in range(200)]
        assert a.transitions == b.transitions

    def test_streams_slow_dwell_consumption(self):
        # With N streams each handed-out gap only advances machine
        # time by gap/N, so N times more gaps fit per dwell episode.
        solo = self.make(streams=1)
        shared = self.make(streams=4)
        for _ in range(20_000):
            solo.next_gap_ns()
            shared.next_gap_ns()
        assert shared.transitions < solo.transitions

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(0.0, 250.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(1_000.0, 250.0, streams=0)


class TestDiurnal:
    def test_empirical_mean_matches(self):
        process = DiurnalArrivals(1_000.0, period_ns=50_000.0,
                                  amplitude=0.5, seed=9)
        assert empirical_mean(process, n=50_000) == \
            pytest.approx(1_000.0, rel=0.05)

    def test_rate_modulation_peak_vs_trough(self):
        process = DiurnalArrivals(1_000.0, period_ns=1_000_000.0,
                                  amplitude=0.5)
        peak = process.rate_at(250_000.0)    # sin = +1
        trough = process.rate_at(750_000.0)  # sin = -1
        assert peak == pytest.approx(1.5e-3)
        assert trough == pytest.approx(0.5e-3)
        assert math.isclose(process.rate_at(0.0), 1e-3)

    def test_seeded_determinism(self):
        a = DiurnalArrivals(800.0, 40_000.0, seed=13)
        b = DiurnalArrivals(800.0, 40_000.0, seed=13)
        assert [a.next_gap_ns() for _ in range(200)] == \
            [b.next_gap_ns() for _ in range(200)]

    def test_rejects_bad_amplitude(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1_000.0, 50_000.0, amplitude=1.0)


class TestTrace:
    def test_replays_exact_gaps_then_exhausts(self):
        process = TraceArrivals([10.0, 20.0, 30.0])
        assert [process.next_gap_ns() for _ in range(3)] == \
            [10.0, 20.0, 30.0]
        assert not process.exhausted
        assert process.next_gap_ns() is None
        assert process.exhausted
        assert process.next_gap_ns() is None  # stays exhausted

    def test_cycle_wraps(self):
        process = TraceArrivals([5.0, 7.0], cycle=True)
        assert [process.next_gap_ns() for _ in range(5)] == \
            [5.0, 7.0, 5.0, 7.0, 5.0]
        assert not process.exhausted

    def test_from_timestamps(self):
        process = TraceArrivals.from_timestamps([100.0, 150.0, 250.0])
        assert [process.next_gap_ns() for _ in range(2)] == [50.0, 100.0]
        assert process.next_gap_ns() is None

    def test_rate(self):
        assert TraceArrivals([500.0, 1_500.0]).rate_per_second == \
            pytest.approx(1e6)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([])
        with pytest.raises(ConfigurationError):
            TraceArrivals([10.0, -1.0])
        with pytest.raises(ConfigurationError):
            TraceArrivals.from_timestamps([100.0])


class TestSpecFactory:
    def test_none_is_closed_loop(self):
        assert arrival_from_spec(None) is None

    def test_poisson_round_trip(self):
        built = arrival_from_spec(("poisson", 1_000.0, 7))
        direct = PoissonArrivals(1_000.0, seed=7)
        assert [built.next_gap_ns() for _ in range(50)] == \
            [direct.next_gap_ns() for _ in range(50)]

    def test_mmpp_round_trip(self):
        spec = ("mmpp", 1_000.0, 250.0, 90_000.0, 10_000.0, 3, 2)
        built = arrival_from_spec(spec)
        direct = MMPPArrivals(1_000.0, 250.0, mean_dwell_ns=90_000.0,
                              burst_dwell_ns=10_000.0, seed=3, streams=2)
        assert [built.next_gap_ns() for _ in range(100)] == \
            [direct.next_gap_ns() for _ in range(100)]

    def test_diurnal_round_trip(self):
        spec = ("diurnal", 1_000.0, 50_000.0, 0.4, 5, 2)
        built = arrival_from_spec(spec)
        direct = DiurnalArrivals(1_000.0, 50_000.0, amplitude=0.4,
                                 seed=5, streams=2)
        assert [built.next_gap_ns() for _ in range(100)] == \
            [direct.next_gap_ns() for _ in range(100)]

    def test_trace_round_trip(self):
        built = arrival_from_spec(("trace", (1.0, 2.0), False))
        assert [built.next_gap_ns() for _ in range(2)] == [1.0, 2.0]
        assert built.next_gap_ns() is None

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            arrival_from_spec(("sawtooth", 1.0))
