"""Chaos sweeps: degradation curves under injected flash faults.

``python -m repro chaos <experiment> --rber-sweep 0,2e-3,8e-3`` reruns
an experiment's flash-backed presets across a range of injected raw bit
error rates and reports how throughput and p99 service latency degrade
— the resilience analogue of the paper's tail-latency figures.  Each
``(preset, rber)`` cell is one independent simulation, so the whole
grid fans out through :mod:`repro.harness.parallel` and shares warm-
state snapshots (fault knobs are not part of the warm key: faults only
fire on reads, and warmup never runs the engine).

Severity coupling: the swept variable is the RBER; transient-timeout
probability scales with it (``timeout_coupling``), slow planes and
wear coupling switch on for every faulted point.  The rber = 0 point
runs with faults *disabled* — the clean baseline the curve hangs off.

Determinism: every cell uses the same simulation seed and one fixed
``fault_seed``, so two invocations produce identical curves (the
acceptance bar for ``BENCH_chaos.json``).
"""

from __future__ import annotations

import importlib
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.harness.common import build_config, resolve_scale
from repro.jsonutil import dumps as json_dumps
from repro.sim import vector as _vector
from repro.harness.parallel import (
    ParallelRunError,
    RunSpec,
    execute_spec,
    run_specs,
)

#: Bump when the JSON layout of :class:`ChaosBench` changes so CI
#: consumers of ``BENCH_chaos.json`` can detect incompatible files.
#: v2: added the ``execution`` backend-accounting block (backend name,
#: vector/scalar cell counts, per-kind and per-fallback-reason
#: histograms).
CHAOS_SCHEMA_VERSION = 2

#: Presets used when an experiment module exposes no ``CONFIGS`` tuple.
DEFAULT_PRESETS: Tuple[str, ...] = ("astriflash", "flash-sync")

#: Default sweep: clean baseline versus a retry-storm error rate.  The
#: two points are deliberately far apart so the degradation signal
#: dwarfs scheduling noise for every preset — the monotone-p99 property
#: CI asserts.  Dense curves (``--rber-sweep 0,2e-3,4e-3,8e-3``) are
#: exploratory: around the degradation threshold, marking a plane
#: failing reroutes its reads to the uncontended mirror, which can
#: *flatten or heal* the tail between mid and high fault rates.
DEFAULT_RBER_POINTS: Tuple[float, ...] = (0.0, 8e-3)

#: Fault counters lifted out of ``SimulationResult.counters`` per cell.
FAULT_COUNTER_KEYS: Tuple[str, ...] = (
    "flash.read_retries",
    "flash.ecc_recovered_reads",
    "flash.uncorrectable_reads",
    "flash.timeout_stalls",
    "flash.slow_plane_reads",
    "flash.degraded_reads",
    "flash.bc_timeouts",
    "flash.bc_reissues",
    "flash.bc_uncorrectable_replies",
    "flash.bc_fault_stall_ns",
)


@dataclass
class ChaosCell:
    """One (preset, rber) point of the degradation grid."""

    preset: str
    rber: float
    throughput_jobs_per_s: float = 0.0
    service_p99_ns: float = 0.0
    service_mean_ns: float = 0.0
    fault_counters: dict = field(default_factory=dict)
    #: True when the run surfaced DeviceFailedError (reissue cap hit):
    #: the device is modelled as dead at this fault rate.
    failed: bool = False


@dataclass
class ChaosBench:
    """Everything one chaos sweep produced, schema-stamped for CI."""

    experiment: str
    scale: str
    workload: str
    fault_seed: int
    rber_points: List[float]
    presets: List[str]
    cells: List[ChaosCell]
    #: True iff every preset's p99 series is non-decreasing across the
    #: rber points (failed cells excluded) — the acceptance property.
    monotonic_p99: bool = True
    schema_version: int = CHAOS_SCHEMA_VERSION
    config_preset: str = ""  # HarnessScale.name the run resolved to
    #: Backend accounting (schema v2): which execution backend the
    #: sweep requested and, per run shape, how many cells the vector
    #: backend accepted (``vector_kinds``) versus fell back on
    #: (``fallback_reasons``).  Derived from config facts only, so it
    #: is deterministic — but it names the backend, so CI byte-diffs
    #: across backends must exclude this key.
    execution: dict = field(default_factory=dict)

    def curve(self, preset: str) -> List[ChaosCell]:
        """The preset's cells in sweep order."""
        return [cell for cell in self.cells if cell.preset == preset]

    def format_text(self) -> str:
        lines = [
            f"chaos sweep: {self.experiment} (scale={self.scale}, "
            f"workload={self.workload}, fault_seed={self.fault_seed})",
            f"  p99 monotone across sweep: "
            f"{'yes' if self.monotonic_p99 else 'NO'}",
        ]
        for preset in self.presets:
            lines.append(f"  {preset}:")
            lines.append(
                f"    {'rber':>8}  {'jobs/s':>10}  {'p99 us':>9}  "
                f"{'retries':>8}  {'timeouts':>8}  {'reissues':>8}  "
                f"{'degraded':>8}"
            )
            for cell in self.curve(preset):
                if cell.failed:
                    lines.append(
                        f"    {cell.rber:>8.1e}  {'device failed':>10}"
                    )
                    continue
                counters = cell.fault_counters
                lines.append(
                    f"    {cell.rber:>8.1e}  "
                    f"{cell.throughput_jobs_per_s:>10,.0f}  "
                    f"{cell.service_p99_ns / 1000.0:>9.1f}  "
                    f"{counters.get('flash.read_retries', 0.0):>8.0f}  "
                    f"{counters.get('flash.bc_timeouts', 0.0):>8.0f}  "
                    f"{counters.get('flash.bc_reissues', 0.0):>8.0f}  "
                    f"{counters.get('flash.degraded_reads', 0.0):>8.0f}"
                )
        return "\n".join(lines)

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def key_metrics(self) -> dict:
        """Registry-namespace projection for the run ledger."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).metrics

    def fingerprint(self) -> str:
        """Deterministic digest over the cells (ledger identity)."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).fingerprint


def parse_rber_sweep(text: str) -> Tuple[float, ...]:
    """Parse a ``--rber-sweep`` comma list into sorted unique floats."""
    points = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            value = float(token)
        except ValueError:
            raise ReproError(f"bad rber sweep point {token!r}") from None
        if not 0.0 <= value < 1.0:
            raise ReproError(f"rber sweep point {value} outside [0, 1)")
        points.append(value)
    if not points:
        raise ReproError("rber sweep needs at least one point")
    return tuple(sorted(set(points)))


def fault_overrides(rber: float, fault_seed: int,
                    timeout_coupling: float = 2.0,
                    slow_plane_fraction: float = 1.0 / 16.0,
                    wear_rber_factor: float = 0.05,
                    ) -> Tuple[Tuple[str, object], ...]:
    """Config overrides for one faulted sweep point.

    ``rber = 0`` returns no overrides: the clean baseline runs with
    faults disabled so its stats are bit-identical to a normal run.
    """
    if rber == 0.0:
        return ()
    return (
        ("faults.enabled", True),
        ("faults.seed", fault_seed),
        ("faults.rber", rber),
        ("faults.timeout_probability", min(0.25, rber * timeout_coupling)),
        ("faults.slow_plane_fraction", slow_plane_fraction),
        ("faults.wear_rber_factor", wear_rber_factor),
    )


def _experiment_presets(experiment: str) -> Tuple[str, ...]:
    """Flash-backed presets for ``experiment`` (its ``CONFIGS`` tuple
    minus dram-only, falling back to :data:`DEFAULT_PRESETS`)."""
    from repro.harness import EXPERIMENTS  # deferred: heavy

    if experiment not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment!r}; known: {known}"
        )
    module = importlib.import_module(f"repro.harness.{experiment}")
    configs = getattr(module, "CONFIGS", None)
    if not configs:
        return DEFAULT_PRESETS
    flash_backed = tuple(name for name in configs if name != "dram-only")
    return flash_backed or DEFAULT_PRESETS


def _check_monotonic(bench: ChaosBench) -> bool:
    for preset in bench.presets:
        last = None
        for cell in bench.curve(preset):
            if cell.failed:
                continue
            if last is not None and cell.service_p99_ns < last:
                return False
            last = cell.service_p99_ns
    return True


def run_chaos(experiment: str = "fig9", scale="quick",
              rber_points: Optional[Sequence[float]] = None,
              fault_seed: int = 0xF1A5, seed: int = 42,
              workload: Optional[str] = None,
              presets: Optional[Sequence[str]] = None,
              jobs: Optional[int] = None,
              snapshots: Optional[bool] = None,
              snapshot_dir=None,
              backend: Optional[str] = None) -> ChaosBench:
    """Sweep injected fault rates and build the degradation curves.

    ``backend`` selects the execution backend for every cell (default:
    :func:`repro.sim.vector.preferred_backend` — vector unless
    ``$REPRO_BACKEND`` overrides); faulted cells fall back per run and
    the ``execution`` block accounts for both populations.
    """
    scale = resolve_scale(scale)
    backend = _vector.preferred_backend(backend)
    if rber_points is None:
        rber_points = DEFAULT_RBER_POINTS
    rber_points = tuple(sorted(set(float(p) for p in rber_points)))
    if presets is None:
        presets = _experiment_presets(experiment)
    presets = tuple(presets)
    if workload is None:
        workload = "tatp" if "tatp" in scale.workloads \
            else scale.workloads[0]

    grid = [(preset, rber) for preset in presets for rber in rber_points]
    specs = [
        RunSpec(preset, workload, scale, seed=seed,
                config_overrides=fault_overrides(rber, fault_seed))
        for preset, rber in grid
    ]
    try:
        results = run_specs(specs, jobs=jobs, snapshots=snapshots,
                            snapshot_dir=snapshot_dir, backend=backend)
    except ParallelRunError:
        # Some point of the grid died (DeviceFailedError at an extreme
        # fault rate).  Re-run cell by cell so the surviving points
        # still produce a curve and the dead ones are marked.
        results = []
        for spec in specs:
            try:
                results.append(execute_spec(spec, snapshots=snapshots,
                                            snapshot_dir=snapshot_dir,
                                            backend=backend))
            except ReproError:
                results.append(None)

    cells = []
    for (preset, rber), result in zip(grid, results):
        if result is None:
            cells.append(ChaosCell(preset=preset, rber=rber, failed=True))
            continue
        counters = {
            key: result.counters[key]
            for key in FAULT_COUNTER_KEYS if key in result.counters
        }
        cells.append(ChaosCell(
            preset=preset,
            rber=rber,
            throughput_jobs_per_s=result.throughput_jobs_per_s,
            service_p99_ns=result.service_p99_ns,
            service_mean_ns=result.service_mean_ns,
            fault_counters=counters,
        ))

    bench = ChaosBench(
        experiment=experiment,
        scale=scale.name,
        workload=workload,
        fault_seed=fault_seed,
        rber_points=list(rber_points),
        presets=list(presets),
        cells=cells,
        config_preset=scale.name,
    )
    bench.monotonic_p99 = _check_monotonic(bench)

    # Backend accounting (schema v2): classified from config facts so
    # the block is identical whether cells executed or came from the
    # cache.  Chaos cells are closed-loop; rber > 0 activates a fault
    # plan (per-read outcome draws), which the vector backend refuses.
    shape_counts = []
    for preset in presets:
        config = build_config(preset, scale)
        for rber in rber_points:
            shape_counts.append((config.mode, config.num_cores, False,
                                 rber > 0.0, 1))
    bench.execution = _vector.execution_summary(backend, shape_counts)
    return bench
