"""TLB model with LRU replacement and shootdown invalidation."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigurationError
from repro.stats import CounterSet


class Tlb:
    """A single-level TLB (stands in for the paper's L1/L2 hierarchy)."""

    def __init__(self, entries: int, name: str = "tlb") -> None:
        if entries < 1:
            raise ConfigurationError("TLB needs at least one entry")
        self.capacity = entries
        self.name = name
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self.stats = CounterSet(name)

    def lookup(self, vpn: int) -> Optional[int]:
        """Translate; None on a TLB miss."""
        ppn = self._entries.get(vpn)
        if ppn is None:
            self.stats.add("misses")
            return None
        self._entries.move_to_end(vpn)
        self.stats.add("hits")
        return ppn

    def insert(self, vpn: int, ppn: int) -> None:
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            self._entries[vpn] = ppn
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.add("evictions")
        self._entries[vpn] = ppn

    def invalidate(self, vpn: int) -> bool:
        """Shootdown of one translation; True if it was present."""
        present = self._entries.pop(vpn, None) is not None
        if present:
            self.stats.add("invalidations")
        return present

    def flush(self) -> int:
        """Full flush (context switch without ASID support)."""
        count = len(self._entries)
        self._entries.clear()
        self.stats.add("flushes")
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def hit_ratio(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        if total == 0:
            return 0.0
        return self.stats["hits"] / total
