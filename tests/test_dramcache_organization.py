"""Unit tests for the DRAM-cache organization (sets/ways/LRU/reservations)."""

import pytest

from repro.dramcache import DramCacheOrganization
from repro.errors import ConfigurationError, ProtocolError


def make_org(pages=32, assoc=4):
    return DramCacheOrganization(num_pages=pages, associativity=assoc)


def test_geometry():
    org = make_org(pages=32, assoc=4)
    assert org.num_sets == 8
    assert org.capacity_pages == 32


def test_lookup_miss_then_hit_after_install():
    org = make_org()
    assert not org.lookup(5)
    assert org.reserve_victim(5) is None  # free way available
    org.install(5)
    assert org.lookup(5)
    assert org.miss_ratio() == pytest.approx(0.5)


def test_write_hit_sets_dirty():
    org = make_org()
    org.populate(3)
    org.lookup(3, is_write=True)
    assert org.dirty_count() == 1


def test_lru_eviction_order():
    org = make_org(pages=4, assoc=4)  # one set
    for page in range(4):
        org.populate(page)
    org.lookup(0)  # page 0 becomes MRU
    evicted = org.reserve_victim(4)
    assert evicted is not None
    assert evicted.page == 1  # LRU among 1,2,3


def test_eviction_reports_dirtiness():
    org = make_org(pages=4, assoc=4)
    for page in range(4):
        org.populate(page)
    org.lookup(2, is_write=True)
    for page in (0, 1, 3):
        org.lookup(page)  # make page 2 LRU but dirty? touch others after
    # Force page 2 to be the LRU: re-touch everything else.
    evicted = org.reserve_victim(4)
    assert evicted.page == 2
    assert evicted.dirty


def test_reserved_way_cannot_be_victimized():
    org = make_org(pages=2, assoc=2)  # one set, two ways
    org.populate(0)
    org.populate(2)  # wait -- set index: page % num_sets; num_sets=1
    org.reserve_victim(4)  # evicts LRU (page 0), reserves the way
    evicted = org.reserve_victim(6)  # must take the other way
    assert evicted.page == 2
    with pytest.raises(ProtocolError):
        org.reserve_victim(8)  # all ways reserved now


def test_double_reservation_for_same_page_raises():
    org = make_org()
    org.reserve_victim(1)
    with pytest.raises(ProtocolError):
        org.reserve_victim(1)


def test_install_without_reservation_raises():
    org = make_org()
    with pytest.raises(ProtocolError):
        org.install(9)


def test_cancel_reservation():
    org = make_org()
    org.reserve_victim(7)
    org.cancel_reservation(7)
    with pytest.raises(ProtocolError):
        org.cancel_reservation(7)


def test_populate_is_idempotent():
    org = make_org()
    assert org.populate(11) is None
    assert org.populate(11) is None
    assert org.occupancy() == 1


def test_occupancy_counts_valid_pages():
    org = make_org(pages=8, assoc=2)
    for page in range(5):
        org.populate(page)
    assert org.occupancy() == 5


def test_contains_has_no_lru_side_effect():
    org = make_org(pages=2, assoc=2)
    org.populate(0)
    org.populate(2)
    # 'contains' on page 0 must not promote it.
    assert org.contains(0)
    evicted = org.reserve_victim(4)
    assert evicted.page == 0


def test_invalid_geometry_raises():
    with pytest.raises(ConfigurationError):
        DramCacheOrganization(num_pages=2, associativity=4)
    with pytest.raises(ConfigurationError):
        DramCacheOrganization(num_pages=8, associativity=0)
