"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListingCommands:
    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table2" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tatp" in out and "masstree" in out

    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "astriflash" in out and "flash-sync" in out


class TestRunCommands:
    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig42"])

    def test_run_accepts_jobs_flag(self, capsys):
        assert main(["run", "fig2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_simulate_closed_loop(self, capsys):
        assert main([
            "simulate", "--config", "dram-only", "--workload", "arrayswap",
            "--dataset-pages", "2048", "--measurement-us", "800",
        ]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_simulate_open_loop(self, capsys):
        assert main([
            "simulate", "--config", "dram-only", "--workload", "arrayswap",
            "--dataset-pages", "2048", "--measurement-us", "800",
            "--interarrival-us", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "jobs/s" in out

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportCommand:
    def test_report_writes_file(self, tmp_path, capsys, monkeypatch):
        # Patch the registry down to cheap analytic artifacts.
        import repro.cli as cli
        from repro.harness import EXPERIMENTS
        cheap = {k: EXPERIMENTS[k] for k in ("table1", "fig2", "fig3")}
        monkeypatch.setattr(cli, "EXPERIMENTS", cheap)
        out = str(tmp_path / "report.txt")
        assert cli.main(["report", "--out", out]) == 0
        content = open(out).read()
        assert "Table I" in content and "Fig. 3" in content
