"""Tests for the fault-injection & resilience subsystem (repro.faults):
the ECC error math, the seeded FaultPlan, device-level retry/timeout/
degraded paths, BC reissue accounting, and the chaos-sweep harness."""

import dataclasses

import pytest

from repro import errors
from repro.config import DramCacheConfig, FaultConfig, FlashConfig, \
    SystemConfig
from repro.dramcache import DramCache
from repro.errors import ConfigurationError, DeviceFailedError, \
    FlashTimeoutError, ProtocolError, ReproError
from repro.faults import FaultPlan, describe_outcome, effective_rber, \
    page_failure_probability, poisson_tail
from repro.faults.chaos import ChaosBench, ChaosCell, \
    CHAOS_SCHEMA_VERSION, _check_monotonic, fault_overrides, \
    parse_rber_sweep
from repro.flash import FlashDevice
from repro.sim import Engine, spawn
from repro.units import US


def make_fault_config(**overrides) -> FaultConfig:
    return dataclasses.replace(FaultConfig(enabled=True), **overrides)


def make_plan(num_planes=8, **overrides) -> FaultPlan:
    return FaultPlan(make_fault_config(**overrides), num_planes)


def make_device(pages=256, faults=None, **flash_overrides):
    engine = Engine()
    config = dataclasses.replace(
        FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                    pages_per_block=8, overprovisioning=0.5),
        **flash_overrides,
    )
    device = FlashDevice(engine, config, pages, faults=faults)
    return engine, device


def read_one(engine, device, page=3):
    results = []

    def reader():
        request = yield device.read(page)
        results.append(request)

    spawn(engine, reader())
    engine.run()
    return results[0]


class TestErrorMath:
    def test_poisson_tail_zero_rate_has_no_mass(self):
        assert poisson_tail(5, 0.0) == 0.0

    def test_poisson_tail_underflow_guard(self):
        # exp(-800) underflows; the mass sits at ~800 +- 28, so any
        # realistic ECC threshold is deep below it.
        assert poisson_tail(40, 800.0) == 1.0
        assert poisson_tail(900, 800.0) == 0.0

    def test_poisson_tail_monotone_in_rate(self):
        low = poisson_tail(40, 30.0)
        high = poisson_tail(40, 50.0)
        assert 0.0 < low < high < 1.0

    def test_page_failure_waterfall(self):
        geometry = dict(codewords_per_page=4, codeword_bits=9216,
                        correctable_bits=40)
        assert page_failure_probability(0.0, **geometry) == 0.0
        below = page_failure_probability(1e-3, **geometry)
        above = page_failure_probability(8e-3, **geometry)
        assert below < 1e-6          # lambda ~ 9 against t = 40
        assert above > 0.99          # lambda ~ 74: past the waterfall
        assert page_failure_probability(0.5, **geometry) == 1.0

    def test_effective_rber_combines_wear_and_retry(self):
        rate = effective_rber(1e-3, erase_count=10, wear_rber_factor=0.1,
                              retry_round=2, retry_rber_scale=0.5)
        assert rate == pytest.approx(1e-3 * 2.0 * 0.25)

    def test_describe_outcome(self):
        assert describe_outcome(None) == "clean"
        plan = make_plan(rber=0.0)
        assert describe_outcome(plan.read_outcome(0, 0)) == "clean"


class TestFaultPlan:
    def test_same_seed_reproduces_the_fault_stream(self):
        knobs = dict(rber=8e-3, timeout_probability=0.05,
                     slow_plane_fraction=0.25, seed=99)
        first = make_plan(**knobs)
        second = make_plan(**knobs)
        for i in range(500):
            a = first.read_outcome(i % 8, i)
            b = second.read_outcome(i % 8, i)
            assert (a.sense_multiplier, a.retry_rounds, a.uncorrectable,
                    a.timeout_stall) == \
                   (b.sense_multiplier, b.retry_rounds, b.uncorrectable,
                    b.timeout_stall)

    def test_quiet_config_never_faults(self):
        plan = make_plan(rber=0.0, timeout_probability=0.0,
                         slow_plane_fraction=0.0)
        assert all(not plan.read_outcome(i % 8, i).faulted
                   for i in range(200))

    def test_slow_plane_topology_is_seed_deterministic(self):
        assert make_plan(slow_plane_fraction=1.0).slow_planes \
            == frozenset(range(8))
        assert make_plan(slow_plane_fraction=0.0).slow_planes == frozenset()
        drawn = make_plan(slow_plane_fraction=0.5, seed=7).slow_planes
        assert drawn == make_plan(slow_plane_fraction=0.5, seed=7).slow_planes

    def test_wear_raises_failure_probability(self):
        plan = make_plan(rber=3e-3, wear_rber_factor=0.5)
        assert plan.page_failure_probability(10, 0) \
            > plan.page_failure_probability(0, 0)

    def test_retry_rounds_lower_failure_probability(self):
        plan = make_plan(rber=5e-3)
        assert plan.page_failure_probability(0, 1) \
            < plan.page_failure_probability(0, 0)

    def test_consecutive_hard_faults_fail_the_plane(self):
        # The seeded stream is deterministic, so p = 0.999 draws are
        # repeatable timeouts, every run.
        plan = make_plan(timeout_probability=0.999,
                         plane_failure_threshold=3)
        for _ in range(3):
            plan.read_outcome(0, 0)
        assert plan.plane_failing(0)
        assert plan.failing_planes() == [0]

    def test_mark_plane_failing_is_noop_when_disabled(self):
        plan = make_plan(plane_failure_threshold=0)
        plan.mark_plane_failing(2)
        assert not plan.plane_failing(2)


class TestFaultConfig:
    def test_degraded_path_must_beat_the_bc_timeout(self):
        config = make_fault_config(degraded_read_multiplier=6.0,
                                   bc_timeout_factor=6.0)
        with pytest.raises(ConfigurationError):
            config.validate()
        # Disabling degraded mode lifts the constraint.
        make_fault_config(plane_failure_threshold=0,
                          degraded_read_multiplier=9.0,
                          bc_timeout_factor=6.0).validate()

    def test_probability_ranges_enforced(self):
        with pytest.raises(ConfigurationError):
            make_fault_config(rber=1.0).validate()
        with pytest.raises(ConfigurationError):
            make_fault_config(timeout_probability=1.0).validate()
        with pytest.raises(ConfigurationError):
            make_fault_config(slow_plane_multiplier=0.5).validate()

    def test_system_config_carries_an_independent_fault_config(self):
        config = SystemConfig()
        config.validate()
        clone = config.deep_copy()
        assert clone.faults is not config.faults
        assert not clone.faults.enabled


class TestDeviceFaultPaths:
    def test_disabled_faults_build_no_plan(self):
        engine, device = make_device()
        assert device.faults is None
        engine2, device2 = make_device(faults=FaultConfig(enabled=False))
        assert device2.faults is None

    def test_transient_timeout_stalls_but_still_completes(self):
        engine, device = make_device(
            faults=make_fault_config(timeout_probability=0.999))
        request = read_one(engine, device)
        assert request.complete_time is not None
        assert not request.failed
        # Sense + 12x stall on a 50 us read.
        assert request.latency_ns >= 12 * 50.0 * US
        assert device.stats["timeout_stalls"] == 1

    def test_retry_recovers_a_first_sense_failure(self):
        # rber = 0.1 fails the first sense with probability 1 (lambda
        # ~ 920 against t = 40); one shifted-Vref round at scale 0.01
        # brings lambda to ~9, which always corrects.
        engine, device = make_device(
            faults=make_fault_config(rber=0.1, retry_rber_scale=0.01))
        request = read_one(engine, device)
        assert not request.failed
        assert device.stats["read_retries"] == 1
        assert device.stats["ecc_recovered_reads"] == 1
        # One retry costs sense * (1 + backoff): >= 2x the clean read.
        assert request.latency_ns >= 2 * 50.0 * US

    def test_uncorrectable_read_marks_the_request_failed(self):
        # Retry rounds that do not reduce the RBER can never correct.
        engine, device = make_device(
            faults=make_fault_config(rber=0.1, retry_rber_scale=1.0))
        request = read_one(engine, device)
        assert request.failed
        assert device.stats["uncorrectable_reads"] == 1

    def test_slow_plane_multiplies_sense_latency(self):
        engine, device = make_device(
            faults=make_fault_config(slow_plane_fraction=1.0,
                                     slow_plane_multiplier=3.0))
        request = read_one(engine, device)
        assert device.stats["slow_plane_reads"] == 1
        assert request.latency_ns >= 3 * 50.0 * US

    def test_failing_plane_serves_degraded_mirror_reads(self):
        engine, device = make_device(
            faults=make_fault_config(degraded_read_multiplier=4.0))
        plane = device.ftl.plane_of(3)
        device.faults.mark_plane_failing(plane)
        request = read_one(engine, device)
        assert not request.failed
        assert device.stats["degraded_reads"] == 1
        assert request.latency_ns >= 4 * 50.0 * US


def make_faulted_cache(fault_config, cache_pages=8, dataset_pages=512):
    engine = Engine()
    flash = FlashDevice(
        engine,
        FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                    pages_per_block=16, overprovisioning=0.5),
        dataset_pages,
        faults=fault_config,
    )
    cache = DramCache(engine, DramCacheConfig(), cache_pages, flash)
    return engine, cache, flash


class TestBcResilience:
    def test_timeout_reissues_onto_the_degraded_mirror(self):
        # Every attempt stalls 12x, the BC times out at 6x and
        # reissues; the first hard fault (threshold = 1) fails the
        # plane, so the reissue lands on the 4x degraded mirror and
        # the miss still installs.
        engine, cache, flash = make_faulted_cache(make_fault_config(
            timeout_probability=0.999, plane_failure_threshold=1))
        result = cache.access(40)
        assert not result.hit
        engine.run()
        assert cache.backside.stats["installs"] == 1
        assert flash.stats["bc_timeouts"] >= 1
        assert flash.stats["bc_reissues"] >= 1
        assert flash.stats["degraded_reads"] >= 1
        assert cache.backside.msr.stats["reissues"] >= 1

    def test_reissue_cap_surfaces_device_failure(self):
        # Degraded mode off: every reissue times out again until the
        # cap trips.
        engine, cache, flash = make_faulted_cache(make_fault_config(
            timeout_probability=0.999, plane_failure_threshold=0,
            bc_max_reissues=1))
        cache.access(40)
        with pytest.raises(DeviceFailedError):
            engine.run()

    def test_flash_timeout_error_is_a_payload_not_a_raise(self):
        # The BC read-outcome race passes FlashTimeoutError instances
        # through signals; both resilience exceptions are ReproErrors.
        assert issubclass(FlashTimeoutError, ReproError)
        assert issubclass(DeviceFailedError, ReproError)


class TestErrorsModule:
    def test_all_names_resolve(self):
        for name in errors.__all__:
            assert isinstance(getattr(errors, name), type)

    def test_new_exceptions_are_exported(self):
        assert "FlashTimeoutError" in errors.__all__
        assert "DeviceFailedError" in errors.__all__


class TestGcBlockedFractionWindow:
    def test_window_scopes_out_warmup_stalls(self):
        engine, device = make_device()
        device.stats.add("requests", 8)
        device.stats.add("requests_blocked_by_gc", 4)
        assert device.gc.blocked_fraction() == pytest.approx(0.5)
        device.gc.start_measurement()
        assert device.gc.blocked_fraction() == 0.0
        device.stats.add("requests", 4)
        device.stats.add("requests_blocked_by_gc", 1)
        assert device.gc.blocked_fraction() == pytest.approx(0.25)


class TestMsrReissueAccounting:
    def test_note_reissue_requires_a_pending_entry(self):
        from repro.dramcache import MissStatusRow
        engine = Engine()
        msr = MissStatusRow(engine, 4)
        with pytest.raises(ProtocolError):
            msr.note_reissue(10)
        msr.allocate(10, is_write=False)
        msr.note_reissue(10)
        assert msr.stats["reissues"] == 1


class TestTracedFaultedRun:
    def test_fault_stall_is_charged_and_latency_reconstructs(self):
        # The tracer invariant — component sums reconstruct measured
        # service latency exactly — must survive the resilience paths,
        # with failed-attempt time landing in the new fault_stall
        # component.
        from repro.config import make_config
        from repro.core import Runner
        from repro.obs.tracer import Tracer, disable, enable
        from repro.workloads import make_workload

        config = make_config("astriflash")
        config.num_cores = 2
        config.scale.dataset_pages = 1024
        config.scale.warmup_ns = 200.0 * US
        config.scale.measurement_ns = 1_500.0 * US
        config.faults = make_fault_config(
            rber=8e-3, timeout_probability=0.02,
            slow_plane_fraction=0.25, wear_rber_factor=0.05)
        workload = make_workload("tatp", 1024, seed=7, zipf_s=1.6)
        tracer = Tracer()
        enable(tracer)
        try:
            result = Runner(config, workload).run()
        finally:
            disable()
        assert result.counters["flash.bc_timeouts"] > 0
        assert tracer.completed
        charged = 0.0
        for record in tracer.completed:
            measured = record.service_latency_ns
            if measured <= 0.0:
                continue
            error = abs(record.span_sum_ns() - measured) / measured
            assert error < 1e-6, (record, record.components())
            charged += record.fault_stall
        assert charged > 0.0


class TestChaosHarness:
    def test_parse_rber_sweep_sorts_and_dedups(self):
        assert parse_rber_sweep("8e-3, 0, 2e-3, 8e-3") == (0.0, 2e-3, 8e-3)

    def test_parse_rber_sweep_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_rber_sweep("not-a-number")
        with pytest.raises(ReproError):
            parse_rber_sweep("1.5")
        with pytest.raises(ReproError):
            parse_rber_sweep(" , ")

    def test_zero_rber_point_runs_with_faults_disabled(self):
        assert fault_overrides(0.0, fault_seed=1) == ()
        overrides = dict(fault_overrides(8e-3, fault_seed=17))
        assert overrides["faults.enabled"] is True
        assert overrides["faults.seed"] == 17
        assert overrides["faults.rber"] == 8e-3

    def _bench(self, p99s):
        cells = [
            ChaosCell(preset="x", rber=float(i), service_p99_ns=p99,
                      failed=(p99 is None))
            for i, p99 in enumerate(p99s)
        ]
        return ChaosBench(experiment="fig9", scale="quick",
                          workload="tatp", fault_seed=1,
                          rber_points=[float(i) for i in range(len(p99s))],
                          presets=["x"], cells=cells)

    def test_monotonic_check_detects_dips(self):
        assert _check_monotonic(self._bench([1.0, 2.0, 2.0, 3.0]))
        assert not _check_monotonic(self._bench([1.0, 3.0, 2.0]))

    def test_monotonic_check_skips_failed_cells(self):
        bench = self._bench([1.0, None, 2.0])
        bench.cells[1].service_p99_ns = 99.0  # ignored: cell failed
        assert _check_monotonic(bench)

    def test_schema_version_is_stamped(self):
        bench = self._bench([1.0])
        assert bench.schema_version == CHAOS_SCHEMA_VERSION == 2
        assert '"schema_version": 2' in bench.to_json()
