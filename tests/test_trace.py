"""Tests for trace capture, persistence, replay, and statistics."""

import io

import pytest

from repro.config import make_config
from repro.core import Runner
from repro.errors import WorkloadError
from repro.trace import (
    TraceRecorder,
    TraceWorkload,
    load_trace,
    trace_statistics,
)
from repro.units import US
from repro.workloads import Step, make_workload


@pytest.fixture()
def recorded():
    workload = make_workload("arrayswap", 1024, seed=5, zipf_s=1.6)
    recorder = TraceRecorder(workload)
    recorder.record(500)
    return recorder


class TestTraceRecorder:
    def test_records_exact_count(self, recorded):
        assert len(recorded.steps) == 500

    def test_zero_steps_rejected(self):
        workload = make_workload("arrayswap", 1024, seed=5)
        with pytest.raises(WorkloadError):
            TraceRecorder(workload).record(0)

    def test_save_load_roundtrip(self, recorded, tmp_path):
        path = str(tmp_path / "trace.csv")
        written = recorded.save(path)
        assert written == 500
        steps = load_trace(path)
        assert len(steps) == 500
        for original, loaded in zip(recorded.steps, steps):
            assert loaded.page == original.page
            assert loaded.is_write == original.is_write
            assert loaded.compute_ns == pytest.approx(original.compute_ns,
                                                      abs=0.001)

    def test_save_to_stream(self, recorded):
        buffer = io.StringIO()
        recorded.save(buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == 500

    def test_load_rejects_garbage(self):
        with pytest.raises(WorkloadError):
            load_trace(io.StringIO("not a trace\n1,2,3\n"))
        bad = io.StringIO("# repro-trace-v1: compute_ns,page,is_write\n1,2\n")
        with pytest.raises(WorkloadError):
            load_trace(bad)


class TestLoadTraceEdgeCases:
    HEADER = "# repro-trace-v1: compute_ns,page,is_write\n"

    def test_empty_file_reports_missing_header(self):
        with pytest.raises(WorkloadError, match="empty trace file"):
            load_trace(io.StringIO(""))

    def test_header_only_trace_loads_as_empty(self):
        assert load_trace(io.StringIO(self.HEADER)) == []

    def test_empty_recorder_round_trips(self):
        workload = make_workload("arrayswap", 128, seed=1)
        recorder = TraceRecorder(workload)
        buffer = io.StringIO()
        assert recorder.save(buffer) == 0
        buffer.seek(0)
        assert load_trace(buffer) == []

    def test_trailing_newlines_tolerated(self):
        buffer = io.StringIO(self.HEADER + "1.5,7,1\n\n\n")
        steps = load_trace(buffer)
        assert len(steps) == 1
        assert steps[0].page == 7 and steps[0].is_write

    def test_mid_file_comments_skipped(self):
        buffer = io.StringIO(self.HEADER + "# a note\n1.0,2,0\n")
        assert len(load_trace(buffer)) == 1

    def test_wrong_field_count_names_line_number(self):
        buffer = io.StringIO(self.HEADER + "1.0,2,0\n1,2\n")
        with pytest.raises(WorkloadError, match="line 3"):
            load_trace(buffer)

    def test_non_numeric_field_names_line_number(self):
        buffer = io.StringIO(self.HEADER + "1.0,2,0\nxx,2,0\n")
        with pytest.raises(WorkloadError, match="line 3"):
            load_trace(buffer)

    def test_non_boolean_write_flag_rejected(self):
        buffer = io.StringIO(self.HEADER + "1.0,2,yes\n")
        with pytest.raises(WorkloadError, match="is_write"):
            load_trace(buffer)


class TestTraceWorkload:
    def test_replay_preserves_page_sequence(self, recorded):
        replay = TraceWorkload(recorded.steps, steps_per_job=10)
        job = replay.make_job()
        pages = []
        while True:
            step = job.next_step()
            if step is None:
                break
            pages.append(step.page)
        assert pages == [s.page for s in recorded.steps[:10]]

    def test_replay_wraps_around(self):
        steps = [Step(100.0, page, False) for page in range(5)]
        replay = TraceWorkload(steps, steps_per_job=3)
        seen = []
        for _ in range(4):
            job = replay.make_job()
            while True:
                step = job.next_step()
                if step is None:
                    break
                seen.append(step.page)
        assert seen == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]

    def test_dataset_pages_inferred(self):
        steps = [Step(1.0, 7, False), Step(1.0, 99, True)]
        replay = TraceWorkload(steps)
        assert replay.dataset_pages == 100

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            TraceWorkload([])

    def test_replay_drives_the_simulator(self, recorded):
        replay = TraceWorkload(recorded.steps, steps_per_job=40,
                               dataset_pages=1024)
        config = make_config("astriflash")
        config.num_cores = 1
        config.scale.dataset_pages = 1024
        config.scale.warmup_ns = 200.0 * US
        config.scale.measurement_ns = 1_000.0 * US
        result = Runner(config, replay).run()
        assert result.completed_jobs > 0

    def test_from_file(self, recorded, tmp_path):
        path = str(tmp_path / "trace.csv")
        recorded.save(path)
        replay = TraceWorkload.from_file(path, steps_per_job=5)
        assert replay.make_job().next_step().page == recorded.steps[0].page


class TestTraceStatistics:
    def test_summary(self, recorded):
        stats = trace_statistics(recorded.steps)
        assert stats.num_steps == 500
        assert 0 < stats.distinct_pages <= 1024
        assert 0.0 <= stats.write_fraction <= 1.0
        assert stats.mean_compute_ns > 0
        # Zipfian trace: the hot decile carries disproportionate share.
        assert stats.top_decile_access_share > 0.15

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            trace_statistics([])
