"""Discrete-event simulation kernel.

The kernel is deliberately small and dependency-free: an event queue
ordered by ``(time, sequence)`` plus a generator-based *process* layer
in :mod:`repro.sim.process`.  All hardware components in the library
are built on top of these two primitives.

Times are floats in nanoseconds (see :mod:`repro.units`).  Ties are
broken by insertion order, which makes runs fully deterministic for a
given seed.

The hot loop is tuned for CPython (DESIGN.md §4c): fired events are
recycled through a free list instead of being reallocated, ``run``
binds ``heappop``/callback plumbing to locals, the heap holds
``(time, seq, event)`` tuples so sift comparisons run at C speed
(``seq`` is unique, so the tuple order never consults the event), and
the heap is compacted in place when cancelled entries outnumber live
ones.  None of this changes semantics — pop order is the same
``(time, seq)`` total order the kernel has always used.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

Callback = Callable[..., None]

# Free-list bound: enough to absorb the steady-state churn of a large
# run without pinning an unbounded amount of dead-event memory.
_MAX_POOL = 4096

# Compaction triggers when the queue holds more cancelled than live
# entries; tiny queues are never worth rebuilding.
_MIN_COMPACT_QUEUE = 64

# Process-wide executed-event tally across all engines ever run.
# repro.perf reads deltas of this to derive events/sec for profiled
# runs that build many engines (one per simulation).
_total_events = 0


def total_events_executed() -> int:
    """Events executed by every engine in this process so far."""
    return _total_events


class Event:
    """A scheduled callback.

    Events are created through :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at` and can be cancelled with
    :meth:`Engine.cancel`.  A cancelled event stays in the heap but is
    skipped when popped (unless compaction removes it first).  An event
    that has already executed is marked ``fired``; cancelling it
    afterwards is a protocol error.

    An :class:`Event` reference is only meaningful until the event
    fires or is cancelled — the kernel recycles dead events through a
    free list, so holding a handle past that point and cancelling it
    later is a protocol error the kernel can no longer always detect.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callback, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else (" fired" if self.fired else "")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.1f} #{self.seq} {name}{state}>"


class Engine:
    """The event loop.

    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule(10.0, fired.append, "a")
    >>> _ = engine.schedule(5.0, fired.append, "b")
    >>> engine.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._live_events = 0
        self._cancelled_in_queue = 0
        self._pool: List[Event] = []
        # Kernel health/throughput telemetry (repro.perf reads these).
        self.events_executed = 0
        self.compactions = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callback, *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        # Body of schedule_at, inlined: this is the most frequent entry
        # point into the kernel and the extra call frame shows up.
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, seq, callback, args)
        heapq.heappush(self._queue, (time, seq, event))
        self._live_events += 1
        return event

    def schedule_at(self, time: float, callback: Callback, *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.fired = False
        else:
            event = Event(time, seq, callback, args)
        heapq.heappush(self._queue, (time, seq, event))
        self._live_events += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.

        Cancelling twice is an error, and so is cancelling an event
        that already executed: the event was popped from the heap and
        its live-count slot reclaimed, so decrementing again would
        corrupt :attr:`pending_events`.
        """
        if event.fired:
            raise SimulationError(
                f"cannot cancel an event that already fired: {event!r}"
            )
        if event.cancelled:
            raise SimulationError(f"event already cancelled: {event!r}")
        event.cancelled = True
        event.callback = None
        event.args = ()
        self._live_events -= 1
        self._cancelled_in_queue += 1
        if (self._cancelled_in_queue * 2 > len(self._queue)
                and len(self._queue) >= _MIN_COMPACT_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap in place.

        Long sweeps that schedule-then-cancel (timeout patterns, the
        Fig. 10 load ladder) would otherwise grow the heap without
        bound and pay ``log``-of-garbage on every push/pop.  Rebuilding
        preserves pop order exactly: ``(time, seq)`` is a total order,
        so the filtered heap yields the same sequence of live events.

        The list object is mutated in place (slice assignment) because
        ``run`` holds a local reference to it while executing.
        """
        queue = self._queue
        pool = self._pool
        live = [entry for entry in queue if not entry[2].cancelled]
        if len(pool) < _MAX_POOL:
            dead = (entry[2] for entry in queue if entry[2].cancelled)
            pool.extend(
                event for event, _ in zip(dead, range(_MAX_POOL - len(pool)))
            )
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none left."""
        while self._queue:
            time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                self._recycle(event)
                continue
            self._live_events -= 1
            event.fired = True
            self._now = time
            self.events_executed += 1
            global _total_events
            _total_events += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or until simulation time ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("engine.run() re-entered")
        self._running = True
        # Local bindings: attribute lookups cost on every iteration of
        # the hottest loop in the simulator.  ``queue`` stays valid
        # across callbacks because schedule/compact mutate the same
        # list object in place.
        queue = self._queue
        pool = self._pool
        heappop = heapq.heappop
        executed = 0
        # One float compare per iteration instead of a None test plus
        # a compare; event times are always finite.
        horizon = float("inf") if until is None else until
        try:
            while queue:
                entry = queue[0]
                if entry[0] > horizon:
                    break
                heappop(queue)
                event = entry[2]
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    if len(pool) < _MAX_POOL:
                        pool.append(event)
                    continue
                self._live_events -= 1
                event.fired = True
                self._now = entry[0]
                executed += 1
                callback = event.callback
                args = event.args
                # Release payload references early; the Event object
                # itself parks on the free list for reuse.
                event.callback = None
                event.args = ()
                if len(pool) < _MAX_POOL:
                    pool.append(event)
                callback(*args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self.events_executed += executed
            global _total_events
            _total_events += executed
            self._running = False

    def advance_batch(self, now: float, events: int) -> None:
        """Jump the clock to ``now`` and credit ``events`` executed
        events without touching the heap.

        The vector backend (:mod:`repro.sim.vector`) retires batches of
        predictable quantum resumes outside the event loop; this is how
        it keeps the engine's clock and kernel telemetry — including
        the process-wide tally behind
        :func:`total_events_executed` — bit-identical to the scalar
        run it replaces.  Time must not move backwards and the engine
        must not be mid-``run``.
        """
        if now < self._now:
            raise SimulationError(
                f"advance_batch to {now} before current time {self._now}"
            )
        if self._running:
            raise SimulationError("advance_batch during engine.run()")
        if events < 0:
            raise SimulationError(f"negative event batch: {events}")
        self._now = now
        self.events_executed += events
        global _total_events
        _total_events += events

    def _recycle(self, event: Event) -> None:
        """Park a dead event on the free list (bounded)."""
        event.callback = None
        event.args = ()
        if len(self._pool) < _MAX_POOL:
            self._pool.append(event)

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return self._live_events

    @property
    def queue_length(self) -> int:
        """Heap entries, including not-yet-compacted cancelled ones."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"<Engine t={self._now:.1f} pending={self.pending_events}>"
