"""Time and size units used throughout the simulator.

The simulation kernel keeps time as a float number of *nanoseconds*.
All latency parameters in the code are expressed through these
constants so that a reader can compare them directly against the values
quoted in the paper (50 us flash reads, 100 ns thread switches, ...).

Sizes are plain integer byte counts.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time units (simulation time is in nanoseconds).
# --------------------------------------------------------------------------

NANOSECOND = 1.0
MICROSECOND = 1_000.0
MILLISECOND = 1_000_000.0
SECOND = 1_000_000_000.0

NS = NANOSECOND
US = MICROSECOND
MS = MILLISECOND
S = SECOND


def nanoseconds(value: float) -> float:
    """Express ``value`` nanoseconds in simulation time."""
    return value * NANOSECOND


def microseconds(value: float) -> float:
    """Express ``value`` microseconds in simulation time."""
    return value * MICROSECOND


def milliseconds(value: float) -> float:
    """Express ``value`` milliseconds in simulation time."""
    return value * MILLISECOND


def seconds(value: float) -> float:
    """Express ``value`` seconds in simulation time."""
    return value * SECOND


def to_microseconds(time_ns: float) -> float:
    """Convert simulation time (ns) to microseconds."""
    return time_ns / MICROSECOND


def to_milliseconds(time_ns: float) -> float:
    """Convert simulation time (ns) to milliseconds."""
    return time_ns / MILLISECOND


def to_seconds(time_ns: float) -> float:
    """Convert simulation time (ns) to seconds."""
    return time_ns / SECOND


# --------------------------------------------------------------------------
# Size units (bytes).
# --------------------------------------------------------------------------

BYTE = 1
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

CACHE_BLOCK_SIZE = 64          # bytes, on-chip cache block (paper Sec. II-A)
PAGE_SIZE = 4 * KIB            # bytes, DRAM-cache page / flash page


def kibibytes(value: float) -> int:
    """``value`` KiB in bytes."""
    return int(value * KIB)


def mebibytes(value: float) -> int:
    """``value`` MiB in bytes."""
    return int(value * MIB)


def gibibytes(value: float) -> int:
    """``value`` GiB in bytes."""
    return int(value * GIB)


def tebibytes(value: float) -> int:
    """``value`` TiB in bytes."""
    return int(value * TIB)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (``'32.0 GiB'``)."""
    magnitude = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if magnitude < 1024.0 or unit == "TiB":
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def format_time(time_ns: float) -> str:
    """Human-readable simulation time (``'12.3 us'``)."""
    if time_ns < MICROSECOND:
        return f"{time_ns:.1f} ns"
    if time_ns < MILLISECOND:
        return f"{time_ns / MICROSECOND:.1f} us"
    if time_ns < SECOND:
        return f"{time_ns / MILLISECOND:.1f} ms"
    return f"{time_ns / SECOND:.3f} s"
