"""Silicon-overhead model for the ASO store-buffer extension.

Sec. IV-C4 costs the post-retirement speculation hardware:

* four additional physical registers per Store Buffer entry
  (32 x 4 = 128 registers = 1 KiB of SRAM at 8 B per register);
* one map-table entry per SB store (32 architectural registers x 8-bit
  PRF indices = 32 B each; 32 entries = 1 KiB);
* total ~2 KiB, which at 7 nm SRAM density (~2 MB/mm^2) is ~0.001 mm^2
  — about 0.1 % of a 1.3 mm^2 Cortex-A76.

This module reproduces that arithmetic from a :class:`CoreConfig` so
the area claim is checkable against any core configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import CoreConfig
from repro.errors import ConfigurationError
from repro.units import KIB

# Paper assumptions (Sec. IV-C4).
BYTES_PER_PHYSICAL_REGISTER = 8
PRF_INDEX_BITS = 8
SRAM_DENSITY_MB_PER_MM2 = 2.0       # 7 nm projection
CORTEX_A76_AREA_MM2 = 1.3


@dataclass(frozen=True)
class AsoSiliconEstimate:
    """Area bill of the ASO extension for one core."""

    extra_registers: int
    register_file_bytes: int
    map_table_bytes: int
    total_bytes: int
    area_mm2: float
    fraction_of_core: float

    def describe(self) -> str:
        return (
            f"+{self.extra_registers} PRF registers "
            f"({self.register_file_bytes / KIB:.1f} KiB) "
            f"+ map tables ({self.map_table_bytes / KIB:.1f} KiB) "
            f"= {self.total_bytes / KIB:.1f} KiB, "
            f"{self.area_mm2:.4f} mm^2 "
            f"({self.fraction_of_core:.2%} of the core)"
        )


def aso_silicon_estimate(config: CoreConfig,
                         core_area_mm2: float = CORTEX_A76_AREA_MM2,
                         sram_density_mb_per_mm2: float =
                         SRAM_DENSITY_MB_PER_MM2) -> AsoSiliconEstimate:
    """Reproduce the paper's Sec. IV-C4 area arithmetic."""
    if core_area_mm2 <= 0 or sram_density_mb_per_mm2 <= 0:
        raise ConfigurationError("area and density must be positive")
    extra_registers = (config.store_buffer_entries
                       * config.registers_per_speculative_store)
    register_file_bytes = extra_registers * BYTES_PER_PHYSICAL_REGISTER
    # One map-table entry per SB store: an 8-bit PRF index per
    # architectural register.
    entry_bytes = config.architectural_registers * PRF_INDEX_BITS // 8
    map_table_bytes = config.store_buffer_entries * entry_bytes
    total_bytes = register_file_bytes + map_table_bytes
    bytes_per_mm2 = sram_density_mb_per_mm2 * 1024 * 1024
    area = total_bytes / bytes_per_mm2
    return AsoSiliconEstimate(
        extra_registers=extra_registers,
        register_file_bytes=register_file_bytes,
        map_table_bytes=map_table_bytes,
        total_bytes=total_bytes,
        area_mm2=area,
        fraction_of_core=area / core_area_mm2,
    )
