"""Profiling subsystem: ``python -m repro profile <experiment>``.

The kernel hot-path work (DESIGN.md §4c) is driven by measurement, not
guesswork; this module packages that measurement loop so regressions
are one command away:

* :func:`profile_experiment` regenerates one paper artifact under
  :mod:`cProfile` — result cache disabled, in-process (``jobs=1``) so
  every simulated event is actually executed and attributed — and
  distils the run into a :class:`ProfileReport`: wall time, kernel
  events/sec, and the top-N hotspots by internal time.
* :meth:`ProfileReport.to_json` emits the machine-readable form CI
  archives as ``BENCH_kernel.json``.

Events/sec counts *simulated events retired per wall-clock second*
(see :func:`repro.sim.engine.total_events_executed`), which makes it a
workload-independent figure of merit for the event loop itself; note
that cProfile's instrumentation slows call-heavy code severalfold, so
the events/sec reported here is pessimistic relative to an
unprofiled run (:class:`~repro.core.runner.SimulationResult` carries
the unprofiled per-run value).
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.jsonutil import dumps as json_dumps
from repro.sim.engine import total_events_executed


@dataclass
class Hotspot:
    """One profile row: a function and where its time went."""

    function: str
    calls: int
    total_s: float        # time inside the function itself (tottime)
    cumulative_s: float   # time including callees (cumtime)


#: Bump when the JSON layout of :class:`ProfileReport` changes so CI
#: consumers of the profile JSON can detect incompatible files.
#: v2: events/sec excludes warm-phase wall time (``warm_wall_seconds``
#: is reported separately) and the executing ``backend`` is recorded.
#: v3: vector-backend fallbacks are surfaced (``scalar_fallbacks``
#: count and per-reason ``fallback_reasons``).
PROFILE_SCHEMA_VERSION = 3


@dataclass
class ProfileReport:
    """Everything one profiled experiment run produced."""

    experiment: str
    scale: str
    wall_seconds: float
    total_calls: int
    events_executed: int
    events_per_second: float
    hotspots: List[Hotspot] = field(default_factory=list)
    schema_version: int = PROFILE_SCHEMA_VERSION
    config_preset: str = ""  # HarnessScale.name the run resolved to
    warm_wall_seconds: float = 0.0  # cache-warm time excluded from events/s
    backend: str = "scalar"  # repro.sim.vector.BACKENDS member
    #: Vector->scalar fallbacks during the profiled runs, with the
    #: per-reason breakdown from repro.sim.vector.fallback_reasons().
    scalar_fallbacks: int = 0
    fallback_reasons: Dict[str, int] = field(default_factory=dict)

    def format_text(self) -> str:
        lines = [
            f"profile: {self.experiment} (scale={self.scale}, "
            f"backend={self.backend})",
            f"  wall time       {self.wall_seconds:.2f} s (under cProfile; "
            f"+{self.warm_wall_seconds:.2f} s warmup, excluded)",
            f"  kernel events   {self.events_executed:,} "
            f"({self.events_per_second:,.0f} events/s)",
            f"  function calls  {self.total_calls:,}",
        ]
        if self.scalar_fallbacks:
            reasons = "; ".join(f"{reason} x{count}" for reason, count
                                in sorted(self.fallback_reasons.items()))
            lines.append(f"  scalar fallbacks {self.scalar_fallbacks} "
                         f"({reasons})")
        lines.extend([
            "",
            f"  {'calls':>10}  {'tottime':>8}  {'cumtime':>8}  function",
        ])
        for spot in self.hotspots:
            lines.append(
                f"  {spot.calls:>10,}  {spot.total_s:>8.3f}  "
                f"{spot.cumulative_s:>8.3f}  {spot.function}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def key_metrics(self) -> Dict[str, float]:
        """Registry-namespace projection for the run ledger."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).metrics


def _function_label(func_key) -> str:
    """Compact ``path:lineno(name)`` label for a pstats function key."""
    filename, lineno, name = func_key
    if filename in ("~", ""):
        return name  # C builtins have no source location
    parts = filename.replace(os.sep, "/").split("/")
    short = "/".join(parts[-3:])
    return f"{short}:{lineno}({name})"


def hotspots_from_stats(stats: pstats.Stats, top: int = 15) -> List[Hotspot]:
    """The ``top`` functions by internal time as :class:`Hotspot` rows."""
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][2],  # tottime
        reverse=True,
    )
    return [
        Hotspot(
            function=_function_label(func_key),
            calls=ncalls,
            total_s=tottime,
            cumulative_s=cumtime,
        )
        for func_key, (_cc, ncalls, tottime, cumtime, _callers)
        in rows[:top]
    ]


def profile_experiment(experiment: str, scale: str = "quick",
                       top: int = 15,
                       profiler: Optional[cProfile.Profile] = None,
                       backend: Optional[str] = None) -> ProfileReport:
    """Regenerate ``experiment`` under cProfile and report hotspots.

    The result cache is disabled for the duration (a cache hit would
    profile pickle loads, not the simulator) and runs stay in-process
    (``jobs=1``) so the profiler sees every event.  ``backend`` selects
    the execution backend (scalar/vector) for every run in the
    experiment via ``$REPRO_BACKEND``; the default inherits whatever
    the environment already selects.

    Events/sec is computed over the *kernel* wall time: cache-warm
    seconds (``Runner.warm`` / snapshot restores, tracked by the
    process-wide wall split) are reported separately and excluded —
    warming is dataset construction, not event-loop work, and earlier
    versions understated the event loop by charging it.
    """
    if top < 1:
        raise ReproError("profile needs at least one hotspot row")
    from repro.core.runner import wall_split_totals  # deferred: heavy
    from repro.harness import EXPERIMENTS, resolve_scale  # deferred: heavy
    from repro.sim import vector
    from repro.sim.vector import ENV_VAR, resolve_backend

    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment!r}; known: {known}"
        ) from None
    backend = resolve_backend(backend)

    profiler = profiler if profiler is not None else cProfile.Profile()
    # Disable both caching layers for the duration: a result-cache hit
    # would profile pickle loads, and a warm-state snapshot restore
    # would hide the warmup the profiler is supposed to attribute.
    saved_env = {name: os.environ.get(name)
                 for name in ("REPRO_CACHE", "REPRO_SNAPSHOT", ENV_VAR)}
    os.environ["REPRO_CACHE"] = "0"
    os.environ["REPRO_SNAPSHOT"] = "0"
    os.environ[ENV_VAR] = backend
    events_before = total_events_executed()
    warm_before = wall_split_totals()["warm_seconds"]
    fallbacks_before = vector.stats()["scalar_fallbacks"]
    reasons_before = vector.fallback_reasons()
    wall_start = time.perf_counter()
    try:
        profiler.enable()
        try:
            runner(scale=scale, jobs=1)
        finally:
            profiler.disable()
    finally:
        for name, value in saved_env.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value
    wall_seconds = time.perf_counter() - wall_start
    events = total_events_executed() - events_before
    warm_wall = wall_split_totals()["warm_seconds"] - warm_before
    kernel_wall = max(wall_seconds - warm_wall, 0.0)
    fallbacks = vector.stats()["scalar_fallbacks"] - fallbacks_before
    fallback_reasons = {
        reason: count - reasons_before.get(reason, 0)
        for reason, count in vector.fallback_reasons().items()
        if count - reasons_before.get(reason, 0) > 0
    }

    stats = pstats.Stats(profiler)
    return ProfileReport(
        experiment=experiment,
        scale=scale,
        wall_seconds=kernel_wall,
        total_calls=stats.total_calls,  # type: ignore[attr-defined]
        events_executed=events,
        events_per_second=(events / kernel_wall
                           if kernel_wall > 0 else 0.0),
        hotspots=hotspots_from_stats(stats, top=top),
        config_preset=resolve_scale(scale).name,
        warm_wall_seconds=warm_wall,
        backend=backend,
        scalar_fallbacks=fallbacks,
        fallback_reasons=fallback_reasons,
    )


# ------------------------------------------------------------- sweep bench --

#: Bump when the JSON layout of :class:`SweepBench` changes so CI
#: consumers of ``BENCH_sweep.json`` can detect incompatible files.
SWEEP_SCHEMA_VERSION = 1


@dataclass
class SweepBench:
    """End-to-end sweep wall time, snapshots off vs on.

    The harness-level companion to the kernel series: kernel events/s
    tracks the event loop, this tracks what :mod:`repro.snapshot`
    amortizes across a sweep (dataset builds, cache warmup).  Three
    timings: snapshots off, the cold on-run that also *builds* the
    snapshots, and the warm on-run that reuses them.  ``speedup`` is
    off/on — the figure the acceptance bar (>= 1.3x) reads.
    """

    experiment: str
    scale: str
    wall_seconds_snapshots_off: float
    wall_seconds_snapshots_cold: float
    wall_seconds_snapshots_on: float
    speedup: float
    schema_version: int = SWEEP_SCHEMA_VERSION
    config_preset: str = ""

    def key_metrics(self) -> Dict[str, float]:
        """Registry-namespace projection for the run ledger."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).metrics

    def format_text(self) -> str:
        return "\n".join([
            f"sweep bench: {self.experiment} (scale={self.scale})",
            f"  snapshots off   {self.wall_seconds_snapshots_off:.3f} s",
            f"  snapshots cold  {self.wall_seconds_snapshots_cold:.3f} s "
            "(building snapshot files)",
            f"  snapshots on    {self.wall_seconds_snapshots_on:.3f} s",
            f"  speedup         {self.speedup:.2f}x (off/on)",
        ])

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")


def bench_sweep(experiment: str = "fig1", scale: str = "quick",
                snapshot_dir: Optional[str] = None) -> SweepBench:
    """Time one experiment sweep with snapshots off, cold, and on.

    The result cache is disabled throughout (it would short-circuit the
    runs being timed) and everything stays in-process so the three
    timings are comparable.  Snapshots go to a throwaway directory
    (``snapshot_dir`` or a fresh temp dir) — the bench must not be
    contaminated by, or contaminate, a real snapshot store.
    """
    import shutil
    import tempfile

    from repro import snapshot
    from repro.harness import EXPERIMENTS, resolve_scale  # deferred: heavy

    try:
        runner = EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(
            f"unknown experiment {experiment!r}; known: {known}"
        ) from None

    own_tmp = snapshot_dir is None
    directory = snapshot_dir if snapshot_dir is not None \
        else tempfile.mkdtemp(prefix="repro-bench-sweep-")
    # Policy via environment so every experiment participates, whether
    # or not its run() threads explicit snapshot kwargs.
    saved_env = {name: os.environ.get(name)
                 for name in ("REPRO_CACHE", "REPRO_SNAPSHOT",
                              "REPRO_SNAPSHOT_DIR")}
    os.environ["REPRO_CACHE"] = "0"
    os.environ["REPRO_SNAPSHOT_DIR"] = str(directory)
    try:
        def timed(snapshots_on: bool) -> float:
            os.environ["REPRO_SNAPSHOT"] = "1" if snapshots_on else "0"
            start = time.perf_counter()
            runner(scale=scale, jobs=1)
            return time.perf_counter() - start

        t_off = timed(False)
        t_cold = timed(True)
        # Drop the in-process memo so the warm run exercises the real
        # restore path (memo repopulates from the snapshot files).
        snapshot.SnapshotStore.clear_memo()
        t_on = timed(True)
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        if own_tmp:
            shutil.rmtree(directory, ignore_errors=True)

    return SweepBench(
        experiment=experiment,
        scale=scale,
        wall_seconds_snapshots_off=t_off,
        wall_seconds_snapshots_cold=t_cold,
        wall_seconds_snapshots_on=t_on,
        speedup=(t_off / t_on if t_on > 0 else 0.0),
        config_preset=resolve_scale(scale).name,
    )


# ------------------------------------------------------------ kernel bench --

#: Bump when the JSON layout of :class:`KernelBench` changes so CI
#: consumers of ``BENCH_kernel.json`` can detect incompatible files.
#: v2: per-entry ``fallback_reasons`` (vector->scalar fallback counts
#: by reason) ride along with ``vector_stats``.
#: v3: multi-shape cells — ``shapes`` holds one
#: :class:`KernelShapeBench` per run shape (fused, flash-sync,
#: open-loop, multi-core); the top-level ``entries`` /
#: ``bit_identical`` / ``speedup`` mirror the first shape benched
#: (``fused`` by default) for baseline compatibility.
KERNEL_BENCH_SCHEMA_VERSION = 3

#: Kernel-bench request length (arrayswap ``ops_per_job``).  Long
#: requests keep the bench inside the batch-execution kernel rather
#: than per-request bookkeeping; 48 ops = 192 steps per request.
KERNEL_BENCH_OPS_PER_JOB = 48

#: The kernel bench runs a measurement window this many times the
#: harness scale's: steady-state events/s needs enough steps for the
#: fixed per-run costs (RNG bridge, planning probe) to amortize.
KERNEL_BENCH_WINDOW_FACTOR = 4.0


@dataclass
class KernelBackendEntry:
    """One backend's timed kernel run (best-of-``repeat`` wall)."""

    backend: str
    wall_seconds: float
    events_executed: int
    events_per_second: float
    state_fingerprint: str
    vector_stats: Dict[str, int] = field(default_factory=dict)
    #: Vector->scalar fallbacks this entry's runs recorded, by reason
    #: (empty for the scalar backend and for clean vector runs).
    fallback_reasons: Dict[str, int] = field(default_factory=dict)


#: The run shapes ``bench-kernel`` times, in bench order.  Each pins
#: one vector loop kind: ``fused`` the DRAM-only batch loop,
#: ``flash-sync`` the job-epoch loop, ``open-loop`` the merged
#: arrival/execution horizon, ``multi-core`` the lockstep merged loop.
KERNEL_BENCH_SHAPES = ("fused", "flash-sync", "open-loop", "multi-core")

#: Shape name -> (config preset, cores, arrival process).
_SHAPE_SETUPS = {
    "fused": ("dram-only", 1, "closed"),
    "flash-sync": ("flash-sync", 1, "closed"),
    "open-loop": ("dram-only", 1, "poisson"),
    "multi-core": ("dram-only", 2, "closed"),
}


@dataclass
class KernelShapeBench:
    """One run shape's backend entries + bit-identity verdict."""

    shape: str            # KERNEL_BENCH_SHAPES member
    workload: str
    config_preset: str
    num_cores: int
    arrival: str          # "closed" or "poisson"
    entries: List[KernelBackendEntry] = field(default_factory=list)
    bit_identical: Optional[bool] = None  # None until both backends ran
    speedup: Optional[float] = None       # vector/scalar events-per-sec

    def entry(self, backend: str) -> KernelBackendEntry:
        for item in self.entries:
            if item.backend == backend:
                return item
        raise ReproError(
            f"no {backend!r} entry in the {self.shape!r} shape cell")


@dataclass
class KernelBench:
    """Scalar-vs-vector kernel throughput across the pinned run shapes.

    Every shape cell runs closed or open-loop arrayswap with long
    requests (:data:`KERNEL_BENCH_OPS_PER_JOB`) and a widened
    measurement window (:data:`KERNEL_BENCH_WINDOW_FACTOR`) on the
    preset/core-count/arrival combination its vector loop kind pins
    (see :data:`KERNEL_BENCH_SHAPES`).  Both backends replay the
    identical simulation — per-shape ``bit_identical`` asserts the
    ``state_fingerprint`` and deterministic result fields match — so
    per-shape ``speedup`` (vector/scalar events-per-second) is
    apples-to-apples.  The top-level ``entries`` / ``speedup`` mirror
    the first shape benched (``fused`` by default) so schema-v2
    consumers and floor baselines keep reading the batch-loop figure;
    the top-level ``bit_identical`` is the conjunction across shapes.
    """

    workload: str
    scale: str
    config_preset: str
    ops_per_job: int
    repeat: int
    entries: List[KernelBackendEntry] = field(default_factory=list)
    bit_identical: Optional[bool] = None  # None until both backends ran
    speedup: Optional[float] = None       # vector/scalar events-per-sec
    schema_version: int = KERNEL_BENCH_SCHEMA_VERSION
    shapes: List[KernelShapeBench] = field(default_factory=list)

    def entry(self, backend: str) -> KernelBackendEntry:
        for item in self.entries:
            if item.backend == backend:
                return item
        raise ReproError(f"no {backend!r} entry in this kernel bench")

    def shape(self, name: str) -> KernelShapeBench:
        for cell in self.shapes:
            if cell.shape == name:
                return cell
        raise ReproError(f"no {name!r} shape cell in this kernel bench")

    def format_text(self) -> str:
        lines = [
            f"kernel bench: {self.workload} "
            f"(scale={self.scale}, ops_per_job={self.ops_per_job}, "
            f"best of {self.repeat})",
        ]
        for cell in self.shapes:
            lines.append(
                f"  shape {cell.shape} ({cell.config_preset}, "
                f"{cell.num_cores} core(s), {cell.arrival}):")
            for item in cell.entries:
                lines.append(
                    f"    {item.backend:<7} "
                    f"{item.wall_seconds * 1e3:8.2f} ms   "
                    f"{item.events_executed:>10,} events   "
                    f"{item.events_per_second:>12,.0f} events/s"
                )
                if item.fallback_reasons:
                    reasons = "; ".join(
                        f"{reason} x{count}" for reason, count
                        in sorted(item.fallback_reasons.items()))
                    lines.append(f"            scalar fallbacks: "
                                 f"{reasons}")
            if cell.bit_identical is not None:
                lines.append(f"    bit-identical   {cell.bit_identical}")
            if cell.speedup is not None:
                lines.append(f"    speedup         {cell.speedup:.2f}x "
                             "(vector/scalar events per second)")
        if self.bit_identical is not None:
            lines.append(f"  bit-identical (all shapes)   "
                         f"{self.bit_identical}")
        return "\n".join(lines)

    def to_json(self) -> str:
        # repro.jsonutil: non-finite floats serialize as null, never as
        # the non-standard Infinity/NaN tokens json.dumps would emit.
        return json_dumps(asdict(self))

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    def key_metrics(self) -> Dict[str, float]:
        """Registry-namespace projection for the run ledger."""
        from repro.metrics import bench_view  # deferred: cycle

        return bench_view(asdict(self)).metrics


#: SimulationResult fields that depend on wall clock or warm-state
#: provenance; everything else must match bit-for-bit across backends.
_NONDETERMINISTIC_RESULT_FIELDS = (
    "events_per_second", "wall_seconds", "warm_wall_seconds", "warm_source",
)


def canonical_result_dict(result) -> Dict[str, object]:
    """``result`` as a dict with the wall-clock-dependent fields
    removed — the cross-backend bit-identity comparison surface."""
    payload = dict(result.__dict__)
    for name in _NONDETERMINISTIC_RESULT_FIELDS:
        payload.pop(name, None)
    return payload


def bench_kernel(scale: str = "quick",
                 backends: Sequence[str] = ("scalar", "vector"),
                 repeat: int = 3,
                 ops_per_job: int = KERNEL_BENCH_OPS_PER_JOB,
                 shapes: Optional[Sequence[str]] = None) -> KernelBench:
    """Time the execution kernel on each backend, per run shape.

    Each timed run builds a fresh workload and runner (simulation state
    is single-use), executes once, and keeps the best-of-``repeat``
    wall.  Events/s uses the runner's own measurement wall, which
    excludes warmup by construction.  When both backends run, the
    fingerprints and deterministic result fields are compared on
    *every* repeat — a single divergent run fails the bench rather
    than averaging away.  ``shapes`` restricts the benched cells
    (default: all of :data:`KERNEL_BENCH_SHAPES`).
    """
    from repro.config import make_config  # deferred: heavy
    from repro.core import Runner
    from repro.harness import resolve_scale
    from repro.sim import vector
    from repro.units import US
    from repro.workloads import PoissonArrivals, make_workload

    if repeat < 1:
        raise ReproError("kernel bench needs at least one repeat")
    for name in backends:
        vector.resolve_backend(name)  # validate early
    shapes = tuple(shapes) if shapes is not None else KERNEL_BENCH_SHAPES
    if not shapes:
        raise ReproError("kernel bench needs at least one shape")
    for name in shapes:
        if name not in _SHAPE_SETUPS:
            known = ", ".join(KERNEL_BENCH_SHAPES)
            raise ReproError(
                f"unknown kernel bench shape {name!r}; known: {known}")

    harness_scale = resolve_scale(scale)

    def one_run(shape: str, backend: str):
        preset, num_cores, arrival = _SHAPE_SETUPS[shape]
        config = make_config(preset)
        config.num_cores = num_cores
        config.scale.dataset_pages = harness_scale.dataset_pages
        config.scale.warmup_ns = harness_scale.warmup_us * US
        config.scale.measurement_ns = (harness_scale.measurement_us
                                       * KERNEL_BENCH_WINDOW_FACTOR * US)
        workload = make_workload("arrayswap", harness_scale.dataset_pages,
                                 seed=42, zipf_s=harness_scale.zipf_s,
                                 ops_per_job=ops_per_job)
        arrivals = None
        if arrival == "poisson":
            # Per-core mean interarrival scaled to the request length:
            # a moderately loaded open queue — busy cores with a live
            # backlog, but arrivals still interleave the event horizon.
            arrivals = PoissonArrivals(ops_per_job * 1000.0, seed=43)
        runner = Runner(config, workload, arrivals=arrivals,
                        backend=backend)
        before = total_events_executed()
        result = runner.run()
        events = total_events_executed() - before
        return (result, events, runner.machine.state_fingerprint())

    def bench_shape(shape: str) -> KernelShapeBench:
        preset, num_cores, arrival = _SHAPE_SETUPS[shape]
        cell = KernelShapeBench(
            shape=shape,
            workload="arrayswap",
            config_preset=preset,
            num_cores=num_cores,
            arrival=arrival,
        )
        baseline = None  # (fingerprint, canonical) of the first run
        identical = True
        for backend in backends:
            best_wall = None
            events = 0
            fingerprint = ""
            stats_before = vector.stats()
            reasons_before = vector.fallback_reasons()
            for _ in range(repeat):
                result, events, fingerprint = one_run(shape, backend)
                wall = result.wall_seconds
                best_wall = (wall if best_wall is None
                             else min(best_wall, wall))
                canonical = canonical_result_dict(result)
                if baseline is None:
                    baseline = (fingerprint, canonical)
                elif (fingerprint, canonical) != baseline:
                    identical = False
            stats_after = vector.stats()
            reasons_after = vector.fallback_reasons()
            cell.entries.append(KernelBackendEntry(
                backend=backend,
                wall_seconds=best_wall,
                events_executed=events,
                events_per_second=(events / best_wall
                                   if best_wall > 0 else 0.0),
                state_fingerprint=fingerprint,
                vector_stats={
                    key: stats_after[key] - stats_before.get(key, 0)
                    for key in stats_after} if backend == "vector"
                else {},
                fallback_reasons={
                    reason: count - reasons_before.get(reason, 0)
                    for reason, count in reasons_after.items()
                    if count - reasons_before.get(reason, 0) > 0
                } if backend == "vector" else {},
            ))
        if len(cell.entries) >= 2:
            cell.bit_identical = identical
            try:
                scalar_eps = cell.entry("scalar").events_per_second
                vector_eps = cell.entry("vector").events_per_second
            except ReproError:
                pass  # exotic backend list; ratio undefined
            else:
                cell.speedup = (vector_eps / scalar_eps
                                if scalar_eps > 0 else 0.0)
        return cell

    bench = KernelBench(
        workload="arrayswap",
        scale=harness_scale.name,
        config_preset=_SHAPE_SETUPS[shapes[0]][0],
        ops_per_job=ops_per_job,
        repeat=repeat,
    )
    for name in shapes:
        bench.shapes.append(bench_shape(name))
    # Top-level mirror of the first shape (fused by default): keeps
    # schema-v2 consumers and the hand-pinned speedup floor reading
    # the batch-loop figure.  bit_identical is the all-shapes verdict
    # so one divergent cell fails the whole bench.
    first = bench.shapes[0]
    bench.entries = first.entries
    bench.speedup = first.speedup
    verdicts = [cell.bit_identical for cell in bench.shapes
                if cell.bit_identical is not None]
    if verdicts:
        bench.bit_identical = all(verdicts)
    return bench
