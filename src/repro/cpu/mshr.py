"""Core-side Miss Status Handling Registers.

The core's MSHRs track memory requests sent to the cache hierarchy and
link an incoming DRAM-cache miss signal back to the triggering
instruction in the ROB (Sec. IV-C2, Fig. 6).  When a miss signal
arrives, the hierarchy's resources are reclaimed (the ECC-error-style
path of Sec. IV-C1), which this model represents by freeing the entry.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import CapacityError, ConfigurationError, ProtocolError
from repro.stats import CounterSet


class MshrAllocation:
    """One outstanding memory request from this core."""

    __slots__ = ("mshr_id", "page", "rob_seq", "is_write")

    def __init__(self, mshr_id: int, page: int, rob_seq: int,
                 is_write: bool) -> None:
        self.mshr_id = mshr_id
        self.page = page
        self.rob_seq = rob_seq
        self.is_write = is_write

    def __repr__(self) -> str:
        return f"<MSHR#{self.mshr_id} page={self.page} rob={self.rob_seq}>"


class MshrFile:
    """A bounded file of core-side MSHRs."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("MSHR file needs at least one entry")
        self.capacity = capacity
        self._entries: Dict[int, MshrAllocation] = {}
        self._next_id = 0
        self.stats = CounterSet("core-mshr")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, page: int, rob_seq: int, is_write: bool = False) -> MshrAllocation:
        if self.is_full:
            raise CapacityError("core MSHRs exhausted")
        entry = MshrAllocation(self._next_id, page, rob_seq, is_write)
        self._next_id += 1
        self._entries[entry.mshr_id] = entry
        self.stats.add("allocations")
        return entry

    def lookup_by_page(self, page: int) -> Optional[MshrAllocation]:
        """Link an incoming miss signal back to its instruction."""
        for entry in self._entries.values():
            if entry.page == page:
                return entry
        return None

    def reclaim(self, mshr_id: int) -> MshrAllocation:
        """Free the entry (data returned, or miss signal received)."""
        entry = self._entries.pop(mshr_id, None)
        if entry is None:
            raise ProtocolError(f"reclaim of unknown MSHR {mshr_id}")
        self.stats.add("reclaims")
        return entry

    def reclaim_by_page(self, page: int) -> MshrAllocation:
        entry = self.lookup_by_page(page)
        if entry is None:
            raise ProtocolError(f"no MSHR tracking page {page}")
        return self.reclaim(entry.mshr_id)
