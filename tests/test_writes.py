"""Tests for the write-path subsystem (repro.writes): FTL write
amplification properties, the readiness sketch and admission policies,
gated device write counters, and the policy-sweep bench driver."""

import dataclasses
import random

import pytest

from repro.config import make_config
from repro.config.system import FlashConfig, WritesConfig
from repro.errors import ReproError
from repro.flash import FlashDevice
from repro.flash.ftl import PageMappingFtl
from repro.harness.common import QUICK
from repro.sim import Engine, spawn
from repro.writes import (
    ReadinessSketch,
    WritesBench,
    WritesCell,
    make_admission,
    parse_write_ratio_sweep,
    writes_overrides,
)
from repro.writes.bench import POLICY_ORDER, _check_policy_order, \
    writes_scale


def run_overwrites(ftl, pages):
    """Write a page stream, collecting whenever the plane is under
    pressure — the same order of operations the device model uses."""
    for page in pages:
        plane = ftl.plane_of(page)
        while ftl.gc_pressure(plane):
            if ftl.collect(plane) == (0, 0):
                break
        ftl.write(page)


def wa_of(ftl):
    host = ftl.stats.get("writes")
    return (host + ftl.stats.get("gc_migrated_pages")) / host


class TestFtlWriteAmplification:
    @pytest.mark.parametrize("seed", range(5))
    def test_wa_never_below_one(self, seed):
        ftl = PageMappingFtl(96, 4, 8, 0.6)
        rng = random.Random(seed)
        run_overwrites(ftl, [int(96 * rng.random() ** 2)
                             for _ in range(3000)])
        assert wa_of(ftl) >= 1.0

    def test_sequential_overwrite_with_abundant_op_is_wa_one(self):
        # Sequential rounds invalidate whole blocks in order, so every
        # GC victim is fully garbage: zero migrations, WA exactly 1.
        ftl = PageMappingFtl(32, 1, 8, 0.9)
        run_overwrites(ftl, [page for _ in range(6) for page in range(32)])
        assert wa_of(ftl) == pytest.approx(1.0)

    def test_wa_grows_as_overprovisioning_shrinks(self):
        amplifications = []
        for op in (0.9, 0.7, 0.55, 0.45):
            ftl = PageMappingFtl(64, 1, 8, op)
            rng = random.Random(1234)
            run_overwrites(ftl, [rng.randrange(64) for _ in range(2000)])
            amplifications.append(wa_of(ftl))
        assert amplifications == sorted(amplifications)
        assert amplifications[0] < amplifications[-1]

    def test_has_reclaimable_tracks_garbage(self):
        # 16 pages, one plane, 4 blocks of 4: after nine distinct
        # writes the plane is under pressure but every closed block is
        # fully valid — waiting on GC would be hopeless.
        ftl = PageMappingFtl(16, 1, 4, 0.0)
        for page in range(9):
            ftl.write(page)
        assert ftl.gc_pressure(0)
        assert not ftl.has_reclaimable(0)
        # One overwrite punches garbage into a closed block.
        ftl.write(0)
        assert ftl.has_reclaimable(0)
        migrated, erased = ftl.collect(0)
        assert erased == 1 and migrated == 3


class TestReadinessSketch:
    def test_same_seed_same_estimates(self):
        a = ReadinessSketch(rows=2, bits=8, window=1024, seed=7)
        b = ReadinessSketch(rows=2, bits=8, window=1024, seed=7)
        rng = random.Random(3)
        for _ in range(500):
            page = rng.randrange(4096)
            a.observe(page)
            b.observe(page)
        assert all(a.estimate(page) == b.estimate(page)
                   for page in range(4096))

    def test_estimate_upper_bounds_true_count(self):
        sketch = ReadinessSketch(rows=2, bits=12, window=4096, seed=1)
        for _ in range(3):
            sketch.observe(5)
        assert sketch.estimate(5) >= 3
        assert sketch.estimate(999) == 0

    def test_window_rollover_halves_counts(self):
        sketch = ReadinessSketch(rows=2, bits=12, window=8, seed=1)
        for _ in range(4):
            sketch.observe(1)
        assert sketch.estimate(1) == 4
        for page in (100, 101, 102, 103):
            sketch.observe(page)
        assert sketch.estimate(1) == 2


class TestAdmissionPolicies:
    def test_write_back_admits_everything(self):
        policy = make_admission(WritesConfig(enabled=True))
        assert policy.kind == "write-back"
        assert not policy.propagate_writes
        assert policy.admit_writeback(42)

    def test_write_through_propagates_and_elides_writebacks(self):
        policy = make_admission(
            WritesConfig(enabled=True, admission_policy="write-through"))
        assert policy.propagate_writes
        assert not policy.admit_writeback(42)

    def test_readiness_requires_k_reads(self):
        policy = make_admission(
            WritesConfig(enabled=True, admission_policy="readiness",
                         readiness_reads=2))
        assert not policy.admit_writeback(7)
        policy.observe_read(7)
        assert not policy.admit_writeback(7)
        policy.observe_read(7)
        assert policy.admit_writeback(7)

    def test_readiness_decisions_are_seeded(self):
        config = WritesConfig(enabled=True, admission_policy="readiness")
        a, b = make_admission(config), make_admission(config)
        rng = random.Random(11)
        pages = [rng.randrange(1 << 16) for _ in range(200)]
        for page in pages:
            a.observe_read(page)
            b.observe_read(page)
        assert [a.admit_writeback(page) for page in pages] \
            == [b.admit_writeback(page) for page in pages]


class TestDeviceWriteCounters:
    def _write_one(self, writes):
        engine = Engine()
        config = FlashConfig(channels=2, dies_per_channel=1,
                             planes_per_die=2, pages_per_block=8,
                             overprovisioning=0.5)
        device = FlashDevice(engine, config, 256, writes=writes)

        def writer():
            yield device.write(3)

        spawn(engine, writer())
        engine.run()
        return device

    def test_disabled_config_keeps_counters_invisible(self):
        device = self._write_one(WritesConfig(enabled=False))
        assert device.writes is None
        stats = device.stats.as_dict()
        assert "host_writes" not in stats
        assert "device_writes" not in stats

    def test_enabled_config_counts_host_and_device_writes(self):
        device = self._write_one(WritesConfig(enabled=True))
        assert device.writes is not None
        stats = device.stats.as_dict()
        assert stats["host_writes"] == 1
        assert stats["device_writes"] == 1

    def test_write_counters_scoped_to_measurement_window(self):
        device = self._write_one(WritesConfig(enabled=True))
        assert device.gc.write_window()["host_writes"] == 1
        device.gc.start_measurement()
        window = device.gc.write_window()
        assert window["host_writes"] == 0
        assert window["device_writes"] == 0
        assert window["wa_factor"] == 1.0


class TestSweepHelpers:
    def test_parse_write_ratio_sweep(self):
        assert parse_write_ratio_sweep("0.5,0.25,0.5") == (0.25, 0.5)
        assert parse_write_ratio_sweep("1.0") == (1.0,)

    @pytest.mark.parametrize("text", ["", "abc", "0", "-0.5", "1.5"])
    def test_parse_write_ratio_sweep_rejects(self, text):
        with pytest.raises(ReproError):
            parse_write_ratio_sweep(text)

    def test_writes_overrides_sets_policy(self):
        assert writes_overrides("readiness") == \
            (("writes.admission_policy", "readiness"),)

    def test_writes_overrides_rejects_unknown_policy(self):
        with pytest.raises(ReproError):
            writes_overrides("write-sometimes")

    def test_writes_scale_bounds_footprint(self):
        scale = writes_scale(QUICK)
        assert scale.name == "quick-writes"
        assert scale.dataset_pages <= 192
        assert scale.zipf_s <= 1.2

    def test_write_presets_enable_writes(self):
        for name in ("astriflash-writes", "flash-sync-writes"):
            config = make_config(name)
            assert config.writes.enabled
            assert config.flash.gc_policy == "tiny-tail"


def _order_bench(e2e_by_policy):
    cells = [
        WritesCell(preset="p", policy=policy, write_ratio=0.5,
                   flash_writes_per_app_write=value)
        for policy, value in e2e_by_policy.items()
    ]
    return WritesBench(
        experiment="kv", scale="quick", workload="kvstore", seed=42,
        write_ratio_points=[0.5], presets=["p"],
        policies=list(e2e_by_policy), cells=cells,
    )


class TestPolicyOrderCheck:
    def test_strictly_decreasing_order_passes(self):
        bench = _order_bench({"write-through": 0.9, "write-back": 0.5,
                              "readiness": 0.3})
        assert _check_policy_order(bench)

    def test_inverted_order_fails(self):
        bench = _order_bench({"write-through": 0.3, "write-back": 0.5,
                              "readiness": 0.9})
        assert not _check_policy_order(bench)

    def test_failed_cell_fails_the_check(self):
        bench = _order_bench({"write-through": 0.9, "write-back": 0.5})
        bench.cells[0] = dataclasses.replace(bench.cells[0], failed=True)
        assert not _check_policy_order(bench)

    def test_single_policy_vacuously_passes(self):
        bench = _order_bench({"write-back": 0.5})
        assert _check_policy_order(bench)

    def test_policy_order_covers_all_policies(self):
        assert set(POLICY_ORDER) == set(WritesConfig.POLICIES)


class TestRunWritesEndToEnd:
    @pytest.fixture(scope="class")
    def bench(self):
        from repro.writes import run_writes

        return run_writes(presets=("flash-sync-writes",),
                          write_ratios=(0.5,),
                          policies=("write-through", "readiness"))

    def test_cells_complete_and_measure_writes(self, bench):
        assert len(bench.cells) == 2
        for cell in bench.cells:
            assert not cell.failed
            assert cell.host_writes > 0
            assert cell.wa_factor >= 1.0

    def test_readiness_rejects_and_beats_write_through(self, bench):
        by_policy = {cell.policy: cell for cell in bench.cells}
        assert by_policy["readiness"].admission_rejects > 0
        assert by_policy["readiness"].flash_writes_per_app_write \
            < by_policy["write-through"].flash_writes_per_app_write
        assert bench.policy_order_ok

    def test_execution_records_writes_fallback(self, bench):
        assert bench.execution["fallback_reasons"].get("writes", 0) > 0 \
            or bench.execution["backend"] == "scalar"

    def test_payload_projects_onto_metrics_registry(self, bench):
        import json

        from repro.metrics import bench_view

        payload = json.loads(bench.to_json())
        assert payload["schema_version"] >= 1
        assert "write_ratio_points" in payload
        view = bench_view(payload)
        assert view.verb == "writes"
        assert view.metrics["writes/policy_order_ok"] == 1.0
        key = ("writes/admission_rejects{policy=readiness,"
               "preset=flash-sync-writes,ratio=0.5}")
        assert view.metrics[key] > 0
        assert view.policies[key] == {"mode": "exact"}
