"""Figure 9: simulated throughput normalized to a DRAM-only system.

Closed-loop maximum-throughput runs of every workload under
DRAM-only, AstriFlash, AstriFlash-Ideal, OS-Swap, and Flash-Sync.
Paper shape: AstriFlash ~95% (Ideal ~96%), OS-Swap ~58%,
Flash-Sync ~27%; TPCC degrades the most under AstriFlash because its
compute-heavy ROB makes each flush costlier.

Every (config, workload) cell is an independent run, so the whole grid
fans out through :mod:`repro.harness.parallel`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.harness.common import ExperimentResult, resolve_scale
from repro.harness.parallel import RunSpec, run_specs

CONFIGS: Sequence[str] = (
    "dram-only", "astriflash", "astriflash-ideal", "os-swap", "flash-sync",
)


def run(scale="quick", seed: int = 42,
        configs: Sequence[str] = CONFIGS,
        jobs: Optional[int] = None,
        snapshots: Optional[bool] = None,
        snapshot_dir=None) -> ExperimentResult:
    """Regenerate Figure 9's normalized-throughput bars."""
    scale = resolve_scale(scale)
    if "dram-only" not in configs:
        raise ValueError("Figure 9 needs the dram-only baseline")
    result = ExperimentResult(
        experiment="fig9",
        title="Fig. 9: throughput normalized to DRAM-only",
        columns=["workload"] + [name for name in configs
                                if name != "dram-only"],
        notes=("Paper: AstriFlash ~0.95, Ideal ~0.96, OS-Swap ~0.58, "
               "Flash-Sync ~0.27 on average."),
    )
    cells = [(workload_name, config_name)
             for workload_name in scale.workloads
             for config_name in configs]
    specs = [RunSpec(config_name, workload_name, scale, seed=seed)
             for workload_name, config_name in cells]
    outcomes = dict(zip(cells, run_specs(specs, jobs=jobs,
                                         snapshots=snapshots,
                                         snapshot_dir=snapshot_dir)))

    averages: Dict[str, list] = {name: [] for name in configs
                                 if name != "dram-only"}
    for workload_name in scale.workloads:
        baseline = outcomes[(workload_name, "dram-only")]
        row = [workload_name]
        for config_name in configs:
            if config_name == "dram-only":
                continue
            outcome = outcomes[(workload_name, config_name)]
            ratio = (outcome.throughput_jobs_per_s
                     / baseline.throughput_jobs_per_s)
            row.append(ratio)
            averages[config_name].append(ratio)
        result.add_row(*row)
    result.add_row(
        "geomean",
        *[
            _geomean(averages[name])
            for name in configs if name != "dram-only"
        ],
    )
    return result


def _geomean(values) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))
