"""Cross-run comparison: per-metric deltas, verdicts, and the CI gate.

``repro diff A B`` compares two ledger records metric-by-metric and
classifies every delta:

* ``within-noise`` — relative change inside the threshold (or an
  ``info``-policy metric, which is never gated);
* ``regression`` / ``improvement`` — a thresholded move in a metric
  whose direction is known (lower-is-better for latencies/stalls,
  higher-is-better for throughputs);
* ``changed`` — a thresholded move with no known direction (counters
  whose drift is worth a look but not a verdict);
* ``added`` / ``removed`` — the metric exists on one side only.

``repro regress --baseline FILE`` runs the same engine against a
*committed* baseline (a ledger record dump or any recognized
``BENCH_*`` payload) and collapses the verdicts into a pass/fail exit
code — the one place CI's speedup floor and bit-identity gate live.
Baselines carry per-metric policies (``exact``/``floor``/``relative``/
``info``, see :mod:`repro.metrics.registry`); metrics without one fall
back to the direction heuristics below.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.metrics.ledger import RunRecord, read_ledger
from repro.metrics.registry import parse_key

#: Default relative-change threshold for diff verdicts.
DEFAULT_THRESHOLD = 0.05

#: Substrings marking a metric as lower-is-better (latencies, stalls,
#: error/retry counters, backlog) or higher-is-better (throughputs).
#: First match wins, lower checked first: "p99" beats "throughput" in
#: a name carrying both.
_LOWER_TOKENS = ("_ns", "_us", "p99", "p50", "latency", "miss_ratio",
                 "backlog", "stall", "timeout", "reissue", "retries",
                 "unfinished", "queued_jobs", "inflight", "fallback",
                 "failed", "uncorrectable", "wall_seconds")
_HIGHER_TOKENS = ("throughput", "jobs_per_s", "events_per_second",
                  "speedup", "sustained", "saturation", "completed",
                  "hits", "bit_identical", "monotonic", "qps")


def metric_direction(key: str) -> str:
    """``"lower"``, ``"higher"``, or ``"neutral"`` for a rendered key."""
    name, _ = parse_key(key)
    lowered = name.lower()
    for token in _LOWER_TOKENS:
        if token in lowered:
            return "lower"
    for token in _HIGHER_TOKENS:
        if token in lowered:
            return "higher"
    return "neutral"


@dataclass
class MetricDelta:
    """One metric's movement between baseline and current."""

    key: str
    baseline: Optional[float]
    current: Optional[float]
    verdict: str = "within-noise"
    mode: str = "relative"
    direction: str = "neutral"

    @property
    def delta(self) -> float:
        if self.baseline is None or self.current is None:
            return 0.0
        return self.current - self.baseline

    @property
    def relative(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0.0:
            return None if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)

    def format_row(self) -> str:
        base = "-" if self.baseline is None else f"{self.baseline:,.4g}"
        cur = "-" if self.current is None else f"{self.current:,.4g}"
        rel = self.relative
        rel_text = "" if rel is None else f" ({rel:+.1%})"
        return (f"  {self.verdict:<12} {self.key}: "
                f"{base} -> {cur}{rel_text}")


def classify_delta(key: str, baseline: Optional[float],
                   current: Optional[float], threshold: float,
                   policy: Optional[Mapping[str, object]] = None,
                   ) -> MetricDelta:
    """Verdict for one metric under a policy (or the heuristics)."""
    mode = str((policy or {}).get("mode", "relative"))
    direction = metric_direction(key)
    delta = MetricDelta(key=key, baseline=baseline, current=current,
                        mode=mode, direction=direction)
    if baseline is None:
        delta.verdict = "added"
        return delta
    if current is None:
        delta.verdict = "removed"
        return delta
    if mode == "info":
        delta.verdict = "within-noise"
        return delta
    if mode == "exact":
        delta.verdict = "within-noise" if current == baseline \
            else "regression"
        return delta
    if mode == "floor":
        delta.verdict = "regression" if current < baseline else (
            "within-noise" if current == baseline else "improvement")
        return delta
    relative = delta.relative
    moved = (relative is not None and abs(relative) > threshold) \
        or (relative is None and current != baseline)
    if not moved:
        delta.verdict = "within-noise"
    elif direction == "neutral":
        delta.verdict = "changed"
    else:
        worse = delta.delta > 0 if direction == "lower" \
            else delta.delta < 0
        delta.verdict = "regression" if worse else "improvement"
    return delta


def diff_metric_dicts(baseline: Mapping[str, float],
                      current: Mapping[str, float],
                      threshold: float = DEFAULT_THRESHOLD,
                      policies: Optional[Mapping[str, Mapping]] = None,
                      ) -> List[MetricDelta]:
    policies = policies or {}
    keys = list(baseline) + [key for key in current if key not in baseline]
    return [
        classify_delta(key, baseline.get(key), current.get(key),
                       threshold, policies.get(key))
        for key in keys
    ]


@dataclass
class DiffReport:
    """Every verdict from one baseline/current comparison."""

    baseline_label: str
    current_label: str
    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)
    #: None when either side carries no fingerprint.
    fingerprint_match: Optional[bool] = None

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.verdict] = counts.get(delta.verdict, 0) + 1
        return counts

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline_label,
            "current": self.current_label,
            "threshold": self.threshold,
            "fingerprint_match": self.fingerprint_match,
            "counts": self.counts(),
            "deltas": [
                {"key": d.key, "baseline": d.baseline,
                 "current": d.current, "verdict": d.verdict,
                 "mode": d.mode, "direction": d.direction}
                for d in self.deltas
            ],
        }

    def format_text(self, show_all: bool = False) -> str:
        counts = self.counts()
        summary = ", ".join(
            f"{counts[name]} {name}" for name in
            ("regression", "improvement", "changed", "added", "removed",
             "within-noise") if counts.get(name)
        ) or "no metrics compared"
        lines = [
            f"diff: {self.baseline_label} -> {self.current_label} "
            f"(threshold {self.threshold:.0%})",
            f"  {summary}",
        ]
        if self.fingerprint_match is not None:
            lines.append("  fingerprints: "
                         + ("EQUAL" if self.fingerprint_match
                            else "DIVERGED"))
        for delta in self.deltas:
            if show_all or delta.verdict not in ("within-noise",):
                lines.append(delta.format_row())
        return "\n".join(lines)


def diff_records(baseline: RunRecord, current: RunRecord,
                 threshold: float = DEFAULT_THRESHOLD,
                 policies: Optional[Mapping[str, Mapping]] = None,
                 ) -> DiffReport:
    report = DiffReport(
        baseline_label=baseline.label(),
        current_label=current.label(),
        threshold=threshold,
        deltas=diff_metric_dicts(baseline.metrics, current.metrics,
                                 threshold, policies),
    )
    if baseline.fingerprint and current.fingerprint:
        report.fingerprint_match = \
            baseline.fingerprint == current.fingerprint
    return report


# ------------------------------------------------------ regression gate --


@dataclass
class RegressReport:
    """Machine-readable pass/fail against a committed baseline."""

    passed: bool
    diff: DiffReport
    reason: str = ""

    def to_json_dict(self) -> Dict[str, object]:
        payload = self.diff.to_json_dict()
        payload["passed"] = self.passed
        payload["reason"] = self.reason
        return payload

    def format_text(self) -> str:
        lines = [self.diff.format_text()]
        if self.reason:
            lines.append(f"  {self.reason}")
        lines.append(f"REGRESS {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _baseline_policies(path: os.PathLike) -> Dict[str, Dict[str, object]]:
    """Per-metric policies for a baseline file: explicit policies from
    a record dump's ``policies`` key, else the bench adapter's."""
    from repro.jsonutil import loads as json_loads
    from repro.metrics.registry import bench_view

    with open(path, "r", encoding="utf-8") as handle:
        payload = json_loads(handle.read())
    if not isinstance(payload, dict):
        return {}
    if "verb" in payload and "metrics" in payload:
        policies = payload.get("policies")
        return dict(policies) if isinstance(policies, dict) else {}
    try:
        return bench_view(payload).policies
    except ReproError:
        return {}


def run_regress(baseline_path: os.PathLike,
                current_path: Optional[os.PathLike] = None,
                ledger: Optional[os.PathLike] = None,
                threshold: float = DEFAULT_THRESHOLD) -> RegressReport:
    """The ``repro regress`` engine.

    ``current_path`` names a bench JSON / record dump to gate; without
    it the newest ledger record whose verb matches the baseline's is
    gated (so CI can bench, append, and regress in three commands).
    Raises :class:`ReproError` when either side cannot be resolved —
    the CLI maps that to exit code 2, distinct from a failing gate (1).
    """
    from repro.metrics.ledger import record_from_file

    if not os.path.isfile(baseline_path):
        raise ReproError(f"baseline {baseline_path} does not exist")
    baseline = record_from_file(baseline_path)
    policies = _baseline_policies(baseline_path)

    if current_path is not None:
        if not os.path.isfile(current_path):
            raise ReproError(f"current run {current_path} does not exist")
        current = record_from_file(current_path)
    else:
        records = read_ledger(ledger)
        candidates = [record for record in records
                      if not baseline.verb or record.verb == baseline.verb]
        if not candidates:
            raise ReproError(
                f"no ledger record with verb {baseline.verb!r} to gate "
                "(run the bench first, or pass --current)"
            )
        current = candidates[-1]

    diff = diff_records(baseline, current, threshold=threshold,
                        policies=policies)
    reason = ""
    passed = not diff.regressions
    if diff.fingerprint_match is False:
        passed = False
        reason = "state fingerprint diverged from the baseline"
    elif diff.regressions:
        reason = (f"{len(diff.regressions)} metric(s) regressed beyond "
                  "policy")
    return RegressReport(passed=passed, diff=diff, reason=reason)
