"""Figure 3: analytic 99th-percentile latency vs load.

The paper's Fig. 3 plots the p99 response latency (normalized to the
DRAM-only average service time) against throughput (normalized to the
DRAM-only maximum) for DRAM-only, Flash-Sync (M/M/1) and AstriFlash,
OS-Swap (M/M/k), assuming 10 us of work per request and one 50 us
flash access.
"""

from __future__ import annotations

from typing import Sequence

from repro.analytic.queueing import paper_figure3_models
from repro.errors import ConfigurationError
from repro.harness.common import ExperimentResult

LOAD_POINTS: Sequence[float] = (
    0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95,
)


def run(scale="quick", percentile: float = 0.99, jobs=None) -> ExperimentResult:
    """Regenerate Figure 3's four curves."""
    del scale, jobs  # analytic: instant serially
    models = paper_figure3_models()
    dram = next(m for m in models if m.name == "dram-only")
    dram_max_rate = dram.max_throughput_per_second
    normalizer = dram.work_ns  # average DRAM-only service time

    result = ExperimentResult(
        experiment="fig3",
        title=(f"Fig. 3: p{percentile * 100:.0f} latency (x avg DRAM-only "
               "service time) vs load (x DRAM-only max throughput)"),
        columns=["load"] + [model.name for model in models],
        notes=("Flash-Sync saturates below 20% load; OS-Swap near 50%; "
               "AstriFlash tracks DRAM-only."),
    )
    for load in LOAD_POINTS:
        arrival_rate = load * dram_max_rate
        row = [load]
        for model in models:
            try:
                latency = model.percentile_ns(percentile, arrival_rate)
                row.append(latency / normalizer)
            except ConfigurationError:
                row.append(float("inf"))  # beyond this model's capacity
        result.add_row(*row)
    return result


def max_load_within_slo(slo_factor: float = 40.0,
                        percentile: float = 0.99) -> dict:
    """Highest normalized load each design sustains under an SLO of
    ``slo_factor`` x the average service time (the paper's Sec. III-A
    observation uses 40x)."""
    models = paper_figure3_models()
    dram = next(m for m in models if m.name == "dram-only")
    slo_ns = slo_factor * dram.work_ns
    sustained = {}
    for model in models:
        best = 0.0
        for step in range(1, 100):
            load = step / 100.0
            arrival = load * dram.max_throughput_per_second
            try:
                if model.percentile_ns(percentile, arrival) <= slo_ns:
                    best = load
            except ConfigurationError:
                break
        sustained[model.name] = best
    return sustained
