"""Tests for the observability subsystem (``repro.obs``).

Covers the four layers (DESIGN.md §4d) — tracer/record accounting,
Chrome trace-event export + validation, time-series telemetry, and
tail-latency attribution — plus the two system-level guarantees:
tracing leaves simulation results bit-identical, and per-request
component sums reconstruct measured service latency exactly.
"""

import csv
import io
import json

import pytest

from repro.config import make_config
from repro.core import Runner
from repro.obs import (
    COMPONENTS,
    RequestRecord,
    Tracer,
    active,
    attribute,
    disable,
    enable,
    export_chrome_trace,
    export_trace_events,
    format_attribution,
    validate_chrome_trace,
    validate_trace_events,
    write_telemetry_csv,
)
from repro.obs.telemetry import TELEMETRY_FIELDS, telemetry_fieldnames
from repro.units import US
from repro.workloads import make_workload


@pytest.fixture(autouse=True)
def _tracing_reset():
    """No test may leak an enabled tracer into the rest of the suite."""
    yield
    disable()


class FakeJob:
    def __init__(self, job_id, workload_name="wl", arrived_at=0.0,
                 misses=0):
        self.job_id = job_id
        self.workload_name = workload_name
        self.arrived_at = arrived_at
        self.misses = misses


class FakePayload:
    """Stands in for a MissRequest carrying flash timing stamps."""

    def __init__(self, issued, done):
        self.flash_issued_at = issued
        self.flash_done_at = done


# --------------------------------------------------------- charge_resume --


class TestChargeResume:
    def _record(self):
        return RequestRecord(0, "wl", "run", arrived_at=0.0, started_at=0.0)

    def test_decomposes_parked_interval_with_stamps(self):
        record = self._record()
        record.charge_resume(pending_since=100.0, data_ready_at=900.0,
                             run_start=1000.0, switch_ns=50.0,
                             payload=FakePayload(200.0, 800.0))
        assert record.msr_wait == pytest.approx(100.0)
        assert record.flash_read == pytest.approx(600.0)
        assert record.install_wait == pytest.approx(100.0)
        assert record.ready_wait == pytest.approx(50.0)
        assert record.switch == pytest.approx(50.0)
        # The decomposition partitions [pending_since, run_start] exactly.
        assert record.span_sum_ns() == pytest.approx(900.0)

    def test_stamps_clipped_into_parked_interval(self):
        # A coalesced miss can carry stamps from before this thread
        # parked (or after its data-ready notification); clipping keeps
        # the partition exact.
        record = self._record()
        record.charge_resume(pending_since=100.0, data_ready_at=900.0,
                             run_start=1000.0, switch_ns=50.0,
                             payload=FakePayload(50.0, 2000.0))
        assert record.msr_wait == 0.0
        assert record.install_wait == 0.0
        assert record.flash_read == pytest.approx(800.0)
        assert record.span_sum_ns() == pytest.approx(900.0)

    def test_no_payload_falls_back_to_flash_wait(self):
        # OS-swap faults have no MissRequest stamps.
        record = self._record()
        record.charge_resume(pending_since=100.0, data_ready_at=900.0,
                             run_start=1000.0, switch_ns=50.0, payload=None)
        assert record.flash_wait == pytest.approx(800.0)
        assert record.ready_wait == pytest.approx(50.0)
        assert record.msr_wait == 0.0 and record.flash_read == 0.0
        assert record.span_sum_ns() == pytest.approx(900.0)

    def test_unknown_data_ready_charges_whole_park(self):
        record = self._record()
        record.charge_resume(pending_since=100.0, data_ready_at=None,
                             run_start=1000.0, switch_ns=50.0, payload=None)
        assert record.ready_wait == 0.0
        assert record.flash_wait == pytest.approx(850.0)
        assert record.span_sum_ns() == pytest.approx(900.0)

    def test_span_list_is_bounded_but_components_stay_exact(self):
        record = self._record()
        for index in range(RequestRecord.MAX_SPANS + 50):
            record.add_span("compute", float(index), float(index + 1))
            record.compute += 1.0
        assert len(record.spans) == RequestRecord.MAX_SPANS
        assert record.compute == RequestRecord.MAX_SPANS + 50

    def test_derived_quantities(self):
        record = RequestRecord(3, "wl", "run", arrived_at=10.0,
                               started_at=40.0)
        with pytest.raises(ValueError):
            record.service_latency_ns
        record.finished_at = 140.0
        record.compute = 100.0
        assert record.queue_wait_ns == pytest.approx(30.0)
        assert record.service_latency_ns == pytest.approx(100.0)
        assert record.coverage() == pytest.approx(1.0)
        assert set(record.components()) == set(COMPONENTS)


# ----------------------------------------------------------------- tracer --


class TestTracer:
    def test_tracing_disabled_by_default(self):
        disable()
        assert active() is None

    def test_enable_installs_and_disable_removes(self):
        tracer = Tracer()
        enable(tracer)
        assert active() is tracer
        disable()
        assert active() is None

    def test_sample_every_filters_by_job_id(self):
        tracer = Tracer(sample_every=3)
        sampled = [job_id for job_id in range(9)
                   if tracer.start_request(FakeJob(job_id), 0.0) is not None]
        assert sampled == [0, 3, 6]
        assert tracer.requests_seen == 9

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(sample_every=0)

    def test_finish_unsampled_request_is_noop(self):
        tracer = Tracer(sample_every=2)
        tracer.start_request(FakeJob(1), 0.0)  # 1 % 2 != 0: unsampled
        tracer.finish_request(FakeJob(1), 50.0)
        assert tracer.completed == []

    def test_max_requests_counts_overflow(self):
        tracer = Tracer(max_requests=1, sample_every=1)
        for job_id in (0, 1):
            job = FakeJob(job_id)
            tracer.start_request(job, 0.0)
            tracer.finish_request(job, 10.0)
        assert len(tracer.completed) == 1
        assert tracer.dropped_requests == 1

    def test_event_budget_keeps_slices_matched(self):
        tracer = Tracer(max_events=3, telemetry_interval_ns=0.0)
        tracer.begin_run("r")
        tracer.push("core0", "a", 0.0)
        tracer.complete("core0", "x", 1.0, 2.0)
        tracer.push("core0", "b", 3.0)   # hits the budget boundary
        tracer.push("core0", "c", 4.0)   # over budget: dropped B
        tracer.pop("core0", 5.0)         # matching E dropped too
        tracer.pop("core0", 6.0)
        tracer.pop("core0", 7.0)
        assert tracer.dropped_events == 2
        assert validate_trace_events(export_trace_events(tracer)) == []

    def test_unbalanced_pop_is_ignored(self):
        tracer = Tracer()
        tracer.begin_run("r")
        tracer.pop("core0", 1.0)  # nothing open
        assert tracer.events == []

    def test_end_run_closes_open_slices(self):
        tracer = Tracer()
        tracer.begin_run("r")
        tracer.push("core0", "job", 10.0)
        tracer.push("core1", "job", 20.0)
        tracer.end_run(99.0)
        events = export_trace_events(tracer)
        assert validate_trace_events(events) == []
        closes = [e for e in events if e["ph"] == "E"]
        assert len(closes) == 2
        assert all(e["args"]["truncated"] for e in closes)

    def test_finished_request_emits_async_pair(self):
        tracer = Tracer()
        tracer.begin_run("r")
        job = FakeJob(0, workload_name="tatp", misses=2)
        tracer.start_request(job, 5.0)
        record = tracer.lookup(0)
        record.compute = 10.0
        tracer.finish_request(job, 25.0)
        events = export_trace_events(tracer)
        assert validate_trace_events(events) == []
        pair = [e for e in events if e["ph"] in ("b", "e")]
        assert [e["ph"] for e in pair] == ["b", "e"]
        assert pair[0]["id"] == pair[1]["id"] == "tatp#0"
        assert record.misses == 2
        assert tracer.summary()["requests_traced"] == 1

    def test_begin_run_isolates_job_ids(self):
        tracer = Tracer()
        tracer.begin_run("first")
        tracer.start_request(FakeJob(0), 0.0)
        tracer.begin_run("second")
        # Job ids restart per run; the stale record must not resolve.
        assert tracer.lookup(0) is None
        assert tracer.current_run == "second"


# ----------------------------------------------------------------- export --


class TestChromeExport:
    def _small_tracer(self):
        tracer = Tracer(telemetry_interval_ns=0.0)
        tracer.begin_run("cfg/wl")
        tracer.push("core0", "job#0", 100.0, {"job": 0})
        tracer.instant("core0", "miss", 180.0, {"page": 7})
        tracer.complete("flash0", "read", 150.0, 250.0, {"page": 7})
        tracer.counter("msr", 200.0, 4.0)
        tracer.pop("core0", 300.0)
        return tracer

    def test_small_trace_validates(self):
        events = export_trace_events(self._small_tracer())
        assert validate_trace_events(events) == []

    def test_metadata_names_processes_and_threads(self):
        events = export_trace_events(self._small_tracer())
        meta = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "cfg/wl" in meta
        assert {"core0", "flash0", "counters"} <= set(meta)

    def test_timestamps_are_microseconds_and_sorted(self):
        events = export_trace_events(self._small_tracer())
        body = [e for e in events if e["ph"] != "M"]
        timestamps = [e["ts"] for e in body]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] == pytest.approx(0.1)  # 100 ns
        complete = next(e for e in body if e["ph"] == "X")
        assert complete["dur"] == pytest.approx(0.1)  # 100 ns span

    def test_track_display_order_is_numeric_aware(self):
        tracer = Tracer(telemetry_interval_ns=0.0)
        tracer.begin_run("r")
        for track in ("core10", "bc", "core2", "flash0"):
            tracer.instant(track, "tick", 1.0)
        events = export_trace_events(tracer)
        threads = [e["args"]["name"] for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"]
        assert threads == ["core2", "core10", "flash0", "bc"]

    def test_full_document_shape(self):
        document = export_chrome_trace(self._small_tracer())
        assert validate_chrome_trace(document) == []
        assert document["otherData"]["runs"] == ["cfg/wl"]
        json.dumps(document)  # must be serializable as-is

    def test_empty_tracer_exports_empty_valid_trace(self):
        document = export_chrome_trace(Tracer())
        assert validate_chrome_trace(document) == []
        assert document["traceEvents"] == []


class TestTraceValidatorNegatives:
    def test_unknown_phase(self):
        problems = validate_trace_events(
            [{"ph": "Q", "pid": 1, "tid": 1, "ts": 0.0}])
        assert any("unknown phase" in p for p in problems)

    def test_missing_pid(self):
        problems = validate_trace_events([{"ph": "B", "tid": 1, "ts": 0.0}])
        assert any("missing pid/tid" in p for p in problems)

    def test_missing_ts(self):
        problems = validate_trace_events([{"ph": "i", "pid": 1, "tid": 1}])
        assert any("missing ts" in p for p in problems)

    def test_decreasing_timestamps(self):
        events = [
            {"ph": "i", "pid": 1, "tid": 1, "ts": 5.0},
            {"ph": "i", "pid": 1, "tid": 1, "ts": 3.0},
        ]
        assert any("decreases" in p for p in validate_trace_events(events))

    def test_end_without_begin(self):
        problems = validate_trace_events(
            [{"ph": "E", "pid": 1, "tid": 1, "ts": 0.0}])
        assert any("E without open B" in p for p in problems)

    def test_unclosed_begin(self):
        problems = validate_trace_events(
            [{"ph": "B", "pid": 1, "tid": 1, "ts": 0.0, "name": "x"}])
        assert any("unclosed B" in p for p in problems)

    def test_negative_complete_duration(self):
        problems = validate_trace_events(
            [{"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1.0}])
        assert any("negative X duration" in p for p in problems)

    def test_async_end_without_begin(self):
        problems = validate_trace_events(
            [{"ph": "e", "pid": 1, "tid": 1, "ts": 0.0,
              "cat": "request", "id": "x"}])
        assert any("async e without b" in p for p in problems)

    def test_unclosed_async_begin(self):
        problems = validate_trace_events(
            [{"ph": "b", "pid": 1, "tid": 1, "ts": 0.0,
              "cat": "request", "id": "x"}])
        assert any("unclosed async span" in p for p in problems)

    def test_document_without_event_list(self):
        assert validate_chrome_trace({}) == [
            "document has no traceEvents list"]


# ------------------------------------------------------------ attribution --


def _finished_record(run, job_id, latency_ns, **components):
    record = RequestRecord(job_id, "wl", run, arrived_at=0.0,
                           started_at=0.0)
    record.finished_at = latency_ns
    for name, value in components.items():
        setattr(record, name, value)
    return record


class TestAttribution:
    def test_buckets_partition_the_population(self):
        records = [_finished_record("r", i, float(i + 1) * US,
                                    compute=float(i + 1) * US)
                   for i in range(100)]
        (result,) = attribute(records)
        assert result.count == 100
        assert [b.count for b in result.buckets] == [50, 40, 9, 1]
        assert sum(b.count for b in result.buckets) == 100
        assert result.worst_coverage_error == 0.0
        # Single-component records: compute carries 100% of each band.
        for bucket in result.buckets:
            assert bucket.share("compute") == pytest.approx(1.0)
        assert result.bucket("p99-p100").mean_latency_ns == \
            pytest.approx(100.0 * US)

    def test_coverage_error_reports_worst_mismatch(self):
        good = _finished_record("r", 0, 100.0, compute=100.0)
        bad = _finished_record("r", 1, 200.0, compute=190.0)  # 5% short
        (result,) = attribute([good, bad])
        assert result.worst_coverage_error == pytest.approx(0.05)

    def test_unfinished_records_are_skipped(self):
        open_record = RequestRecord(0, "wl", "r", 0.0, 0.0)
        assert attribute([open_record]) == []

    def test_runs_reported_separately_and_sorted(self):
        records = [_finished_record("b-run", 0, 10.0, compute=10.0),
                   _finished_record("a-run", 0, 10.0, compute=10.0)]
        results = attribute(records)
        assert [r.run for r in results] == ["a-run", "b-run"]

    def test_format_mentions_runs_buckets_and_components(self):
        records = [_finished_record("cfg/wl", i, float(i + 1) * US,
                                    compute=float(i + 1) * US)
                   for i in range(100)]
        text = format_attribution(attribute(records))
        assert "cfg/wl" in text
        assert "p99-p100" in text
        assert "compute" in text
        # Inactive components stay out of the table.
        assert "flash_read" not in text

    def test_format_empty(self):
        assert "no sampled requests" in format_attribution([])


# ------------------------------------------------- traced simulation runs --


def _simulate(config_name, workload_name="tatp", tracer=None, seed=7):
    """One small two-core run, optionally traced."""
    config = make_config(config_name)
    config.num_cores = 2
    config.scale.dataset_pages = 1024
    config.scale.warmup_ns = 200.0 * US
    config.scale.measurement_ns = 1_500.0 * US
    workload = make_workload(workload_name, 1024, seed=seed, zipf_s=1.6)
    if tracer is None:
        return Runner(config, workload).run()
    enable(tracer)
    try:
        return Runner(config, workload).run()
    finally:
        disable()


RESULT_FIELDS = (
    "throughput_jobs_per_s", "completed_jobs", "service_p50_ns",
    "service_p99_ns", "service_mean_ns", "response_p99_ns",
    "response_mean_ns", "miss_ratio", "core_busy_fraction",
)

ALL_MODES = ("dram-only", "astriflash", "flash-sync", "os-swap")


class TestTracedSimulation:
    @pytest.mark.parametrize("config_name", ALL_MODES)
    def test_tracing_leaves_results_bit_identical(self, config_name):
        baseline = _simulate(config_name)
        traced = _simulate(config_name, tracer=Tracer())
        for name in RESULT_FIELDS:
            assert getattr(traced, name) == getattr(baseline, name), name
        # Engine counters shift (telemetry events retire on the same
        # engine); everything model-level must match exactly.
        base_counters = {k: v for k, v in baseline.counters.items()
                         if not k.startswith("engine.")}
        traced_counters = {k: v for k, v in traced.counters.items()
                           if not k.startswith("engine.")}
        assert traced_counters == base_counters

    @pytest.mark.parametrize("config_name", ALL_MODES)
    def test_component_sums_reconstruct_service_latency(self, config_name):
        tracer = Tracer()
        _simulate(config_name, tracer=tracer)
        assert tracer.completed
        for record in tracer.completed:
            measured = record.service_latency_ns
            if measured <= 0.0:
                continue
            error = abs(record.span_sum_ns() - measured) / measured
            assert error < 1e-6, (record, record.components())

    def test_exported_trace_validates(self):
        tracer = Tracer()
        _simulate("astriflash", tracer=tracer)
        document = export_chrome_trace(tracer)
        assert validate_chrome_trace(document) == []
        assert len(document["traceEvents"]) > 0

    def test_miss_components_appear_in_astriflash_tail(self):
        tracer = Tracer()
        _simulate("astriflash", tracer=tracer)
        missed = [r for r in tracer.completed if r.misses > 0]
        assert missed
        assert any(r.flash_read > 0.0 for r in missed)
        # AstriFlash parks threads; nothing should use the OS-swap
        # fallback bucket.
        assert all(r.flash_wait == 0.0 for r in tracer.completed)

    def test_sync_modes_charge_their_signature_components(self):
        sync_tracer = Tracer()
        _simulate("flash-sync", tracer=sync_tracer)
        assert any(r.sync_wait > 0.0 for r in sync_tracer.completed)
        swap_tracer = Tracer()
        _simulate("os-swap", tracer=swap_tracer)
        assert any(r.flash_wait > 0.0 or r.sync_wait > 0.0
                   for r in swap_tracer.completed)

    def test_sampling_bounds_records(self):
        tracer = Tracer(sample_every=4)
        _simulate("astriflash", tracer=tracer)
        assert tracer.completed
        assert all(r.job_id % 4 == 0 for r in tracer.completed)
        assert tracer.requests_seen > len(tracer.completed)

    def test_attribution_of_real_run_meets_coverage_bar(self):
        tracer = Tracer()
        _simulate("astriflash", tracer=tracer)
        (result,) = attribute(tracer.completed)
        assert result.count == len(tracer.completed)
        assert result.worst_coverage_error < 0.01  # acceptance: within 1%
        assert result.buckets

    def test_telemetry_rows_sampled_on_schedule(self, tmp_path):
        tracer = Tracer(telemetry_interval_ns=10.0 * US)
        _simulate("astriflash", tracer=tracer)
        rows = tracer.telemetry_rows
        assert rows
        times = [row["time_us"] for row in rows]
        assert times == sorted(times)
        for field in TELEMETRY_FIELDS:
            assert field in rows[0]
        assert "core0_new" in rows[0] and "core1_pending" in rows[0]
        assert all(0.0 <= row["core_busy"] <= 1.0 for row in rows)

        path = tmp_path / "telemetry.csv"
        write_telemetry_csv(rows, str(path))
        with open(path, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert len(loaded) == len(rows)
        assert list(loaded[0])[:len(TELEMETRY_FIELDS)] == \
            list(TELEMETRY_FIELDS)

    def test_zero_interval_disables_telemetry(self):
        tracer = Tracer(telemetry_interval_ns=0.0)
        _simulate("astriflash", tracer=tracer)
        assert tracer.telemetry_rows == []


class TestTelemetryFieldnames:
    def test_aggregates_first_then_sorted_extras(self):
        rows = [{"run": "r", "time_us": 1.0, "core1_new": 0.0,
                 "core0_new": 1.0}]
        names = telemetry_fieldnames(rows)
        assert names[:len(TELEMETRY_FIELDS)] == list(TELEMETRY_FIELDS)
        assert names[len(TELEMETRY_FIELDS):] == ["core0_new", "core1_new"]

    def test_missing_columns_default_to_zero(self, tmp_path):
        rows = [{"run": "r", "time_us": 1.0, "core0_new": 2.0},
                {"run": "r", "time_us": 2.0}]  # second row lacks core0_new
        path = tmp_path / "telemetry.csv"
        write_telemetry_csv(rows, str(path))
        with open(path, newline="") as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[1]["core0_new"] == "0.0"


# --------------------------------------------------------- session helper --


class TestTraceExperimentHelper:
    def test_runs_uncached_and_restores_environment(self, monkeypatch):
        import os

        from repro.obs import trace_experiment

        monkeypatch.setenv("REPRO_CACHE", "1")
        seen = {}

        def fake_run_experiment(experiment, scale="quick", jobs=None):
            seen["cache"] = os.environ.get("REPRO_CACHE")
            seen["jobs"] = jobs
            seen["tracer"] = active()
            return "result"

        import repro.harness as harness
        monkeypatch.setattr(harness, "run_experiment", fake_run_experiment)
        tracer, result = trace_experiment("fig9")
        assert result == "result"
        assert seen["cache"] == "0"      # cache forced off while traced
        assert seen["jobs"] == 1         # in-process, or the trace is empty
        assert seen["tracer"] is tracer  # enabled around the run
        assert os.environ["REPRO_CACHE"] == "1"
        assert active() is None
