"""Unit tests for the on-chip SRAM cache hierarchy."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.mem import CacheHierarchy, SramCache


class TestSramCache:
    def test_miss_then_hit(self):
        cache = SramCache(4096, associativity=4, name="t")
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.miss_ratio() == pytest.approx(0.5)

    def test_same_block_aliases(self):
        cache = SramCache(4096, associativity=4)
        cache.access(0)
        assert cache.access(63)      # same 64B block
        assert not cache.access(64)  # next block

    def test_lru_within_set(self):
        # 2 ways, 1 set.
        cache = SramCache(128, associativity=2)
        assert cache.num_sets == 1
        cache.access(0)
        cache.access(64)
        cache.access(0)          # block 0 MRU
        cache.access(128)        # evicts block 1 (LRU)
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_mshr_capacity(self):
        cache = SramCache(4096, mshr_entries=2)
        cache.allocate_mshr(0)
        cache.allocate_mshr(64)
        with pytest.raises(CapacityError):
            cache.allocate_mshr(128)
        cache.reclaim_mshr(0)
        cache.allocate_mshr(128)

    def test_mshr_reclaim_unknown_raises(self):
        cache = SramCache(4096)
        with pytest.raises(CapacityError):
            cache.reclaim_mshr(0)

    def test_mshr_duplicate_block_refcounts(self):
        cache = SramCache(4096)
        cache.allocate_mshr(0)
        cache.allocate_mshr(32)  # same block
        assert cache.outstanding_fills == 2
        cache.reclaim_mshr(0)
        assert cache.outstanding_fills == 1

    def test_invalid_geometry_raises(self):
        with pytest.raises(ConfigurationError):
            SramCache(64, associativity=4)
        with pytest.raises(ConfigurationError):
            SramCache(4096, mshr_entries=0)


class TestCacheHierarchy:
    def test_default_three_levels(self):
        hierarchy = CacheHierarchy()
        assert len(hierarchy.levels) == 3

    def test_access_depth(self):
        hierarchy = CacheHierarchy()
        assert hierarchy.access(0) == 3   # cold: misses everywhere
        assert hierarchy.access(0) == 0   # now an L1 hit

    def test_miss_signal_reclaims_all_levels(self):
        hierarchy = CacheHierarchy()
        hierarchy.track_outstanding(4096)
        for cache in hierarchy.levels:
            assert cache.outstanding_fills == 1
        hierarchy.reclaim_on_miss_signal(4096)
        for cache in hierarchy.levels:
            assert cache.outstanding_fills == 0

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([])
