"""Exception hierarchy for the AstriFlash reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "CapacityError",
    "ProtocolError",
    "WorkloadError",
    "FlashTimeoutError",
    "DeviceFailedError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A system configuration is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class CapacityError(ReproError):
    """A hardware structure (MSR, evict buffer, queue, ...) overflowed
    in a way the design forbids."""


class ProtocolError(ReproError):
    """A component interaction violated the modelled hardware protocol."""


class WorkloadError(ReproError):
    """A workload was asked to do something it cannot (unknown key,
    malformed transaction, exhausted trace, ...)."""


class FlashTimeoutError(ReproError):
    """A flash read exceeded the backside controller's deadline.

    Used as the *payload* of the BC's read-outcome race under fault
    injection (never raised across the engine): when the timeout fires
    first, the miss handler receives an instance of this class instead
    of the completed :class:`~repro.flash.device.FlashRequest`, counts
    the timeout, and reissues the read.
    """


class DeviceFailedError(ReproError):
    """The flash device could not complete a read within the reissue cap.

    Raised by the backside controller when a page read has timed out or
    returned uncorrectable more than ``FaultConfig.bc_max_reissues``
    times — the modelled device is considered failed and the run is
    surfaced to the harness rather than silently retried forever.
    """
