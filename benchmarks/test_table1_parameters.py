"""Benchmark: regenerate Table I (system parameters)."""

from conftest import run_once

from repro.harness import run_experiment


def test_table1_parameters(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "table1",
                      scale=harness_scale)
    print("\n" + result.format_table())

    text = result.format_table()
    for expected in ("Cortex-A76", "128 / 32 entries", "50 us",
                     "100 ns switch", "3 cycles/command",
                     "priority-aging"):
        assert expected in text
