#!/usr/bin/env python
"""Tail-latency study: can a flash-backed service hold its SLO?

Open-loop (Poisson) load sweep on the Silo OCC workload, comparing the
p99 response latency of AstriFlash against DRAM-only, then reporting
the highest load each sustains under an ms-scale SLO — the Fig. 10 /
Sec. III-A methodology applied to a concrete service.

Usage:  python examples/tail_latency_study.py
"""

from repro.config import make_config
from repro.core import Runner
from repro.units import MS, US
from repro.workloads import PoissonArrivals, make_workload

DATASET_PAGES = 8192
NUM_CORES = 2
WORKLOAD = "silo"
SLO_NS = 1.0 * MS
LOADS = (0.3, 0.5, 0.7, 0.85, 0.95)


def run(config_name, interarrival_ns=None, seed=3):
    config = make_config(config_name)
    config.num_cores = NUM_CORES
    config.scale.dataset_pages = DATASET_PAGES
    config.scale.warmup_ns = 300.0 * US
    config.scale.measurement_ns = 3_000.0 * US
    workload = make_workload(WORKLOAD, DATASET_PAGES, seed=seed, zipf_s=1.7)
    arrivals = None
    if interarrival_ns is not None:
        arrivals = PoissonArrivals(interarrival_ns, seed=seed + 1)
    return Runner(config, workload, arrivals=arrivals).run()


def main() -> None:
    print(f"Calibrating saturation throughput ({WORKLOAD})...")
    saturation = run("dram-only")
    max_rate = saturation.throughput_jobs_per_s
    print(f"  DRAM-only max: {max_rate:,.0f} jobs/s")

    print(f"\n{'load':>5} | {'DRAM-only p99':>14} | {'AstriFlash p99':>14} "
          f"| SLO = {SLO_NS / MS:.0f} ms")
    best = {"dram-only": 0.0, "astriflash": 0.0}
    for load in LOADS:
        interarrival = NUM_CORES / (load * max_rate) * 1e9
        row = [f"{load:5.0%}"]
        for name in ("dram-only", "astriflash"):
            result = run(name, interarrival_ns=interarrival)
            p99 = result.response_p99_ns
            ok = p99 <= SLO_NS
            row.append(f"{p99 / US:10.1f} us{'*' if not ok else ' '}")
            if ok:
                best[name] = max(best[name], load)
        print(" | ".join(row))

    print("\n('*' marks SLO violations)")
    print(f"Max load under the {SLO_NS / MS:.0f} ms SLO: "
          f"DRAM-only {best['dram-only']:.0%}, "
          f"AstriFlash {best['astriflash']:.0%}")
    print("AstriFlash serves the dataset from flash at ~20x lower memory "
          "cost while giving up only a few points of SLO headroom.")


if __name__ == "__main__":
    main()
