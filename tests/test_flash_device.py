"""Unit tests for the flash device, PCIe link and garbage collection."""

import dataclasses

import pytest

from repro.config import FlashConfig
from repro.errors import ConfigurationError
from repro.flash import FlashDevice, PCIeLink
from repro.sim import Engine, spawn
from repro.units import KIB, US


def small_flash_config(**overrides) -> FlashConfig:
    config = FlashConfig(
        channels=2,
        dies_per_channel=1,
        planes_per_die=2,
        pages_per_block=8,
        overprovisioning=0.5,
    )
    return dataclasses.replace(config, **overrides)


def make_device(pages=256, **overrides):
    engine = Engine()
    device = FlashDevice(engine, small_flash_config(**overrides), pages)
    return engine, device


class TestPCIeLink:
    def test_transfer_time_includes_serialization_and_latency(self):
        engine = Engine()
        link = PCIeLink(engine, bandwidth_gbps=4.0, latency_ns=100.0)
        done = []

        def mover():
            yield from link.transfer(4 * KIB)
            done.append(engine.now)

        spawn(engine, mover())
        engine.run()
        assert done == [pytest.approx(4 * KIB / 4.0 + 100.0)]

    def test_transfers_serialize_on_the_pipe(self):
        engine = Engine()
        link = PCIeLink(engine, bandwidth_gbps=1.0, latency_ns=0.0)
        done = []

        def mover(tag):
            yield from link.transfer(1000)
            done.append((tag, engine.now))

        spawn(engine, mover("a"))
        spawn(engine, mover("b"))
        engine.run()
        assert ("a", 1000.0) in done
        assert ("b", 2000.0) in done

    def test_invalid_parameters_raise(self):
        engine = Engine()
        with pytest.raises(ConfigurationError):
            PCIeLink(engine, bandwidth_gbps=0.0, latency_ns=1.0)
        with pytest.raises(ConfigurationError):
            PCIeLink(engine, bandwidth_gbps=1.0, latency_ns=-1.0)


class TestFlashDevice:
    def test_read_latency_is_dominated_by_sensing(self):
        engine, device = make_device()
        results = []

        def reader():
            request = yield device.read(3)
            results.append(request)

        spawn(engine, reader())
        engine.run()
        request = results[0]
        assert request.complete_time is not None
        # 50 us sensing + ~2 us channel + ~0.5 us PCIe.
        assert request.latency_ns >= 50.0 * US
        assert request.latency_ns < 60.0 * US

    def test_reads_to_same_plane_queue(self):
        engine, device = make_device()
        latencies = []

        def reader(page):
            request = yield device.read(page)
            latencies.append(request.latency_ns)

        num_planes = device.config.num_planes
        # Two pages that stripe onto the same plane.
        spawn(engine, reader(0))
        spawn(engine, reader(num_planes))
        engine.run()
        latencies.sort()
        assert latencies[1] >= latencies[0] + 49.0 * US

    def test_reads_to_different_planes_overlap(self):
        engine, device = make_device()
        latencies = []

        def reader(page):
            request = yield device.read(page)
            latencies.append(request.latency_ns)

        spawn(engine, reader(0))
        spawn(engine, reader(1))
        engine.run()
        assert max(latencies) < 60.0 * US

    def test_write_allocates_in_ftl(self):
        engine, device = make_device()
        done = []

        def writer():
            request = yield device.write(5)
            done.append(request)

        spawn(engine, writer())
        engine.run()
        assert device.ftl.is_mapped(5)
        assert done[0].complete_time is not None

    def test_gc_triggers_under_write_pressure(self):
        engine, device = make_device(pages=64)
        hot_pages = list(range(4))

        def writer():
            for _ in range(40):
                for page in hot_pages:
                    yield device.write(page)

        spawn(engine, writer())
        engine.run()
        assert device.ftl.stats["gc_erases"] >= 1
        # Mapping stays correct after GC.
        for page in hot_pages:
            assert device.ftl.is_mapped(page)

    def test_gc_blocking_is_observed_by_reads(self):
        engine, device = make_device(pages=64)
        blocked = []

        def writer():
            for _ in range(60):
                for page in range(4):
                    yield device.write(page)

        def reader():
            for i in range(400):
                request = yield device.read(i % 16)
                if request.blocked_by_gc:
                    blocked.append(request)

        spawn(engine, writer())
        spawn(engine, reader())
        engine.run()
        assert device.stats["requests"] > 0
        # The blocked fraction is well-defined (may be zero on tiny runs
        # but the counter path must exist).
        assert 0.0 <= device.gc.blocked_fraction() <= 1.0

    def test_average_read_latency_defaults_to_config(self):
        engine, device = make_device()
        assert device.average_read_latency_ns() == device.config.read_latency_ns

    def test_zero_pages_raises(self):
        engine = Engine()
        with pytest.raises(ConfigurationError):
            FlashDevice(engine, small_flash_config(), 0)
