"""Golden determinism test for the optimized simulation kernel.

The hot-path overhaul (event pooling, heap compaction, dict-indexed
DRAM-cache tags, bound counters, inlined histogram bucketing) must not
change simulation semantics: the same ``(time, seq)`` event ordering
must produce bit-identical ``SimulationResult`` statistics.  This test
pins that property against a golden file recorded from the
pre-optimization simulator, for a representative subset of the Fig. 9
quick-scale grid (one cell per configuration).

Regenerate the golden (only when a change *intentionally* alters
simulation semantics) with::

    PYTHONPATH=src python tests/test_golden_determinism.py --record

Comparison is exact (``==`` on floats): JSON serialization of Python
floats round-trips bit-for-bit, so any drift in event ordering, RNG
consumption, or stats accumulation fails the test.
"""

import json
from pathlib import Path

import pytest

from repro.harness.parallel import RunSpec, execute_spec

GOLDEN_PATH = Path(__file__).parent / "golden" / "fig9_quick_golden.json"

# One cell per Fig. 9 configuration, all at quick scale with the
# harness seed, so every mode's hot path (flat DRAM, FC/BC miss
# machinery, ULT scheduling, OS paging, synchronous miss waits) is
# exercised against the golden.
GOLDEN_SPECS = [
    RunSpec("dram-only", "arrayswap", "quick", seed=42),
    RunSpec("astriflash", "tatp", "quick", seed=42),
    RunSpec("astriflash-ideal", "tpcc", "quick", seed=42),
    RunSpec("os-swap", "tatp", "quick", seed=42),
    RunSpec("flash-sync", "arrayswap", "quick", seed=42),
]

# Deterministic SimulationResult fields.  Wall-clock-derived fields
# (events_per_second) are excluded; so are the kernel-health counters
# under the "engine." prefix, which did not exist when the golden was
# recorded and are allowed to evolve with the kernel.
GOLDEN_FIELDS = [
    "config_name",
    "workload_name",
    "throughput_jobs_per_s",
    "completed_jobs",
    "service_p50_ns",
    "service_p99_ns",
    "service_mean_ns",
    "response_p99_ns",
    "response_mean_ns",
    "miss_ratio",
    "mean_inter_miss_ns",
    "core_busy_fraction",
]


def canonicalize(result) -> dict:
    entry = {name: getattr(result, name) for name in GOLDEN_FIELDS}
    entry["counters"] = {
        key: value for key, value in sorted(result.counters.items())
        if not key.startswith("engine.")
    }
    return entry


def run_golden_specs() -> dict:
    return {
        spec.label(): canonicalize(
            execute_spec(spec)
        )
        for spec in GOLDEN_SPECS
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover
        pytest.fail(
            f"golden file missing: {GOLDEN_PATH}; record it with "
            "PYTHONPATH=src python tests/test_golden_determinism.py --record"
        )
    return json.loads(GOLDEN_PATH.read_text())


# Tracing must be invisible to the simulation (DESIGN.md §4d): every
# golden cell is checked both untraced and with a full-sampling tracer
# (including its telemetry sampler) enabled.
@pytest.mark.parametrize("traced", [False, True], ids=["plain", "traced"])
@pytest.mark.parametrize("spec", GOLDEN_SPECS,
                         ids=[spec.label() for spec in GOLDEN_SPECS])
def test_results_bit_identical_to_golden(spec, traced, golden):
    recorded = golden[spec.label()]
    if traced:
        from repro.obs import Tracer, disable, enable

        enable(Tracer())
        try:
            actual = canonicalize(execute_spec(spec))
        finally:
            disable()
    else:
        actual = canonicalize(execute_spec(spec))
    for name in GOLDEN_FIELDS:
        assert actual[name] == recorded[name], (
            f"{spec.label()}: field {name!r} drifted: "
            f"{actual[name]!r} != golden {recorded[name]!r}"
        )
    assert actual["counters"] == recorded["counters"], (
        f"{spec.label()}: counters drifted from golden"
    )


def test_golden_covers_every_fig9_config(golden):
    configs = {spec.config_name for spec in GOLDEN_SPECS}
    from repro.harness.fig9 import CONFIGS

    assert configs == set(CONFIGS)
    assert set(golden) == {spec.label() for spec in GOLDEN_SPECS}


if __name__ == "__main__":
    import sys

    if "--record" not in sys.argv:
        sys.exit("usage: python tests/test_golden_determinism.py --record")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(run_golden_specs(), indent=2,
                                      sort_keys=True) + "\n")
    print(f"recorded {GOLDEN_PATH}")
