"""Unit tests for system configuration and presets."""

import pytest

from repro.config import (
    EVALUATED_CONFIG_NAMES,
    PagingMode,
    SchedulingPolicy,
    all_configs,
    dram_to_flash_ratio,
    make_config,
)
from repro.errors import ConfigurationError
from repro.units import GIB


def test_all_seven_presets_exist():
    configs = all_configs()
    assert sorted(configs) == sorted(EVALUATED_CONFIG_NAMES)
    assert len(configs) == 7


def test_presets_validate():
    for config in all_configs().values():
        config.validate()


def test_unknown_preset_raises():
    with pytest.raises(KeyError):
        make_config("no-such-config")


def test_paper_capacity_ratio_is_3_percent():
    config = make_config("astriflash")
    assert dram_to_flash_ratio(config) == pytest.approx(8 * GIB / (256 * GIB))
    assert dram_to_flash_ratio(config) == pytest.approx(0.03125)


def test_modes_match_names():
    configs = all_configs()
    assert configs["dram-only"].mode is PagingMode.DRAM_ONLY
    assert configs["astriflash"].mode is PagingMode.ASTRIFLASH
    assert configs["os-swap"].mode is PagingMode.OS_SWAP
    assert configs["flash-sync"].mode is PagingMode.FLASH_SYNC


def test_ideal_variant_has_free_switches():
    config = make_config("astriflash-ideal")
    assert config.ult.switch_latency_ns == 0.0
    assert config.core.flush_cycles_per_rob_entry == 0.0
    # The base proposal keeps the paper's 100 ns.
    assert make_config("astriflash").ult.switch_latency_ns == 100.0


def test_nops_variant_uses_fifo():
    assert make_config("astriflash-nops").ult.policy is SchedulingPolicy.FIFO
    assert make_config("astriflash").ult.policy is SchedulingPolicy.PRIORITY_AGING


def test_nodp_variant_disables_partitioning():
    assert not make_config("astriflash-nodp").dram_cache.partitioning_enabled
    assert make_config("astriflash").dram_cache.partitioning_enabled


def test_scaled_dram_cache_is_3_percent_of_dataset():
    config = make_config("astriflash")
    expected = int(config.scale.dataset_pages * 0.03)
    assert config.scaled_dram_cache_pages == expected


def test_invalid_configs_raise():
    config = make_config("astriflash")
    config.num_cores = 0
    with pytest.raises(ConfigurationError):
        config.validate()

    config = make_config("astriflash")
    config.scale.dram_fraction = 0.0
    with pytest.raises(ConfigurationError):
        config.validate()

    config = make_config("astriflash")
    config.core.store_buffer_entries = config.core.rob_entries + 1
    with pytest.raises(ConfigurationError):
        config.validate()


def test_deep_copy_is_independent():
    config = make_config("astriflash")
    clone = config.deep_copy()
    clone.ult.threads_per_core = 7
    assert config.ult.threads_per_core != 7


def test_gc_blocking_scales_down_with_capacity():
    config = make_config("astriflash")
    base = config.flash.gc_blocked_fraction
    config.flash.capacity_bytes = 1024 * GIB  # 1 TiB, 4x reference
    assert config.flash.gc_blocked_fraction == pytest.approx(base / 4)


def test_flash_sync_represents_flatflash_delay():
    config = make_config("flash-sync")
    assert config.flash.read_latency_ns == pytest.approx(50_000.0)
