"""Tests for the optional extensions: Tiny-Tail GC and LATR-style
batched shootdowns."""

import dataclasses

import pytest

from repro.config import FlashConfig, OsConfig, make_config
from repro.core import Runner
from repro.errors import ConfigurationError
from repro.flash import FlashDevice
from repro.osmodel import DemandPager, ResidentSetManager
from repro.sim import Engine, spawn
from repro.units import US
from repro.workloads import make_workload


def gc_stress_device(policy: str, seed=3):
    """A tiny device with aggressive write churn + concurrent reads."""
    import random
    rng = random.Random(seed)
    engine = Engine()
    config = FlashConfig(channels=1, dies_per_channel=1, planes_per_die=1,
                         pages_per_block=8, overprovisioning=0.5,
                         gc_policy=policy)
    device = FlashDevice(engine, config, 32)
    read_latencies = []

    def writer():
        for index in range(200):
            yield device.write(index % 4)

    def reader():
        for _ in range(200):
            request = yield device.read(rng.randrange(32))
            read_latencies.append(request.latency_ns)
            yield 10.0 * US

    spawn(engine, writer())
    spawn(engine, reader())
    engine.run()
    return device, read_latencies


class TestTinyTailGc:
    def test_policy_validated(self):
        config = FlashConfig(gc_policy="nonsense")
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_both_policies_reclaim_space(self):
        for policy in ("blocking", "tiny-tail"):
            device, _ = gc_stress_device(policy)
            assert device.ftl.stats["gc_erases"] >= 1, policy
            # All hot pages still mapped exactly once.
            plane = device.ftl.planes[0]
            valid = sum(block.valid_count for block in plane.blocks)
            assert valid == 4, policy

    def test_tiny_tail_cuts_read_tail(self):
        _, blocking = gc_stress_device("blocking")
        _, tiny = gc_stress_device("tiny-tail")
        blocking.sort()
        tiny.sort()
        worst_blocking = blocking[-1]
        worst_tiny = tiny[-1]
        # Sliced GC bounds the worst read delay well below a full
        # blocking pass (migrations + 3 ms erase).
        assert worst_tiny < worst_blocking


class TestBatchedShootdowns:
    def make_pager(self, batched: bool, capacity=2):
        engine = Engine()
        flash = FlashDevice(
            engine,
            FlashConfig(channels=2, dies_per_channel=1, planes_per_die=2,
                        pages_per_block=16, overprovisioning=0.5),
            256,
        )
        os_config = OsConfig(batched_shootdowns=batched,
                             shootdown_batch_size=4)
        pager = DemandPager(engine, os_config,
                            ResidentSetManager(capacity), flash, 16)
        return engine, pager

    def _fault_series(self, engine, pager, pages):
        def driver():
            for page in pages:
                yield from pager.fault(page)

        spawn(engine, driver())
        engine.run()

    def test_batching_reduces_broadcasts(self):
        pages = list(range(20))
        engine_a, pager_a = self.make_pager(batched=False)
        self._fault_series(engine_a, pager_a, pages)
        engine_b, pager_b = self.make_pager(batched=True)
        self._fault_series(engine_b, pager_b, pages)
        assert pager_b.stats["shootdowns"] < pager_a.stats["shootdowns"]
        assert pager_b.stats["batched_pages"] >= \
            4 * pager_b.stats["shootdowns"]

    def test_batching_speeds_up_os_swap(self):
        def run(batched):
            config = make_config("os-swap")
            config.num_cores = 2
            config.scale.dataset_pages = 8192
            config.scale.warmup_ns = 300.0 * US
            config.scale.measurement_ns = 1_500.0 * US
            config.os = dataclasses.replace(
                config.os, batched_shootdowns=batched
            )
            workload = make_workload("arrayswap", 8192, seed=11, zipf_s=1.7)
            return Runner(config, workload).run()

        plain = run(False)
        batched = run(True)
        # Amortized broadcasts reduce the per-fault critical section.
        assert batched.throughput_jobs_per_s >= \
            0.9 * plain.throughput_jobs_per_s
