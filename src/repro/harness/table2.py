"""Table II: 99th-percentile service latency normalized to Flash-Sync.

The paper compares the service-latency distribution (dispatch to
completion, miss waits included) of AstriFlash against the ablations:

* AstriFlash       ~1.02x Flash-Sync — the priority scheduler resumes a
  pending job right after its page arrives (modulo the current job);
* AstriFlash-noPS  ~7x — FIFO starves pending jobs behind new work;
* AstriFlash-noDP  ~1.7x — cold page-table walks are served from flash.

Runs use open-loop arrivals at a moderate load so the comparison
captures scheduling policy rather than saturation queueing.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.common import ExperimentResult, resolve_scale, run_simulation
from repro.workloads import PoissonArrivals

CONFIGS: Sequence[str] = (
    "flash-sync", "astriflash", "astriflash-nops", "astriflash-nodp",
)


def run(scale="quick", seed: int = 42, workload_name: str = "tatp",
        load: float = 0.4) -> ExperimentResult:
    """Regenerate Table II's normalized p99 service latencies."""
    scale = resolve_scale(scale)
    saturation = run_simulation("dram-only", workload_name, scale, seed=seed)
    per_core_interarrival = (
        scale.num_cores / (load * saturation.throughput_jobs_per_s) * 1e9
    )

    outcomes = {}
    for config_name in CONFIGS:
        outcomes[config_name] = run_simulation(
            config_name, workload_name, scale,
            arrivals=PoissonArrivals(per_core_interarrival, seed=seed + 1),
            seed=seed,
        )
    baseline = outcomes["flash-sync"].service_p99_ns

    result = ExperimentResult(
        experiment="table2",
        title=("Table II: p99 service latency normalized to Flash-Sync "
               f"({workload_name}, {load:.0%} load)"),
        columns=["configuration", "p99_service_norm"],
        notes="Paper: AstriFlash ~1.02x, noPS ~7x, noDP ~1.7x.",
    )
    for config_name in CONFIGS:
        result.add_row(
            config_name,
            outcomes[config_name].service_p99_ns / baseline,
        )
    return result
