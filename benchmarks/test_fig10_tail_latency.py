"""Benchmark: regenerate Fig. 10 (p99 tail latency vs load, TATP)."""

from conftest import run_once

from repro.harness import run_experiment


def test_fig10_tail_latency(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "fig10",
                      scale=harness_scale)
    print("\n" + result.format_table())

    rows = {row[0]: row for row in result.rows}
    low = min(rows)
    high = max(rows)

    # At low load AstriFlash's p99 is dominated by requests that touch
    # flash: well above DRAM-only.
    assert rows[low][4] > 2.0 * rows[low][2]
    # At high load both sustain throughput; AstriFlash gives up only a
    # few percent (paper: 93% vs 96%).
    assert rows[high][3] > rows[high][1] - 0.12
    # The gap narrows as queueing absorbs the flash latency: the
    # AstriFlash/DRAM p99 ratio shrinks from low to high load.
    low_ratio = rows[low][4] / rows[low][2]
    high_ratio = rows[high][4] / rows[high][2]
    assert high_ratio < low_ratio
