"""DRAM-cache facade: organization + timing + both controllers.

`DramCache` is the single object the rest of the system talks to.  It
also owns the hybrid DRAM partition (Sec. IV-A): a slice of DRAM rows
exposed flat to the OS so page tables stay DRAM-resident.  With
partitioning disabled (`AstriFlash-noDP`), page-table accesses go
through the cached partition like any other page and can miss to flash.
"""

from __future__ import annotations

from typing import Iterable

from repro.config.system import DramCacheConfig
from repro.dramcache.controllers import (
    AccessResult,
    BacksideController,
    FrontsideController,
)
from repro.dramcache.organization import DramCacheOrganization
from repro.dramcache.timing import DramCacheTiming, build_timing, flat_partition_access_ns
from repro.flash.device import FlashDevice
from repro.sim import Engine
from repro.stats import CounterSet


class DramCache:
    """A hardware-managed, page-granularity DRAM cache over flash."""

    def __init__(self, engine: Engine, config: DramCacheConfig,
                 cache_pages: int, flash: FlashDevice,
                 admission=None) -> None:
        self.engine = engine
        self.config = config
        self.timing: DramCacheTiming = build_timing(config)
        self.organization = DramCacheOrganization(
            num_pages=cache_pages, associativity=config.associativity
        )
        self.backside = BacksideController(
            engine, config, self.timing, self.organization, flash,
            admission=admission,
        )
        self.frontside = FrontsideController(
            engine, config, self.timing, self.organization, self.backside,
            admission=admission,
        )
        self.flash = flash
        self.stats = CounterSet("dram-cache")

    # -- data path ------------------------------------------------------------

    def access(self, page: int, is_write: bool = False) -> AccessResult:
        """One request from the on-chip hierarchy (see FC docs)."""
        return self.frontside.access(page, is_write)

    def access_run(self, pages, writes, start: int = 0,
                   stop=None) -> int:
        """Batched leading-hit probe (vector backend; see FC docs)."""
        return self.frontside.access_run(pages, writes, start, stop)

    @property
    def hit_latency_ns(self) -> float:
        """The constant in-DRAM hit latency every hit is charged."""
        return self.timing.hit_latency_ns

    def flat_access_latency_ns(self) -> float:
        """Latency of a flat-partition access (page tables under
        DRAM partitioning)."""
        return flat_partition_access_ns(self.config)

    # -- warmup -----------------------------------------------------------------

    def warm(self, pages: Iterable[int]) -> None:
        """Pre-populate the cache (most-recent page wins LRU)."""
        for page in pages:
            self.organization.populate(page)
            self.stats.add("warmed_pages")

    # -- reporting -----------------------------------------------------------------

    def miss_ratio(self) -> float:
        return self.frontside.miss_ratio()

    @property
    def outstanding_misses(self) -> int:
        return self.backside.outstanding_misses

    @property
    def capacity_pages(self) -> int:
        return self.organization.capacity_pages
