"""Tests for the ASCII chart and report writer."""

import math

import pytest

from repro.errors import ReproError
from repro.harness import run_experiment
from repro.harness.common import ExperimentResult
from repro.harness.report import ascii_chart, chart_for, render, write_report


class TestAsciiChart:
    def test_renders_fixed_size(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)]}, width=20, height=5)
        body = [line for line in chart.splitlines()
                if line.startswith("|")]
        assert len(body) == 5
        assert all(len(line) == 22 for line in body)

    def test_markers_distinguish_series(self):
        chart = ascii_chart(
            {"a": [(0.0, 0.0)], "b": [(1.0, 1.0)]}, width=20, height=5
        )
        assert "*" in chart and "o" in chart
        assert "*=a" in chart and "o=b" in chart

    def test_log_scale(self):
        chart = ascii_chart({"a": [(0, 1), (1, 1000)]}, logy=True)
        assert "(log)" in chart

    def test_infinite_points_skipped(self):
        chart = ascii_chart({"a": [(0, 1), (1, math.inf)]})
        assert chart  # no crash

    def test_empty_series_raises(self):
        with pytest.raises(ReproError):
            ascii_chart({})
        with pytest.raises(ReproError):
            ascii_chart({"a": [(0, math.inf)]})

    def test_too_small_raises(self):
        with pytest.raises(ReproError):
            ascii_chart({"a": [(0, 1)]}, width=2, height=2)


class TestExperimentCharts:
    def test_fig3_has_chart(self):
        result = run_experiment("fig3")
        chart = chart_for(result)
        assert "astriflash" in chart
        assert "(log)" in chart

    def test_fig2_has_chart(self):
        assert chart_for(run_experiment("fig2"))

    def test_tables_have_no_chart(self):
        assert chart_for(run_experiment("table1")) == ""

    def test_render_combines_table_and_chart(self):
        text = render(run_experiment("fig3"))
        assert "Fig. 3" in text
        assert "|" in text  # chart body present


class TestWriteReport:
    def test_report_file(self, tmp_path):
        results = [run_experiment("table1"), run_experiment("fig2")]
        path = str(tmp_path / "report.txt")
        write_report(results, path, header="Reproduction report")
        content = open(path).read()
        assert content.startswith("Reproduction report")
        assert "Table I" in content
        assert "Fig. 2" in content
