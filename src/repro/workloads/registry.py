"""Workload registry: the seven evaluated applications by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.arrayswap import ArraySwapWorkload
from repro.workloads.base import Workload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.kvstore import KvStoreWorkload
from repro.workloads.masstree import MasstreeWorkload
from repro.workloads.rbtree import RbtWorkload
from repro.workloads.silo import SiloWorkload
from repro.workloads.tatp import TatpWorkload
from repro.workloads.tpcc import TpccWorkload

WorkloadFactory = Callable[..., Workload]

_REGISTRY: Dict[str, WorkloadFactory] = {
    ArraySwapWorkload.name: ArraySwapWorkload,
    RbtWorkload.name: RbtWorkload,
    HashTableWorkload.name: HashTableWorkload,
    TatpWorkload.name: TatpWorkload,
    TpccWorkload.name: TpccWorkload,
    SiloWorkload.name: SiloWorkload,
    MasstreeWorkload.name: MasstreeWorkload,
    # Write-path workload (DESIGN.md §4j): registered but deliberately
    # outside EVALUATED_WORKLOADS — the paper's figures stay on the
    # seven read-dominant applications; `repro writes` sweeps this one.
    KvStoreWorkload.name: KvStoreWorkload,
}

#: The evaluation order used in the paper's figures.
EVALUATED_WORKLOADS: List[str] = [
    "arrayswap",
    "rbtree",
    "hashtable",
    "tatp",
    "tpcc",
    "silo",
    "masstree",
]


def workload_names() -> List[str]:
    return list(EVALUATED_WORKLOADS)


def make_workload(name: str, dataset_pages: int, seed: int = 42,
                  **kwargs) -> Workload:
    """Instantiate a workload by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return factory(dataset_pages, seed=seed, **kwargs)
