"""Sampled measurement with confidence intervals.

The paper's methodology descends from SimFlex statistical sampling
(Wenisch et al., cited as [78]): instead of one long simulation,
measure several independent samples and report a mean with a
confidence interval, stopping when the interval is tight enough.

:func:`measure` runs an experiment callable over multiple seeds and
returns a :class:`SampledMeasurement` (mean, half-width, relative
error) using a t-distribution; :func:`measure_until` keeps adding
samples until a target relative error is met or a sample budget runs
out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError

# Two-sided t-distribution critical values at 95% confidence, indexed
# by degrees of freedom (1..30); beyond 30 the normal value is used.
_T_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
]
_Z_95 = 1.960


def t_critical_95(degrees_of_freedom: int) -> float:
    """Two-sided 95% t critical value."""
    if degrees_of_freedom < 1:
        raise ConfigurationError("need at least one degree of freedom")
    if degrees_of_freedom <= len(_T_95):
        return _T_95[degrees_of_freedom - 1]
    return _Z_95


@dataclass(frozen=True)
class SampledMeasurement:
    """Mean with a 95% confidence interval."""

    samples: List[float]
    mean: float
    half_width: float

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def relative_error(self) -> float:
        """Half-width as a fraction of the mean (inf for mean 0)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    @property
    def interval(self) -> tuple:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def describe(self) -> str:
        return (f"{self.mean:,.1f} +- {self.half_width:,.1f} "
                f"({self.relative_error:.1%} rel, n={self.count})")


def summarize(samples: List[float]) -> SampledMeasurement:
    """Mean + 95% CI of independent samples."""
    if len(samples) < 2:
        raise ConfigurationError("need at least two samples for a CI")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    half_width = t_critical_95(n - 1) * math.sqrt(variance / n)
    return SampledMeasurement(list(samples), mean, half_width)


def measure(experiment: Callable[[int], float], num_samples: int = 5,
            base_seed: int = 42) -> SampledMeasurement:
    """Run ``experiment(seed)`` for ``num_samples`` seeds and summarize."""
    if num_samples < 2:
        raise ConfigurationError("need at least two samples")
    samples = [experiment(base_seed + index) for index in range(num_samples)]
    return summarize(samples)


def measure_until(experiment: Callable[[int], float],
                  target_relative_error: float = 0.05,
                  min_samples: int = 3, max_samples: int = 20,
                  base_seed: int = 42) -> SampledMeasurement:
    """Add samples until the 95% CI is within the target relative error
    (SimFlex-style adaptive sampling), bounded by ``max_samples``."""
    if not 0.0 < target_relative_error < 1.0:
        raise ConfigurationError("target relative error out of (0,1)")
    if min_samples < 2 or max_samples < min_samples:
        raise ConfigurationError("bad sample bounds")
    samples: List[float] = []
    measurement: Optional[SampledMeasurement] = None
    for index in range(max_samples):
        samples.append(experiment(base_seed + index))
        if len(samples) >= min_samples:
            measurement = summarize(samples)
            if measurement.relative_error <= target_relative_error:
                return measurement
    if measurement is None:
        measurement = summarize(samples)
    return measurement
