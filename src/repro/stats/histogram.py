"""Latency histograms and percentile estimation.

Two implementations:

* :class:`ExactReservoir` — stores every sample; exact percentiles.
  Used for service-time distributions where sample counts are modest.
* :class:`LogHistogram` — HdrHistogram-style logarithmic bucketing with
  bounded error; used for long tail-latency sweeps where millions of
  samples may be recorded.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.errors import ReproError


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Exact percentile (nearest-rank with linear interpolation) of a
    pre-sorted sequence.

    ``fraction`` is in [0, 1]; e.g. 0.99 for the 99th percentile.
    """
    if not sorted_samples:
        raise ReproError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"percentile fraction out of range: {fraction}")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    rank = fraction * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_samples[low])
    weight = rank - low
    return float(sorted_samples[low]) * (1 - weight) + float(sorted_samples[high]) * weight


class ExactReservoir:
    """Stores all samples for exact statistics.

    The sample sum is maintained incrementally so :meth:`mean` is O(1)
    instead of re-reducing the whole reservoir on every call (the
    harness reads means per report row, inside sweeps).
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = True
        self._sum = 0.0

    def record(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)
        self._sum += value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            # Re-sync the running sum to the new element order: float
            # addition is not associative, and the pre-optimization
            # mean() summed the materialized list left to right.
            # Re-summing here (already O(n log n) for the sort) keeps
            # mean() bit-identical to that behaviour while staying
            # O(1) per call.
            self._sum = sum(self._samples)
            self._sorted = True

    def percentile(self, fraction: float) -> float:
        self._ensure_sorted()
        return percentile(self._samples, fraction)

    def mean(self) -> float:
        if not self._samples:
            raise ReproError("mean of empty sample set")
        return self._sum / len(self._samples)

    def min(self) -> float:
        self._ensure_sorted()
        if not self._samples:
            raise ReproError("min of empty sample set")
        return self._samples[0]

    def max(self) -> float:
        self._ensure_sorted()
        if not self._samples:
            raise ReproError("max of empty sample set")
        return self._samples[-1]

    def samples(self) -> List[float]:
        """A sorted copy of all recorded samples."""
        self._ensure_sorted()
        return list(self._samples)


class LogHistogram:
    """Logarithmically-bucketed histogram with bounded relative error.

    Values are assigned to bucket ``floor(log(value, base))`` with
    ``sub`` linear sub-buckets per decade step, giving a worst-case
    relative error of roughly ``base**(1/sub) - 1``.

    ``record`` is the per-event hot path: the bucket math is inlined
    (no helper-call indirection) and the divide by ``log_base`` is a
    precomputed ``1/log_base`` multiply.  ``percentile`` walks a cached
    sorted key list, invalidated only when ``record``/``merge``
    introduces a *new* bucket.
    """

    def __init__(self, min_value: float = 1.0, precision: int = 64) -> None:
        if min_value <= 0:
            raise ReproError("LogHistogram min_value must be positive")
        if precision < 2:
            raise ReproError("LogHistogram precision must be >= 2")
        self._min_value = min_value
        self._precision = precision
        self._log_base = math.log(2.0) / precision  # sub-buckets per octave
        self._inv_log_base = 1.0 / self._log_base
        self._buckets: dict = {}
        self._sorted_keys: Optional[List[int]] = []
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._min = float("inf")

    def _bucket_index(self, value: float) -> int:
        clamped = value if value > self._min_value else self._min_value
        return int(math.log(clamped / self._min_value) * self._inv_log_base)

    def _bucket_value(self, index: int) -> float:
        # Midpoint of the bucket in log space.
        return self._min_value * math.exp((index + 0.5) * self._log_base)

    def record(self, value: float) -> None:
        min_value = self._min_value
        clamped = value if value > min_value else min_value
        index = int(math.log(clamped / min_value) * self._inv_log_base)
        buckets = self._buckets
        count = buckets.get(index)
        if count is None:
            buckets[index] = 1
            self._sorted_keys = None
        else:
            buckets[index] = count + 1
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value

    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        if self._count == 0:
            raise ReproError("mean of empty histogram")
        return self._sum / self._count

    def max(self) -> float:
        if self._count == 0:
            raise ReproError("max of empty histogram")
        return self._max

    def min(self) -> float:
        if self._count == 0:
            raise ReproError("min of empty histogram")
        return self._min

    def _bucket_keys(self) -> List[int]:
        keys = self._sorted_keys
        if keys is None:
            keys = self._sorted_keys = sorted(self._buckets)
        return keys

    def percentile(self, fraction: float) -> float:
        if self._count == 0:
            raise ReproError("percentile of empty histogram")
        if not 0.0 <= fraction <= 1.0:
            raise ReproError(f"percentile fraction out of range: {fraction}")
        target = fraction * self._count
        seen = 0
        buckets = self._buckets
        for index in self._bucket_keys():
            seen += buckets[index]
            if seen >= target:
                return min(self._bucket_value(index), self._max)
        return self._max

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same params)."""
        if other._precision != self._precision or other._min_value != self._min_value:
            raise ReproError("cannot merge histograms with different parameters")
        buckets = self._buckets
        for index, count in other._buckets.items():
            existing = buckets.get(index)
            if existing is None:
                buckets[index] = count
                self._sorted_keys = None
            else:
                buckets[index] = existing + count
        self._count += other._count
        self._sum += other._sum
        if other._count:
            self._max = max(self._max, other._max)
            self._min = min(self._min, other._min)
