"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) at the harness ``quick`` scale and asserts the paper's
qualitative shape, so ``pytest benchmarks/ --benchmark-only`` doubles
as the reproduction run.  Set ``REPRO_SCALE=full`` to regenerate the
EXPERIMENTS.md numbers (minutes instead of seconds).
"""

import os

import pytest


@pytest.fixture(scope="session")
def harness_scale() -> str:
    return os.environ.get("REPRO_SCALE", "quick")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
