#!/usr/bin/env python
"""Quickstart: run AstriFlash against a DRAM-only baseline.

Builds the paper's AstriFlash machine (hardware-managed DRAM cache over
flash + switch-on-miss user-level threading), runs the TATP workload in
a closed loop, and compares throughput and service latency against a
server that holds the whole dataset in DRAM.

Usage:  python examples/quickstart.py
"""

from repro.config import make_config
from repro.core import Runner
from repro.units import US
from repro.workloads import make_workload

# A laptop-friendly scale: 8k pages of dataset (the DRAM cache gets the
# paper's 3%), two cores, a few simulated milliseconds.
DATASET_PAGES = 8192
NUM_CORES = 2
ZIPF_SKEW = 1.7


def build_runner(config_name: str) -> Runner:
    config = make_config(config_name)
    config.num_cores = NUM_CORES
    config.scale.dataset_pages = DATASET_PAGES
    config.scale.warmup_ns = 300.0 * US
    config.scale.measurement_ns = 3_000.0 * US
    workload = make_workload("tatp", DATASET_PAGES, seed=1,
                             zipf_s=ZIPF_SKEW)
    return Runner(config, workload)


def main() -> None:
    print("Running DRAM-only baseline...")
    dram = build_runner("dram-only").run()
    print(dram.describe())

    print("\nRunning AstriFlash (DRAM cache + switch-on-miss)...")
    astri_runner = build_runner("astriflash")
    astri = astri_runner.run()
    print(astri.describe())

    ratio = astri.throughput_jobs_per_s / dram.throughput_jobs_per_s
    print(f"\nAstriFlash achieves {ratio:.0%} of DRAM-only throughput")
    print(f"with a DRAM cache of only "
          f"{astri_runner.machine.dram_cache.capacity_pages} pages "
          f"({astri_runner.machine.dram_cache.capacity_pages / DATASET_PAGES:.1%} "
          "of the dataset).")
    print(f"Every DRAM-cache miss ({astri.miss_ratio:.2%} of accesses, one "
          f"every {astri.mean_inter_miss_ns / 1000:.1f} us of execution) "
          "was absorbed by a 100 ns user-level thread switch instead of a "
          "multi-microsecond OS page fault.")


if __name__ == "__main__":
    main()
