"""Garbage collection for the flash device.

GC runs per plane when the FTL reports free-block pressure.  While a
plane erases/migrates, its server is occupied, so reads queued behind
GC observe the latency spike the paper discusses in Sec. VI-D.  The
collector records how many foreground requests arrived while a plane
was collecting — the paper's "blocked requests" metric (≈4 % at
256 GiB, <1 % at 1 TiB).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim import spawn
from repro.stats import CounterSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flash.device import FlashDevice


class GarbageCollector:
    """Drives per-plane GC passes on the owning :class:`FlashDevice`."""

    def __init__(self, device: "FlashDevice") -> None:
        self.device = device
        self.stats = CounterSet("gc")
        self._active: List[bool] = [False] * device.ftl.num_planes
        # Measurement-window baselines (see start_measurement): until
        # the runner marks the warmup boundary both stay 0, so raw
        # device sims keep reporting whole-run fractions.
        self._window_requests = 0.0
        self._window_blocked = 0.0
        # Write-path window baselines (DESIGN.md §4j): snapshots of the
        # cumulative write counters at the warmup/measurement boundary,
        # the same pattern as the blocked-fraction baselines above.
        self._window_device: Dict[str, float] = {}
        self._window_ftl: Dict[str, float] = {}
        self._window_start_ns = 0.0

    def plane_collecting(self, plane_index: int) -> bool:
        """True while a GC pass occupies ``plane_index``."""
        return self._active[plane_index]

    def maybe_collect(self, plane_index: int) -> None:
        """Kick off a GC pass if the plane is under free-block pressure."""
        if self._active[plane_index]:
            return
        if not self.device.ftl.gc_pressure(plane_index):
            return
        self._active[plane_index] = True
        spawn(
            self.device.engine,
            self._collect_process(plane_index),
            name=f"gc:plane{plane_index}",
        )

    def _collect_process(self, plane_index: int):
        device = self.device
        if device.config.gc_policy == "tiny-tail":
            yield from self._collect_tiny_tail(plane_index)
        else:
            yield from self._collect_blocking(plane_index)

    def _collect_blocking(self, plane_index: int):
        """Traditional GC: the plane is held for the whole pass, so
        reads queue behind migrations and the erase."""
        device = self.device
        plane = device.planes[plane_index]
        try:
            while device.ftl.gc_pressure(plane_index):
                grant = plane.acquire()
                if grant is not None:
                    yield grant
                migrated, erased = device.ftl.collect(plane_index)
                if migrated == 0 and erased == 0:
                    plane.release()
                    break
                busy = (
                    migrated
                    * (device.config.read_latency_ns + device.config.program_latency_ns)
                    + erased * device.config.erase_latency_ns
                )
                yield busy
                plane.release()
                self.stats.add("passes")
                self.stats.add("migrated_pages", migrated)
                self.stats.add("busy_ns", busy)
                if device.writes is not None:
                    # GC page moves are device-side programs: the write
                    # amplification the host never asked for.
                    device.stats.add("device_writes", migrated)
        finally:
            self._active[plane_index] = False

    def _collect_tiny_tail(self, plane_index: int):
        """Tiny-Tail-style GC (the paper's [80]): migrations proceed in
        page-sized slices and the plane is released between slices, so
        priority reads slip in and observe at most one slice of delay
        instead of a multi-millisecond pass."""
        device = self.device
        plane = device.planes[plane_index]
        slice_ns = (device.config.read_latency_ns
                    + device.config.program_latency_ns)
        try:
            while device.ftl.gc_pressure(plane_index):
                migrated, erased = device.ftl.collect(plane_index)
                if migrated == 0 and erased == 0:
                    break
                for _ in range(migrated):
                    grant = plane.acquire()
                    if grant is not None:
                        yield grant
                    yield slice_ns
                    plane.release()
                # Erase-suspend: the long block erase is performed in
                # suspendable windows so priority reads slip in.
                erase_slices = 8
                erase_slice_ns = (erased * device.config.erase_latency_ns
                                  / erase_slices)
                for _ in range(erase_slices):
                    grant = plane.acquire()
                    if grant is not None:
                        yield grant
                    yield erase_slice_ns
                    plane.release()
                self.stats.add("passes")
                self.stats.add("migrated_pages", migrated)
                self.stats.add(
                    "busy_ns",
                    migrated * slice_ns
                    + erased * device.config.erase_latency_ns,
                )
                if device.writes is not None:
                    device.stats.add("device_writes", migrated)
        finally:
            self._active[plane_index] = False

    def start_measurement(self) -> None:
        """Mark the warmup/measurement boundary.

        Snapshots the cumulative request counters so
        :meth:`blocked_fraction` reports the measurement window only —
        the same windowing fix the PR 1 ``miss_ratio`` change applied:
        warmup-era GC stalls (dataset builds, cache fills) must not
        dilute the steady-state blocked fraction.
        """
        stats = self.device.stats
        self._window_requests = stats.get("requests")
        self._window_blocked = stats.get("requests_blocked_by_gc")
        self._window_device = {
            key: stats.get(key) for key in _DEVICE_WRITE_KEYS
        }
        ftl_stats = self.device.ftl.stats
        self._window_ftl = {
            key: ftl_stats.get(key) for key in _FTL_WRITE_KEYS
        }
        self._window_start_ns = self.device.engine.now

    def blocked_fraction(self) -> float:
        """Fraction of foreground requests that arrived during GC,
        scoped to the measurement window once :meth:`start_measurement`
        has been called (whole-run before that)."""
        stats = self.device.stats
        requests = stats.get("requests") - self._window_requests
        blocked = stats.get("requests_blocked_by_gc") - self._window_blocked
        if requests <= 0:
            return 0.0
        return blocked / requests

    # ------------------------------------------------------- write path --

    def _ftl_window(self) -> Dict[str, float]:
        ftl_stats = self.device.ftl.stats
        base = self._window_ftl
        return {
            key: ftl_stats.get(key) - base.get(key, 0.0)
            for key in _FTL_WRITE_KEYS
        }

    def wa_factor(self) -> float:
        """Measured device-level write amplification, scoped to the
        measurement window: flash page programs (host programs plus GC
        migrations) per host program.  ``>= 1.0`` by construction —
        every host write is programmed exactly once and GC only ever
        adds migrations on top.  ``1.0`` when the window saw no host
        writes (no writes, nothing amplified)."""
        ftl = self._ftl_window()
        host = ftl["writes"]
        if host <= 0:
            return 1.0
        return (host + ftl["gc_migrated_pages"]) / host

    def lifetime_years(self,
                       pe_cycle_budget: Optional[int] = None
                       ) -> Optional[float]:
        """P/E-budget lifetime estimate from the window's erase rate.

        Remaining erase budget (``pe_cycle_budget`` per block, minus
        erases already consumed) divided by the measured erase rate in
        *simulated* time.  ``None`` when the window saw no erases (the
        estimate is unbounded).  At harness scale the dataset and the
        window are shrunk by the same machinery as everything else, so
        read this as a model-scale figure of merit for comparing
        policies, not a calendar prediction for a 256 GiB device.
        """
        if pe_cycle_budget is None:
            writes = self.device.writes
            pe_cycle_budget = writes.pe_cycle_budget if writes else 3000
        erases = self._ftl_window()["gc_erases"]
        window_ns = self.device.engine.now - self._window_start_ns
        if erases <= 0 or window_ns <= 0:
            return None
        ftl = self.device.ftl
        total_blocks = sum(len(plane.blocks) for plane in ftl.planes)
        consumed = self.device.ftl.stats.get("gc_erases")
        remaining = max(0.0, total_blocks * pe_cycle_budget - consumed)
        erases_per_ns = erases / window_ns
        ns_per_year = 365.25 * 24 * 3600 * 1e9
        return remaining / erases_per_ns / ns_per_year

    def write_window(self) -> Dict[str, float]:
        """Measurement-window write-path telemetry (DESIGN.md §4j).

        All values are deltas against the :meth:`start_measurement`
        baselines, matching the ``blocked_fraction`` windowing:
        ``host_writes`` counts host programs (dirty writebacks plus
        write-through stores), ``device_writes`` adds the GC page
        moves, ``wa_factor`` is their ratio, and
        ``flash_writes_per_app_write`` is the Flashield-style
        end-to-end amplification (device programs per application
        store — below 1.0 when the DRAM cache coalesces stores).
        ``lifetime_years`` is present only when the window erased."""
        device = self.device
        stats = device.stats
        base = self._window_device
        dev = {
            key: stats.get(key) - base.get(key, 0.0)
            for key in _DEVICE_WRITE_KEYS
        }
        ftl = self._ftl_window()
        host = ftl["writes"]
        migrated = ftl["gc_migrated_pages"]
        device_writes = host + migrated
        app_writes = dev["app_writes"]
        window: Dict[str, float] = {
            "host_writes": host,
            "device_writes": device_writes,
            "app_writes": app_writes,
            "admission_rejects": dev["admission_rejects"],
            "writeback_elided": dev["writeback_elided"],
            "gc_migrated_pages": migrated,
            "gc_erases": ftl["gc_erases"],
            "wa_factor": self.wa_factor(),
            "flash_writes_per_app_write": (
                device_writes / app_writes if app_writes > 0 else 0.0
            ),
        }
        lifetime = self.lifetime_years()
        if lifetime is not None:
            window["lifetime_years"] = lifetime
        return window


#: Cumulative device counters snapshotted at the measurement boundary.
#: ``host_writes``/``device_writes`` are the gated duplicates of the
#: FTL-derived figures; the admission counters only exist on the device
#: because the BC's own stats never reach :class:`SimulationResult`.
_DEVICE_WRITE_KEYS = (
    "host_writes",
    "device_writes",
    "app_writes",
    "admission_rejects",
    "writeback_elided",
)
_FTL_WRITE_KEYS = ("writes", "gc_migrated_pages", "gc_erases")
