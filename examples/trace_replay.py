#!/usr/bin/env python
"""Trace workflow: capture a workload's page trace, analyze it, and
replay it through two system designs.

This is the flow an operator would use with a *proprietary* access
trace: record once (or convert from production telemetry), then study
memory-system options offline without the workload itself.

Usage:  python examples/trace_replay.py
"""

import io

from repro.config import make_config
from repro.core import Runner
from repro.trace import TraceRecorder, TraceWorkload, load_trace, trace_statistics
from repro.units import US
from repro.workloads import make_workload

DATASET_PAGES = 8192


def main() -> None:
    # 1. Capture a trace from the Silo OCC workload.
    print("Capturing 30,000 steps from the 'silo' workload...")
    source = make_workload("silo", DATASET_PAGES, seed=9, zipf_s=1.7)
    recorder = TraceRecorder(source)
    recorder.record(30_000)

    # 2. Persist + reload (round-trips through the portable format).
    buffer = io.StringIO()
    recorder.save(buffer)
    buffer.seek(0)
    steps = load_trace(buffer)

    # 3. Analyze.
    stats = trace_statistics(steps)
    print(f"  steps             {stats.num_steps:,}")
    print(f"  distinct pages    {stats.distinct_pages:,} "
          f"({stats.distinct_pages / DATASET_PAGES:.0%} of the dataset)")
    print(f"  write fraction    {stats.write_fraction:.1%}")
    print(f"  hot decile share  {stats.top_decile_access_share:.0%} "
          "of all accesses")

    # 4. Replay the identical trace through two designs.
    replay_results = {}
    for config_name in ("dram-only", "astriflash"):
        replay = TraceWorkload(steps, steps_per_job=60,
                               dataset_pages=DATASET_PAGES)
        config = make_config(config_name)
        config.num_cores = 2
        config.scale.dataset_pages = DATASET_PAGES
        config.scale.warmup_ns = 300.0 * US
        config.scale.measurement_ns = 2_000.0 * US
        replay_results[config_name] = Runner(config, replay).run()

    print("\nReplaying the same trace:")
    for name, result in replay_results.items():
        print(f"  {name:12s} {result.throughput_jobs_per_s:10,.0f} jobs/s  "
              f"p99 {result.service_p99_ns / US:7.1f} us  "
              f"miss {result.miss_ratio:.2%}")
    ratio = (replay_results["astriflash"].throughput_jobs_per_s
             / replay_results["dram-only"].throughput_jobs_per_s)
    print(f"\nAstriFlash sustains {ratio:.0%} of DRAM-only throughput on "
          "this trace.")


if __name__ == "__main__":
    main()
