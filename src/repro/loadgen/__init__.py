"""Load generation: arrival shaping, QPS sweeps, SLO knee curves.

The arrival processes themselves live in
:mod:`repro.workloads.arrival` (they are workload plumbing); this
package owns the sweep driver (:func:`run_loadgen`), the
sustained-QPS-under-SLO knee solver (:func:`solve_knee`) and the
schema-stamped ``BENCH_loadgen.json`` artifact
(:class:`LoadgenBench`).
"""

from repro.loadgen.knee import (
    ABOVE_RANGE,
    BELOW_RANGE,
    BRACKETED,
    GRID,
    KneeEvaluation,
    KneeSolution,
    knee_from_curve,
    solve_knee,
)
from repro.loadgen.schema import (
    DEFAULT_BACKLOG_THRESHOLD,
    LOADGEN_SCHEMA_VERSION,
    KneeEvalPoint,
    LoadgenBench,
    LoadgenCell,
    PresetKnee,
)
from repro.loadgen.sweep import (
    DEFAULT_QPS_SWEEP,
    DEFAULT_SLO_SERVICE_FACTOR,
    QpsSweep,
    parse_qps_sweep,
    run_loadgen,
)

__all__ = [
    "ABOVE_RANGE",
    "BELOW_RANGE",
    "BRACKETED",
    "GRID",
    "DEFAULT_BACKLOG_THRESHOLD",
    "DEFAULT_QPS_SWEEP",
    "DEFAULT_SLO_SERVICE_FACTOR",
    "KneeEvalPoint",
    "KneeEvaluation",
    "KneeSolution",
    "LOADGEN_SCHEMA_VERSION",
    "LoadgenBench",
    "LoadgenCell",
    "PresetKnee",
    "QpsSweep",
    "knee_from_curve",
    "parse_qps_sweep",
    "run_loadgen",
    "solve_knee",
]
