"""System configuration dataclasses.

All tunables of the modelled server live here, expressed in the same
units the paper uses (Table I and Sections II/IV/V).  The scaled-down
simulation keeps the paper's *ratios* (3 % DRAM cache, 4 KB pages,
50 us flash reads, 100 ns thread switches) while shrinking absolute
capacities so runs finish quickly in Python.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import GIB, KIB, MIB, PAGE_SIZE, US


class PagingMode(Enum):
    """How data moves between DRAM and flash."""

    DRAM_ONLY = "dram-only"          # everything fits in DRAM (ideal)
    ASTRIFLASH = "astriflash"        # hardware DRAM cache + switch-on-miss
    OS_SWAP = "os-swap"              # traditional OS demand paging
    FLASH_SYNC = "flash-sync"        # synchronous flash access (FlatFlash)


class SchedulingPolicy(Enum):
    """User-level thread scheduling policy (Sec. IV-D)."""

    PRIORITY_AGING = "priority-aging"  # paper's scheduler
    FIFO = "fifo"                      # AstriFlash-noPS ablation


@dataclass
class CoreConfig:
    """An ARM Cortex-A76-like out-of-order core (Table I)."""

    frequency_ghz: float = 2.5
    issue_width: int = 4
    rob_entries: int = 128
    store_buffer_entries: int = 32
    base_physical_registers: int = 128
    # ASO-style post-retirement speculation: registers kept per store in
    # the store buffer (paper measures an average of 4 modified
    # registers between consecutive stores).
    registers_per_speculative_store: int = 4
    architectural_registers: int = 32
    # Core-side MSHRs linking miss signals back to ROB entries.
    mshr_entries: int = 16
    # Cost of flushing the ROB and redirecting to the user-level handler
    # when a miss signal arrives: refill of the window, expressed as the
    # average number of cycles of useful work lost per occupied ROB entry.
    flush_cycles_per_rob_entry: float = 0.5

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz

    def validate(self) -> None:
        if self.rob_entries < 1 or self.store_buffer_entries < 1:
            raise ConfigurationError("ROB/SB sizes must be positive")
        if self.store_buffer_entries > self.rob_entries:
            raise ConfigurationError("store buffer larger than ROB")
        if self.frequency_ghz <= 0:
            raise ConfigurationError("core frequency must be positive")


@dataclass
class DramCacheConfig:
    """Page-granularity DRAM cache with tags in DRAM (Sec. IV-B)."""

    capacity_bytes: int = 8 * GIB
    page_size: int = PAGE_SIZE
    associativity: int = 8              # one 64B tag column maps 8 ways
    tag_bytes: int = 8
    # DRAM timing for the frontside controller (ns).
    row_activate_ns: float = 15.0       # RAS
    column_access_ns: float = 15.0      # CAS
    data_transfer_ns: float = 10.0      # burst for a 64B block
    # Controller command costs (Sec. V-A): FC is a 1-cycle FSM, BC is
    # programmable and takes 3 cycles per command.
    frontside_cycles_per_command: int = 1
    backside_cycles_per_command: int = 3
    controller_frequency_ghz: float = 2.0
    # Unison-style way prediction: fetch the predicted way's data in
    # parallel with the tag column, so hits avoid the serialized
    # tag-then-data lookup (Jevdjic et al. [35], cited in Sec. IV-B).
    way_prediction: bool = True
    # Footprint-cache extension (Sec. II-A cites it as a bandwidth
    # optimization): fetch only the predicted footprint of a page on a
    # miss instead of all 4 KiB.
    footprint_enabled: bool = False
    footprint_region_pages: int = 64
    footprint_safety_blocks: int = 4
    # Miss Status Row: one specialized DRAM row of 8B entries.
    msr_entries: int = 512
    # Backside controller structures.
    evict_buffer_entries: int = 64
    miss_queue_entries: int = 128
    # Hybrid partitioning: fraction of DRAM rows exposed flat to the OS
    # so page tables never live in the cached partition (Sec. IV-A).
    flat_partition_fraction: float = 0.03
    partitioning_enabled: bool = True   # False => AstriFlash-noDP

    @property
    def controller_cycle_ns(self) -> float:
        return 1.0 / self.controller_frequency_ghz

    @property
    def total_pages(self) -> int:
        return self.capacity_bytes // self.page_size

    @property
    def num_sets(self) -> int:
        return max(1, self.total_pages // self.associativity)

    def validate(self) -> None:
        if self.capacity_bytes < self.page_size * self.associativity:
            raise ConfigurationError("DRAM cache smaller than one set")
        if self.associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if not 0.0 <= self.flat_partition_fraction < 1.0:
            raise ConfigurationError("flat partition fraction out of range")
        if self.msr_entries < 1:
            raise ConfigurationError("MSR must have at least one entry")


@dataclass
class FlashConfig:
    """NAND flash device behind PCIe (Sec. II, V)."""

    capacity_bytes: int = 256 * GIB
    page_size: int = PAGE_SIZE
    read_latency_ns: float = 50.0 * US       # paper's 50 us reads
    # Effective per-4KiB program cost: multi-plane one-shot programs on
    # 16 KiB native pages amortize the ~600 us NAND program time.
    program_latency_ns: float = 150.0 * US
    erase_latency_ns: float = 3_000.0 * US
    # "Multiple SSDs" aggregate geometry (Sec. II-A sizes flash
    # bandwidth for the core count with several devices).
    channels: int = 16
    dies_per_channel: int = 8
    planes_per_die: int = 2
    pages_per_block: int = 256
    # Device-side write cache: programs are acked once buffered and
    # drain to the planes in the background.
    write_buffer_pages: int = 512
    # PCIe link (Gen5 x16-like).
    pcie_bandwidth_gbps: float = 128.0        # GB/s
    pcie_latency_ns: float = 500.0
    # Garbage collection model (Sec. VI-D): probability that a request
    # lands on a plane busy with GC, for the reference 256 GiB device.
    gc_blocked_fraction_at_256g: float = 0.04
    gc_reference_capacity_bytes: int = 256 * GIB
    # Over-provisioning fraction driving GC frequency.
    overprovisioning: float = 0.07
    # GC policy: "blocking" holds a plane for the whole pass;
    # "tiny-tail" (the paper's [80]) slices migrations so priority
    # reads slip in between pages.
    gc_policy: str = "blocking"

    @property
    def total_pages(self) -> int:
        return self.capacity_bytes // self.page_size

    @property
    def num_planes(self) -> int:
        return self.channels * self.dies_per_channel * self.planes_per_die

    @property
    def gc_blocked_fraction(self) -> float:
        """GC blocking probability scales down with capacity (more
        planes to spread GC over), per the paper's Sec. VI-D argument."""
        scale = self.capacity_bytes / self.gc_reference_capacity_bytes
        return min(1.0, self.gc_blocked_fraction_at_256g / max(scale, 1e-9))

    def validate(self) -> None:
        if self.read_latency_ns <= 0:
            raise ConfigurationError("flash read latency must be positive")
        if self.gc_policy not in ("blocking", "tiny-tail"):
            raise ConfigurationError(
                f"unknown gc_policy {self.gc_policy!r}"
            )
        if self.channels < 1 or self.dies_per_channel < 1 or self.planes_per_die < 1:
            raise ConfigurationError("flash geometry must be positive")
        if self.capacity_bytes < self.page_size:
            raise ConfigurationError("flash smaller than one page")


@dataclass
class FaultConfig:
    """Fault-injection knobs for :mod:`repro.faults` (DESIGN.md §4f).

    Disabled by default: with ``enabled=False`` no :class:`FaultPlan`
    is constructed and the flash/BC hot paths take their original
    branches, keeping results bit-identical to the golden fixtures.
    The plan draws from its own seeded RNG stream (never the sim RNG),
    so two runs with the same ``seed`` inject identical fault
    sequences.
    """

    enabled: bool = False
    #: Fault-stream seed, independent of the simulation seed.
    seed: int = 0xF1A5
    #: Raw bit error rate of a first (nominal-Vref) NAND sense.
    rber: float = 0.0
    # ECC geometry: a 4 KiB page is protected as independent codewords;
    # each corrects up to ``ecc_correctable_bits`` raw bit errors.
    codewords_per_page: int = 4
    codeword_bits: int = 8192 + 1024          # 1 KiB payload + parity
    ecc_correctable_bits: int = 40
    # Read-retry: each extra sense re-reads with a shifted Vref, which
    # multiplies the effective RBER by ``retry_rber_scale`` and costs
    # ``sense * (1 + read_retry_backoff * round)`` on the plane.
    read_retry_max_rounds: int = 4
    retry_rber_scale: float = 0.35
    read_retry_backoff: float = 0.5
    # Slow planes: a deterministic subset of planes senses slower by
    # ``slow_plane_multiplier`` (process-variation outliers).
    slow_plane_fraction: float = 0.0
    slow_plane_multiplier: float = 3.0
    # Transient plane/channel hangs: the sense stalls for
    # ``timeout_stall_factor * read_latency_ns`` while holding the
    # plane; the completion still fires (late), so consumers without
    # timeout machinery (the OS-swap pager) only see a slow read.
    timeout_probability: float = 0.0
    timeout_stall_factor: float = 12.0
    # Wear coupling: effective RBER is scaled by
    # ``1 + wear_rber_factor * erase_count`` of the block holding the
    # page (fed by PageMappingFtl erase counters).
    wear_rber_factor: float = 0.0
    # BC resilience: reads are reissued after
    # ``bc_timeout_factor * read_latency_ns`` and capped at
    # ``bc_max_reissues`` reissues before DeviceFailedError surfaces.
    bc_timeout_factor: float = 6.0
    bc_max_reissues: int = 4
    # Graceful degradation: after this many consecutive hard faults a
    # plane is marked failing and its reads fall back to synchronous
    # mirror reads at ``degraded_read_multiplier`` x sense latency.
    # 0 disables degraded mode.  Must stay comfortably below
    # ``bc_timeout_factor`` or the degraded path itself times out and
    # the reissue chain cannot terminate (validate() enforces this).
    plane_failure_threshold: int = 3
    degraded_read_multiplier: float = 4.0

    def validate(self) -> None:
        if not 0.0 <= self.rber < 1.0:
            raise ConfigurationError("rber must be in [0, 1)")
        if self.codewords_per_page < 1 or self.codeword_bits < 1:
            raise ConfigurationError("ECC geometry must be positive")
        if self.ecc_correctable_bits < 0:
            raise ConfigurationError("ECC strength cannot be negative")
        if self.read_retry_max_rounds < 0 or self.bc_max_reissues < 0:
            raise ConfigurationError("retry/reissue caps cannot be negative")
        if not 0.0 <= self.retry_rber_scale <= 1.0:
            raise ConfigurationError("retry_rber_scale must be in [0, 1]")
        if not 0.0 <= self.slow_plane_fraction <= 1.0:
            raise ConfigurationError("slow_plane_fraction out of range")
        if not 0.0 <= self.timeout_probability < 1.0:
            raise ConfigurationError("timeout_probability out of range")
        if self.slow_plane_multiplier < 1.0 \
                or self.degraded_read_multiplier < 1.0:
            raise ConfigurationError("latency multipliers must be >= 1")
        if self.bc_timeout_factor <= 0 or self.timeout_stall_factor <= 0:
            raise ConfigurationError("timeout factors must be positive")
        if self.plane_failure_threshold > 0 \
                and self.degraded_read_multiplier >= self.bc_timeout_factor:
            raise ConfigurationError(
                "degraded_read_multiplier must be below bc_timeout_factor "
                "or degraded reads themselves time out"
            )
        if self.wear_rber_factor < 0.0:
            raise ConfigurationError("wear_rber_factor cannot be negative")
        if self.plane_failure_threshold < 0:
            raise ConfigurationError("plane_failure_threshold cannot be negative")


@dataclass
class WritesConfig:
    """Write-path knobs for :mod:`repro.writes` (DESIGN.md §4j).

    Disabled by default: with ``enabled=False`` no admission policy is
    constructed, dirty evictions stay free, and the flash/BC hot paths
    take their original branches, keeping results bit-identical to the
    golden fixtures.  The readiness sketch draws from its own seeded
    hash stream (never the sim RNG), so two runs with the same
    ``sketch_seed`` make identical admission decisions.
    """

    enabled: bool = False
    #: DRAM→flash admission policy: ``write-back`` persists a page when
    #: its dirty way is evicted, ``write-through`` issues a flash
    #: program on every store (dirty evictions are already persisted
    #: and elided), ``readiness`` is a Flashield-style filter that
    #: admits a dirty eviction only once the page has been read at
    #: least ``readiness_reads`` times within the sketch window.
    admission_policy: str = "write-back"
    #: Reads a page must accumulate before a dirty eviction is admitted.
    readiness_reads: int = 2
    #: Read observations per sketch epoch; on epoch rollover the
    #: counters are halved (aging), so stale popularity decays.
    readiness_window: int = 4096
    #: log2 of the counters per sketch row.
    sketch_bits: int = 12
    #: Hash rows in the count-min sketch.
    sketch_rows: int = 2
    #: Sketch hash seed, independent of the simulation seed.
    sketch_seed: int = 0x5EED
    #: Program/erase cycles a block survives; drives the lifetime
    #: estimate derived from the measured erase rate.
    pe_cycle_budget: int = 3000

    POLICIES = ("write-through", "write-back", "readiness")

    def validate(self) -> None:
        if self.admission_policy not in self.POLICIES:
            raise ConfigurationError(
                f"unknown admission_policy {self.admission_policy!r}"
            )
        if self.readiness_reads < 1:
            raise ConfigurationError("readiness_reads must be >= 1")
        if self.readiness_window < 1:
            raise ConfigurationError("readiness_window must be >= 1")
        if not 1 <= self.sketch_bits <= 24:
            raise ConfigurationError("sketch_bits must be in [1, 24]")
        if self.sketch_rows < 1:
            raise ConfigurationError("sketch_rows must be >= 1")
        if self.pe_cycle_budget < 1:
            raise ConfigurationError("pe_cycle_budget must be >= 1")


@dataclass
class OsConfig:
    """Costs of the traditional OS paging path (Sec. II-C)."""

    context_switch_ns: float = 5.0 * US      # ~5 us per switch
    page_fault_kernel_ns: float = 5.0 * US   # storage stack + NVMe driver
    tlb_shootdown_base_ns: float = 4.0 * US  # broadcast IPI base cost
    tlb_shootdown_per_core_ns: float = 0.5 * US  # scales with core count
    # LATR-style lazy/batched shootdowns (the paper's [46]): amortize
    # the broadcast over several page unmappings.
    batched_shootdowns: bool = False
    shootdown_batch_size: int = 8
    page_table_levels: int = 4
    # OS-Swap uses kernel threads multiplexed per core.
    kernel_threads_per_core: int = 32


@dataclass
class UltConfig:
    """User-level threading library (Sec. IV-D)."""

    threads_per_core: int = 48               # paper spawns 32-64
    switch_latency_ns: float = 100.0         # 100 ns user-level switch
    policy: SchedulingPolicy = SchedulingPolicy.PRIORITY_AGING
    # Sized with the thread pool: the context count already bounds the
    # number of in-flight jobs, so pending never overflows unless the
    # limit is deliberately lowered (the mechanism is still modelled).
    pending_queue_limit: int = 48
    # Aging threshold: multiple of the average flash response time after
    # which the pending-queue head preempts new jobs.
    aging_threshold_factor: float = 1.0


@dataclass
class TlbConfig:
    """TLB hierarchy + walker (Sec. IV-A)."""

    entries: int = 1024                      # unified L2 TLB reach
    hit_latency_ns: float = 1.0
    walk_latency_dram_ns: float = 100.0      # walk served from DRAM
    # Probability a job step needs translation not covered by the
    # on-core TLBs (cold/irregular accesses).
    miss_probability: float = 0.02


@dataclass
class SimulationScale:
    """Scaled-down sizes used by the Python simulation.

    The paper simulates 256 GiB of flash-resident dataset and an 8 GiB
    DRAM cache for 16 cores.  We keep the *ratio* (3 %) but shrink the
    page population so pure-Python runs are fast.  ``dataset_pages``
    controls everything: the DRAM cache gets
    ``dataset_pages * dram_fraction`` pages.
    """

    dataset_pages: int = 1 << 16             # 65,536 pages = 256 MiB
    dram_fraction: float = 0.03
    warmup_ns: float = 2_000.0 * US
    measurement_ns: float = 10_000.0 * US
    seed: int = 42

    def validate(self) -> None:
        if self.dataset_pages < 64:
            raise ConfigurationError("dataset too small to be meaningful")
        if not 0.0 < self.dram_fraction <= 1.0:
            raise ConfigurationError("dram_fraction out of range")


@dataclass
class SystemConfig:
    """Complete description of an evaluated system configuration."""

    name: str = "astriflash"
    mode: PagingMode = PagingMode.ASTRIFLASH
    num_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    dram_cache: DramCacheConfig = field(default_factory=DramCacheConfig)
    flash: FlashConfig = field(default_factory=FlashConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    writes: WritesConfig = field(default_factory=WritesConfig)
    os: OsConfig = field(default_factory=OsConfig)
    ult: UltConfig = field(default_factory=UltConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    scale: SimulationScale = field(default_factory=SimulationScale)
    llc_capacity_per_core: int = 1 * MIB

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("need at least one core")
        self.core.validate()
        self.dram_cache.validate()
        self.flash.validate()
        self.faults.validate()
        self.writes.validate()
        self.scale.validate()

    # -- derived, scaled quantities ----------------------------------------

    @property
    def scaled_dataset_pages(self) -> int:
        return self.scale.dataset_pages

    @property
    def scaled_dram_cache_pages(self) -> int:
        pages = int(self.scale.dataset_pages * self.scale.dram_fraction)
        return max(self.dram_cache.associativity, pages)

    def replace(self, **changes) -> "SystemConfig":
        """A copy of this config with top-level fields replaced."""
        return dataclasses.replace(self, **changes)

    def deep_copy(self) -> "SystemConfig":
        return dataclasses.replace(
            self,
            core=dataclasses.replace(self.core),
            dram_cache=dataclasses.replace(self.dram_cache),
            flash=dataclasses.replace(self.flash),
            faults=dataclasses.replace(self.faults),
            writes=dataclasses.replace(self.writes),
            os=dataclasses.replace(self.os),
            ult=dataclasses.replace(self.ult),
            tlb=dataclasses.replace(self.tlb),
            scale=dataclasses.replace(self.scale),
        )


def dram_to_flash_ratio(config: SystemConfig) -> float:
    """DRAM-cache capacity as a fraction of the flash-resident dataset."""
    return config.dram_cache.capacity_bytes / config.flash.capacity_bytes
