"""Ablation: DRAM-cache organization choices.

DESIGN.md design points: set associativity (conflict misses at page
granularity) and Unison-style way prediction (serialized vs overlapped
tag access on hits).
"""

import dataclasses

from conftest import run_once

from repro.harness.common import build_config, resolve_scale
from repro.core import Runner
from repro.workloads import make_workload


def sweep(scale_name):
    scale = resolve_scale(scale_name)
    outcomes = {}
    variants = {
        "direct-mapped": {"associativity": 1},
        "8-way": {"associativity": 8},
        "8-way-no-waypred": {"associativity": 8, "way_prediction": False},
    }
    for name, overrides in variants.items():
        config = build_config("astriflash", scale)
        config.dram_cache = dataclasses.replace(
            config.dram_cache, **overrides
        )
        workload = make_workload("tatp", scale.dataset_pages, seed=42,
                                 **scale.workload_kwargs())
        result = Runner(config, workload).run()
        outcomes[name] = {
            "throughput": result.throughput_jobs_per_s,
            "miss_ratio": result.miss_ratio,
        }
    return outcomes


def test_ablation_dramcache(benchmark, harness_scale):
    outcomes = run_once(benchmark, sweep, harness_scale)
    print("\nDRAM-cache organization sweep:")
    for name, data in outcomes.items():
        print(f"  {name:18s} -> {data['throughput']:10,.0f} jobs/s"
              f"  miss={data['miss_ratio']:.2%}")

    # Direct mapping adds conflict misses over 8-way.
    assert outcomes["direct-mapped"]["miss_ratio"] >= \
        outcomes["8-way"]["miss_ratio"]
    # Disabling way prediction serializes the tag probe on every hit,
    # costing throughput.
    assert outcomes["8-way-no-waypred"]["throughput"] < \
        outcomes["8-way"]["throughput"] * 1.02
