"""OS substrate for the OS-Swap baseline: demand paging + resident set."""

from repro.osmodel.paging import DemandPager
from repro.osmodel.resident import ResidentSetManager

__all__ = ["DemandPager", "ResidentSetManager"]
