"""Tests for the warm-state snapshot/restore subsystem.

The subsystem's contract is *bit-identical amortization*: restoring a
dataset or warm-state snapshot must be indistinguishable from building
or warming from scratch.  The property test below pins that with
:meth:`Machine.state_fingerprint` equality for every evaluated
preset x workload pair; the rest covers the versioned file format
(stale rejection + rebuild), the LRU byte-cap pruner, and the harness
integration (warm-key grouping, fork pool context, sweep bench).
"""

import dataclasses
import json
import os
import pickle

import pytest

from repro import perf
from repro import snapshot as snap
from repro.config import EVALUATED_CONFIG_NAMES
from repro.config.system import PagingMode
from repro.core import Runner
from repro.errors import ConfigurationError, ReproError
from repro.harness import fig1, parallel
from repro.harness.common import HarnessScale, build_config
from repro.harness.parallel import RunSpec, execute_spec, run_specs
from repro.stats import CounterSet
from repro.workloads import EVALUATED_WORKLOADS, make_workload

SEED = 11
WARM_STEPS = 2_000

# Small enough that one warm or run takes a fraction of a second.
TINY = HarnessScale(
    name="snap-tiny", dataset_pages=2048, num_cores=1, warmup_us=100.0,
    measurement_us=400.0, zipf_s=1.8, workloads=EVALUATED_WORKLOADS,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Each test starts without the process-global bytes memo, so disk
    vs memo behaviour is the test's own choice, not execution order's."""
    snap.SnapshotStore.clear_memo()
    yield
    snap.SnapshotStore.clear_memo()


def tiny_spec(config_name="astriflash", seed=7) -> RunSpec:
    return RunSpec(config_name, "arrayswap", TINY, seed=seed)


def result_fields(result) -> dict:
    """Result as a dict minus wall-clock (non-deterministic) fields."""
    fields = dataclasses.asdict(result)
    for name in ("events_per_second", "warm_wall_seconds",
                 "wall_seconds", "warm_source"):
        fields.pop(name)
    return fields


def _fresh_runner(config_name: str, workload_name: str) -> Runner:
    config = build_config(config_name, TINY)
    workload = snap.build_workload(workload_name, TINY.dataset_pages,
                                   SEED, **TINY.workload_kwargs())
    return Runner(config, workload)


# ------------------------------------------------ fingerprint property test --


@pytest.mark.parametrize("workload_name", EVALUATED_WORKLOADS)
@pytest.mark.parametrize("config_name", EVALUATED_CONFIG_NAMES)
def test_restore_is_bit_identical_to_fresh_warm(config_name, workload_name,
                                                tmp_path):
    """For every preset x workload pair, the machine fingerprint after
    snapshot-restore equals the fingerprint after a fresh warm — both
    via capture (memo) and via a cold load from the snapshot file."""
    config = build_config(config_name, TINY)
    key = snap.warm_key(config, workload_name, SEED,
                        TINY.workload_kwargs(),
                        dataset_pages=TINY.dataset_pages,
                        warm_steps=WARM_STEPS)

    reference = _fresh_runner(config_name, workload_name)
    reference.warm(WARM_STEPS)
    want = reference.machine.state_fingerprint()

    if key is None:
        # DRAM-only has no warm tier: nothing to snapshot, and the
        # fingerprint must match a never-warmed machine's.
        assert config.mode is PagingMode.DRAM_ONLY
        fresh = _fresh_runner(config_name, workload_name)
        assert fresh.machine.state_fingerprint() == want
        return

    store = snap.SnapshotStore(tmp_path, enabled=True)
    captured = _fresh_runner(config_name, workload_name)
    snap.capture_warm(captured, key, store, warm_steps=WARM_STEPS)
    assert captured.machine.state_fingerprint() == want

    # Cold-restore path: drop the memo so the payload comes off disk.
    snap.SnapshotStore.clear_memo()
    payload = store.load(snap.WARM_KIND, key)
    assert payload is not None
    restored = Runner(build_config(config_name, TINY),
                      payload["workload"], warm=False)
    snap.restore_warm(restored, payload)
    assert restored.machine.state_fingerprint() == want
    assert restored._warm_source == "snapshot"
    # The runner RNG resumes exactly where the fresh warm left it.
    assert restored._rng.getstate() == reference._rng.getstate()


# ------------------------------------------------------------- warm keying --


def test_warm_key_shared_across_dram_cache_modes():
    kwargs = TINY.workload_kwargs()
    keys = {
        name: snap.warm_key(build_config(name, TINY), "tatp", SEED,
                            kwargs, dataset_pages=TINY.dataset_pages)
        for name in EVALUATED_CONFIG_NAMES
    }
    assert keys["dram-only"] is None
    # Identical DRAM-cache tier geometry -> one shared warm.
    assert (keys["astriflash"] == keys["flash-sync"]
            == keys["astriflash-ideal"] == keys["astriflash-nops"]
            == keys["astriflash-nodp"] is not None)
    # OS-Swap warms a resident set, not a set-associative cache.
    assert keys["os-swap"] not in (None, keys["astriflash"])


def test_warm_key_varies_with_warm_inputs():
    config = build_config("astriflash", TINY)
    kwargs = TINY.workload_kwargs()
    base = snap.warm_key(config, "tatp", SEED, kwargs,
                         dataset_pages=TINY.dataset_pages)
    assert base != snap.warm_key(config, "tatp", SEED + 1, kwargs,
                                 dataset_pages=TINY.dataset_pages)
    assert base != snap.warm_key(config, "tpcc", SEED, kwargs,
                                 dataset_pages=TINY.dataset_pages)
    assert base != snap.warm_key(config, "tatp", SEED, kwargs,
                                 dataset_pages=TINY.dataset_pages,
                                 warm_steps=WARM_STEPS)


# ------------------------------------------------------ stale/corrupt files --


def _read_snapshot(path):
    with open(path, "rb") as handle:
        return pickle.load(handle), handle.read()


def _write_snapshot(path, header, blob):
    with open(path, "wb") as handle:
        handle.write(pickle.dumps(header,
                                  protocol=pickle.HIGHEST_PROTOCOL))
        handle.write(blob)


@pytest.mark.parametrize("tamper", ["version", "stamp", "payload"])
def test_stale_snapshot_rejected_and_deleted(tmp_path, tamper):
    store = snap.SnapshotStore(tmp_path, enabled=True)
    store.store(snap.WORKLOAD_KIND, "k1", {"payload": 1})
    snap.SnapshotStore.clear_memo()
    path = store._path(snap.WORKLOAD_KIND, "k1")
    header, blob = _read_snapshot(path)
    if tamper == "version":
        header["version"] = snap.SNAPSHOT_VERSION + 1
    elif tamper == "stamp":
        header["stamp"] = "0" * 16
    else:
        blob = blob[: len(blob) // 2]  # interrupted writer
    _write_snapshot(path, header, blob)

    before = snap.summary().get("stale_rejected", 0)
    assert store.load(snap.WORKLOAD_KIND, "k1") is None
    assert not path.exists(), "stale snapshot must be deleted"
    assert snap.summary().get("stale_rejected", 0) == before + 1
    assert not store.contains(snap.WORKLOAD_KIND, "k1")


def test_stale_warm_snapshot_rebuilt_not_silently_loaded(tmp_path):
    spec = tiny_spec()
    baseline = result_fields(execute_spec(spec, snapshots=False))
    execute_spec(spec, snapshots=True, snapshot_dir=tmp_path)

    files = list(tmp_path.glob("warm-*.snap"))
    assert len(files) == 1
    path = files[0]
    header, blob = _read_snapshot(path)
    header["stamp"] = "0" * 16  # simulator "changed" since capture
    _write_snapshot(path, header, blob)
    snap.SnapshotStore.clear_memo()

    before = snap.summary().get("stale_rejected", 0)
    result = execute_spec(spec, snapshots=True, snapshot_dir=tmp_path)
    assert result.warm_source == "fresh"  # re-warmed, not loaded
    assert result_fields(result) == baseline
    assert snap.summary().get("stale_rejected", 0) > before
    # A valid snapshot replaced the stale one.
    header, _ = _read_snapshot(path)
    assert header["stamp"] == snap.source_digest()


# ------------------------------------------------------ execute_spec paths --


def test_execute_spec_identical_across_snapshot_paths(tmp_path):
    """Off, cold-capture, memo-restore, and disk-restore runs must all
    produce bit-identical results (the golden test pins the values;
    this pins path equivalence for every mode with warm state)."""
    for config_name in ("astriflash", "os-swap", "flash-sync"):
        # Private store per config: astriflash and flash-sync share a
        # warm key by design, which would make the later "cold" runs
        # restores rather than captures.
        store_dir = tmp_path / config_name
        snap.SnapshotStore.clear_memo()
        spec = tiny_spec(config_name)
        off = execute_spec(spec, snapshots=False)
        cold = execute_spec(spec, snapshots=True, snapshot_dir=store_dir)
        memo = execute_spec(spec, snapshots=True, snapshot_dir=store_dir)
        snap.SnapshotStore.clear_memo()
        disk = execute_spec(spec, snapshots=True, snapshot_dir=store_dir)
        assert off.warm_source == "fresh"
        assert cold.warm_source == "fresh"
        assert memo.warm_source == "snapshot"
        assert disk.warm_source == "snapshot"
        assert (result_fields(off) == result_fields(cold)
                == result_fields(memo) == result_fields(disk))


def test_run_specs_warms_shared_group_once(tmp_path):
    """Specs sharing a warm key re-use one capture: the second run of
    the batch restores instead of warming."""
    specs = [tiny_spec("astriflash", seed=23),
             tiny_spec("flash-sync", seed=23)]
    before = snap.summary()
    run_specs(specs, jobs=1, cache=False,
              snapshots=True, snapshot_dir=tmp_path)
    after = snap.summary()

    def delta(key):
        return after.get(key, 0) - before.get(key, 0)

    assert delta("warm_captures") == 1
    assert delta("warm_restores") == 1
    # And only one dataset was actually constructed.
    assert delta("workload_builds") == 1


# ------------------------------------------------------- dataset memoization --


def test_build_workload_memoizes_but_never_shares_objects(tmp_path):
    store = snap.SnapshotStore(tmp_path, enabled=True)
    before = snap.summary().get("workload_builds", 0)
    first = snap.build_workload("arrayswap", 512, 3, store=store)
    assert snap.summary().get("workload_builds", 0) == before + 1
    second = snap.build_workload("arrayswap", 512, 3, store=store)
    assert snap.summary().get("workload_builds", 0) == before + 1
    assert first is not second, "restores must be private copies"
    assert first.name == second.name == "arrayswap"


def test_build_workload_disabled_store_bypasses_files(tmp_path):
    store = snap.SnapshotStore(tmp_path, enabled=False)
    workload = snap.build_workload("arrayswap", 512, 3, store=store)
    assert workload.name == "arrayswap"
    assert list(tmp_path.iterdir()) == []


def test_deep_workloads_pickle_roundtrip(tmp_path):
    """Linked-structure datasets (masstree) exceed the default pickle
    recursion limit at full scale; the big-stack fallback must produce
    a loadable blob."""
    store = snap.SnapshotStore(tmp_path, enabled=True)
    built = snap.build_workload("masstree", 1024, 3, store=store)
    snap.SnapshotStore.clear_memo()
    restored = snap.build_workload("masstree", 1024, 3, store=store)
    assert built is not restored
    assert restored.name == "masstree"


# ----------------------------------------------------------- LRU byte cap --


def _aged_file(tmp_path, name, size, age_rank):
    path = tmp_path / name
    path.write_bytes(b"x" * size)
    os.utime(path, (1_000_000 + age_rank, 1_000_000 + age_rank))
    return path


def test_prune_cache_evicts_oldest_first(tmp_path):
    oldest = _aged_file(tmp_path, "a.snap", 100, 0)
    middle = _aged_file(tmp_path, "b.pkl", 100, 1)
    newest = _aged_file(tmp_path, "c.snap", 100, 2)
    files, freed = snap.prune_cache(tmp_path, max_bytes=250)
    assert (files, freed) == (1, 100)
    assert not oldest.exists() and middle.exists() and newest.exists()


def test_prune_cache_protects_keep_paths(tmp_path):
    oldest = _aged_file(tmp_path, "a.snap", 100, 0)
    newest = _aged_file(tmp_path, "b.snap", 100, 1)
    snap.prune_cache(tmp_path, max_bytes=100, keep=(oldest,))
    assert oldest.exists() and not newest.exists()


def test_prune_cache_ignores_foreign_files(tmp_path):
    stamp = tmp_path / "CACHE_VERSION"
    stamp.write_text("1:abc")
    doomed = _aged_file(tmp_path, "a.snap", 100, 0)
    snap.prune_cache(tmp_path, max_bytes=1)
    assert stamp.exists() and not doomed.exists()


def test_store_prunes_to_byte_cap(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "512")
    old = _aged_file(tmp_path, "old.snap", 4096, 0)
    store = snap.SnapshotStore(tmp_path, enabled=True)
    store.store(snap.WORKLOAD_KIND, "fresh", {"payload": 1})
    assert not old.exists(), "write must prune older entries over cap"
    assert store._path(snap.WORKLOAD_KIND, "fresh").exists()


def test_cache_max_bytes_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    assert snap.cache_max_bytes() == snap.DEFAULT_CACHE_MAX_BYTES
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1024")
    assert snap.cache_max_bytes() == 1024
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
    assert snap.cache_max_bytes() is None, "0 disables pruning"
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "bogus")
    assert snap.cache_max_bytes() == snap.DEFAULT_CACHE_MAX_BYTES


def test_clear_cache_removes_only_cache_files(tmp_path):
    (tmp_path / "a.snap").write_bytes(b"x")
    (tmp_path / "b.pkl").write_bytes(b"y")
    (tmp_path / "CACHE_VERSION").write_text("1:abc")
    foreign = tmp_path / "notes.txt"
    foreign.write_text("keep me")
    files, _freed = snap.clear_cache(tmp_path)
    assert files == 3
    assert foreign.exists()
    assert list(tmp_path.iterdir()) == [foreign]


# -------------------------------------------------- machine state contracts --


def test_dump_warm_state_rejects_started_machine():
    runner = _fresh_runner("astriflash", "arrayswap")
    runner.run()
    with pytest.raises(ConfigurationError):
        runner.machine.dump_warm_state()


def test_load_warm_state_rejects_tier_mismatch():
    donor = _fresh_runner("astriflash", "arrayswap")
    donor.warm(WARM_STEPS)
    state = donor.machine.dump_warm_state()
    target = _fresh_runner("os-swap", "arrayswap")
    with pytest.raises(ConfigurationError):
        target.machine.load_warm_state(state)


def test_counterset_restore_replaces_values():
    counters = CounterSet("t")
    counters.add("kept", 1)
    counters.add("dropped", 2)
    counters.restore({"kept": 5.0, "created": 7.0})
    assert counters.as_dict() == {"kept": 5.0, "created": 7.0}
    counters.add("kept")
    assert counters.as_dict()["kept"] == 6.0


# ------------------------------------------------------ harness integration --


def test_pool_context_prefers_fork():
    import multiprocessing

    context = parallel._pool_context()
    if "fork" in multiprocessing.get_all_start_methods():
        assert context.get_start_method() == "fork"
    else:  # documented spawn fallback (Windows)
        expected = multiprocessing.get_context().get_start_method()
        assert context.get_start_method() == expected


def test_fig1_rows_identical_with_and_without_snapshots(tmp_path):
    off = fig1.run(scale="quick", jobs=1, snapshots=False)
    cold = fig1.run(scale="quick", jobs=1, snapshots=True,
                    snapshot_dir=tmp_path)
    snap.SnapshotStore.clear_memo()
    warm = fig1.run(scale="quick", jobs=1, snapshots=True,
                    snapshot_dir=tmp_path)
    assert off.rows == cold.rows == warm.rows


def test_bench_sweep_schema_and_speedup(tmp_path):
    bench = perf.bench_sweep("fig1", scale="quick",
                             snapshot_dir=str(tmp_path))
    data = json.loads(bench.to_json())
    assert data["schema_version"] == perf.SWEEP_SCHEMA_VERSION
    for field in ("experiment", "scale", "wall_seconds_snapshots_off",
                  "wall_seconds_snapshots_cold",
                  "wall_seconds_snapshots_on", "speedup",
                  "config_preset"):
        assert field in data
    assert data["experiment"] == "fig1"
    assert data["wall_seconds_snapshots_on"] > 0
    assert data["speedup"] > 0
    out = tmp_path / "BENCH_sweep.json"
    bench.write_json(str(out))
    assert json.loads(out.read_text())["speedup"] == data["speedup"]


def test_bench_sweep_unknown_experiment():
    with pytest.raises(ReproError):
        perf.bench_sweep("nonesuch")
