"""Benchmark: regenerate Fig. 2 (async paging does not scale)."""

from conftest import run_once

from repro.harness import run_experiment


def test_fig2_paging_overheads(benchmark, harness_scale):
    result = run_once(benchmark, run_experiment, "fig2",
                      scale=harness_scale)
    print("\n" + result.format_table())

    by_cores = {row[0]: row for row in result.rows}
    # One core: the 10 us per-miss overhead halves throughput.
    assert abs(by_cores[1][2] - 0.5) < 0.05
    # The shootdown broadcast makes scaling collapse at 64 cores.
    assert by_cores[64][2] < 0.05
    # Normalized throughput is monotonically non-increasing in cores.
    series = [row[2] for row in result.rows]
    assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))
