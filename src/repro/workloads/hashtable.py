"""Chained hash table workload (microbenchmark suite, Sec. V-A).

A real chained hash index: a packed bucket array (many buckets per
page) plus chain entry nodes allocated from a spread heap.  Lookups
touch the bucket page then chase the chain, producing the
pointer-chasing page trace the paper's microbenchmark exercises.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.pagedheap import PagedHeap, SpreadHeap
from repro.workloads.zipf import ZipfianGenerator

# A bucket head pointer is 8 bytes: 512 buckets per 4 KiB page.
BUCKETS_PER_PAGE = 512
ENTRY_SIZE_BYTES = 48


class _Entry:
    __slots__ = ("key", "page", "next_entry")

    def __init__(self, key: int, page: int) -> None:
        self.key = key
        self.page = page
        self.next_entry: Optional["_Entry"] = None


class HashIndex:
    """A bucketed chain hash index with page-path lookups."""

    def __init__(self, num_buckets: int, base_page: int, page_budget: int,
                 expected_entries: int) -> None:
        if num_buckets < 1:
            raise WorkloadError("need at least one bucket")
        self.num_buckets = num_buckets
        bucket_pages = -(-num_buckets // BUCKETS_PER_PAGE)  # ceil
        if bucket_pages >= page_budget:
            raise WorkloadError("page budget too small for the bucket array")
        self._bucket_base = base_page
        self._entry_heap = SpreadHeap(
            base_page + bucket_pages, page_budget - bucket_pages,
            expected_entries,
        )
        self._buckets: List[Optional[_Entry]] = [None] * num_buckets
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def _bucket_page(self, bucket: int) -> int:
        return self._bucket_base + bucket // BUCKETS_PER_PAGE

    def _bucket_of(self, key: int) -> int:
        # Fibonacci hashing: cheap and well-spread for integer keys.
        return (key * 2654435761) % self.num_buckets

    def insert(self, key: int) -> List[int]:
        """Insert ``key`` (idempotent); returns touched pages."""
        bucket = self._bucket_of(key)
        pages = [self._bucket_page(bucket)]
        entry = self._buckets[bucket]
        while entry is not None:
            pages.append(entry.page)
            if entry.key == key:
                return pages
            entry = entry.next_entry
        new_entry = _Entry(key, self._entry_heap.allocate(ENTRY_SIZE_BYTES).page)
        new_entry.next_entry = self._buckets[bucket]
        self._buckets[bucket] = new_entry
        self._size += 1
        pages.append(new_entry.page)
        return pages

    def lookup(self, key: int) -> Tuple[Optional[int], List[int]]:
        """(entry page or None, touched page path)."""
        bucket = self._bucket_of(key)
        pages = [self._bucket_page(bucket)]
        entry = self._buckets[bucket]
        while entry is not None:
            pages.append(entry.page)
            if entry.key == key:
                return entry.page, pages
            entry = entry.next_entry
        return None, pages

    def average_chain_length(self) -> float:
        lengths = []
        for head in self._buckets:
            count = 0
            entry = head
            while entry is not None:
                count += 1
                entry = entry.next_entry
            lengths.append(count)
        return sum(lengths) / len(lengths)


class HashTableWorkload(Workload):
    """Zipfian key lookups/updates against the chained hash index."""

    name = "hashtable"
    rob_occupancy = 48.0

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_keys: Optional[int] = None, zipf_s: float = 1.55,
                 ops_per_job: int = 16, compute_ns: float = 150.0,
                 write_fraction: float = 0.10) -> None:
        super().__init__(dataset_pages, seed)
        if num_keys is None:
            num_keys = min(1 << 16, max(1024, dataset_pages * 2))
        self.num_keys = num_keys
        self.ops_per_job = ops_per_job
        self.compute_ns = compute_ns
        self.write_fraction = write_fraction

        num_buckets = max(BUCKETS_PER_PAGE, num_keys // 2)
        self.index = HashIndex(num_buckets, base_page=0,
                               page_budget=dataset_pages,
                               expected_entries=num_keys)
        for key in range(num_keys):
            self.index.insert(key)
        self._zipf = ZipfianGenerator(num_keys, zipf_s, seed=seed + 1,
                                         permute=False)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.ops_per_job):
            key = self._zipf.sample()
            entry_page, path = self.index.lookup(key)
            if entry_page is None:
                raise WorkloadError(f"key {key} missing from hash index")
            is_write = self._rng.random() < self.write_fraction
            # All path pages are reads; the final entry access may be a
            # value update (write to the entry's page).
            for page in path[:-1]:
                yield Step(self._compute(self.compute_ns), page)
            yield Step(self._compute(self.compute_ns), path[-1],
                       is_write=is_write)
