"""TPC-C workload (Sec. V-A).

The paper executes 'neworder' transactions (plus the usual payment
traffic) against a warehouse database.  Table regions are laid out as
fixed-size arrays over the page budget — which is how row stores place
fixed-schema rows — with the stock table dominating capacity, items a
small hot region, and order lines appended to a circular log region.

TPC-C is the most computationally intensive workload in the suite: its
compute segments are longer and its ROB runs fuller, so pipeline
flushes on a miss cost the most (the Sec. VI-A observation that TPCC
degrades most under AstriFlash).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.workloads.base import Job, Step, Workload
from repro.workloads.zipf import ZipfianGenerator

ROWS_PER_PAGE = 8  # 512-byte rows


class TpccWorkload(Workload):
    """New-order + payment transactions over array-laid tables."""

    name = "tpcc"
    rob_occupancy = 112.0  # compute-heavy: big window when flushed

    NEW_ORDER_WEIGHT = 0.5  # remaining traffic is payment

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_customers: Optional[int] = None, zipf_s: float = 1.50,
                 transactions_per_job: int = 1,
                 compute_ns: float = 400.0,
                 items_per_order: int = 10) -> None:
        super().__init__(dataset_pages, seed)
        if num_customers is None:
            num_customers = min(1 << 16, max(1024, dataset_pages * 2))
        self.num_customers = num_customers
        self.transactions_per_job = transactions_per_job
        self.compute_ns = compute_ns
        self.items_per_order = items_per_order

        # Region layout: stock dominates, items small and hot.
        self._item_budget = max(2, dataset_pages // 64)
        self._warehouse_budget = max(1, dataset_pages // 256)
        self._customer_budget = max(4, dataset_pages // 4)
        self._orderline_budget = max(4, dataset_pages // 64)
        used = (self._item_budget + self._warehouse_budget
                + self._customer_budget + self._orderline_budget)
        self._stock_budget = max(4, dataset_pages - used)

        self._item_base = 0
        self._warehouse_base = self._item_budget
        self._customer_base = self._warehouse_base + self._warehouse_budget
        self._stock_base = self._customer_base + self._customer_budget
        self._orderline_base = self._stock_base + self._stock_budget

        self.num_items = self._stock_budget * ROWS_PER_PAGE
        self._customer_zipf = ZipfianGenerator(
            num_customers, zipf_s, seed=seed + 1, permute=False
        )
        self._item_zipf = ZipfianGenerator(
            self.num_items, zipf_s, seed=seed + 2, permute=False
        )
        self._orderline_cursor = 0

    # -- table addressing ----------------------------------------------------

    def _customer_page(self, customer: int) -> int:
        slot = customer * self._customer_budget // self.num_customers
        return self._customer_base + min(slot, self._customer_budget - 1)

    def _stock_page(self, item: int) -> int:
        return self._stock_base + (item // ROWS_PER_PAGE) % self._stock_budget

    def _item_page(self, item: int) -> int:
        return self._item_base + (item % (self._item_budget * ROWS_PER_PAGE)) \
            // ROWS_PER_PAGE

    def _warehouse_page(self, customer: int) -> int:
        return self._warehouse_base + customer % self._warehouse_budget

    def _next_orderline_page(self) -> int:
        page = self._orderline_base + \
            (self._orderline_cursor // ROWS_PER_PAGE) % self._orderline_budget
        self._orderline_cursor += 1
        return page

    # -- transactions ------------------------------------------------------------

    def _new_order_steps(self, customer: int) -> Iterator[Step]:
        # _compute is inlined (same draw, same bits — see Workload._compute).
        compute_ns = self.compute_ns
        rng_random = self._rng_random
        sample = self._item_zipf.sample
        warehouse = self._warehouse_page(customer)
        yield Step(compute_ns * (0.5 + rng_random()), warehouse)
        # District row: read-modify-write of next_o_id.
        yield Step(compute_ns * (0.5 + rng_random()), warehouse, is_write=True)
        yield Step(compute_ns * (0.5 + rng_random()), self._customer_page(customer))
        for _ in range(self.items_per_order):
            item = sample()
            stock = self._stock_page(item)
            yield Step(compute_ns * (0.5 + rng_random()), self._item_page(item))
            yield Step(compute_ns * (0.5 + rng_random()), stock)
            yield Step(compute_ns * (0.5 + rng_random()), stock, is_write=True)
            yield Step(compute_ns * (0.5 + rng_random()), self._next_orderline_page(),
                       is_write=True)

    def _payment_steps(self, customer: int) -> Iterator[Step]:
        compute_ns = self.compute_ns
        rng_random = self._rng_random
        customer_page = self._customer_page(customer)
        yield Step(compute_ns * (0.5 + rng_random()), self._warehouse_page(customer),
                   is_write=True)
        yield Step(compute_ns * (0.5 + rng_random()), customer_page)
        yield Step(compute_ns * (0.5 + rng_random()), customer_page, is_write=True)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.transactions_per_job):
            customer = self._customer_zipf.sample()
            if self._rng_random() < self.NEW_ORDER_WEIGHT:
                yield from self._new_order_steps(customer)
            else:
                yield from self._payment_steps(customer)
