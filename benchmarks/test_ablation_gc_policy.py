"""Ablation: blocking GC vs Tiny-Tail sliced GC (Sec. VI-D, ref [80]).

The paper suggests local/sliced garbage collection to "further enforce
tail latency".  This bench stresses a small device with write churn and
concurrent reads and compares the worst-case read latency under the
two policies.
"""

from conftest import run_once

from repro.config import FlashConfig
from repro.flash import FlashDevice
from repro.sim import Engine, spawn
from repro.units import US


def stress(policy: str):
    import random
    rng = random.Random(9)
    engine = Engine()
    config = FlashConfig(channels=1, dies_per_channel=1, planes_per_die=1,
                         pages_per_block=8, overprovisioning=0.5,
                         gc_policy=policy)
    device = FlashDevice(engine, config, 32)
    latencies = []

    def writer():
        for index in range(300):
            yield device.write(index % 4)

    def reader():
        for _ in range(300):
            request = yield device.read(rng.randrange(32))
            latencies.append(request.latency_ns)
            yield 10.0 * US

    spawn(engine, writer())
    spawn(engine, reader())
    engine.run()
    latencies.sort()
    return {
        "max": latencies[-1],
        "p99": latencies[int(0.99 * len(latencies)) - 1],
        "gc_passes": device.gc.stats["passes"],
    }


def sweep():
    return {policy: stress(policy) for policy in ("blocking", "tiny-tail")}


def test_ablation_gc_policy(benchmark, harness_scale):
    del harness_scale  # stress device is fixed-size
    outcomes = run_once(benchmark, sweep)
    print("\nGC policy sweep (read latency):")
    for policy, data in outcomes.items():
        print(f"  {policy:10s} max={data['max'] / 1000:8.1f} us "
              f"p99={data['p99'] / 1000:8.1f} us "
              f"(GC passes: {data['gc_passes']:.0f})")

    # Both policies actually collected garbage.
    assert outcomes["blocking"]["gc_passes"] > 0
    assert outcomes["tiny-tail"]["gc_passes"] > 0
    # Tiny-tail bounds the read tail far below a full blocking pass.
    assert outcomes["tiny-tail"]["max"] < 0.5 * outcomes["blocking"]["max"]
