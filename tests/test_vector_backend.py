"""Tests for the vectorized batch-execution backend (DESIGN.md §4h).

The backend's contract is *bit-identity*: on every evaluated preset x
workload pair, a ``backend="vector"`` run must produce the same
:meth:`Machine.state_fingerprint` and the same deterministic
:class:`SimulationResult` fields as the scalar golden reference —
whether the vector engine actually engages (DRAM-only fused loop,
Flash-Sync job-epoch loop) or silently falls back (multi-core,
open-loop, tracing, fault plans).  The sweep below pins that property;
the unit tests cover the batched primitives the loops are built from
(RNG bridge, zipf blocks, tag-probe runs, flash read batches, engine
batch advance) and the kernel bench that reports the speedup.
"""

import json
import os
import random

import numpy as np
import pytest

from repro import perf
from repro.cli import main
from repro.config import EVALUATED_CONFIG_NAMES, make_config
from repro.core import Runner
from repro.errors import ConfigurationError
from repro.harness.common import HarnessScale, build_config
from repro.sim import vector
from repro.sim.engine import Engine
from repro.sim.vector import BatchedRandom, uniform_block
from repro.units import US
from repro.workloads import EVALUATED_WORKLOADS, PoissonArrivals, \
    make_workload
from repro.workloads.arrival import DiurnalArrivals, MMPPArrivals, \
    TraceArrivals
from repro.workloads.zipf import ZipfianGenerator

SEED = 17

# Small enough that one run takes a fraction of a second, large enough
# that every run crosses warmup, retires jobs, and truncates one.
TINY = HarnessScale(
    name="vec-tiny", dataset_pages=2048, num_cores=1, warmup_us=100.0,
    measurement_us=500.0, zipf_s=1.8, workloads=EVALUATED_WORKLOADS,
)


def run_once(config_name, workload_name, backend, cores=1,
             arrivals=None, scale=TINY, seed=SEED, faults=False,
             workload_kwargs=None):
    config = build_config(config_name, scale)
    config.num_cores = cores
    if faults:
        config.faults.enabled = True
        config.faults.rber = 1e-4
    workload = make_workload(workload_name, scale.dataset_pages,
                             seed=seed, zipf_s=scale.zipf_s,
                             **(workload_kwargs or {}))
    runner = Runner(config, workload, arrivals=arrivals, backend=backend)
    result = runner.run()
    return runner, result


def identity_surface(runner, result):
    return (runner.machine.state_fingerprint(),
            perf.canonical_result_dict(result))


# ------------------------------------------------------- identity sweep --


@pytest.mark.parametrize("config_name", EVALUATED_CONFIG_NAMES)
@pytest.mark.parametrize("workload_name", EVALUATED_WORKLOADS)
def test_vector_bit_identical_to_scalar(config_name, workload_name):
    """Every preset x workload: same fingerprint, same deterministic
    result fields, single-core (the vector-engaged shapes)."""
    scalar = identity_surface(*run_once(config_name, workload_name,
                                        "scalar"))
    vec = identity_surface(*run_once(config_name, workload_name,
                                     "vector"))
    assert vec == scalar


@pytest.mark.parametrize("workload_name", EVALUATED_WORKLOADS)
def test_vector_multicore_engages_bit_identical(workload_name):
    """Multi-core DRAM-only runs the merged loop (no fallback) and
    stays bit-identical — arrayswap takes the dealt step stream, the
    DB workloads the generic per-pull path."""
    scalar = identity_surface(*run_once("dram-only", workload_name,
                                        "scalar", cores=2))
    vector.reset_stats()
    vec = identity_surface(*run_once("dram-only", workload_name,
                                     "vector", cores=2))
    assert vec == scalar
    stats = vector.stats()
    assert stats["multi_core_runs"] == 1
    assert stats["scalar_fallbacks"] == 0


def test_vector_multicore_flash_sync_falls_back_bit_identical():
    """Cores share the DRAM cache and flash path; that shape stays on
    the scalar engine with a recorded reason."""
    scalar = identity_surface(*run_once("flash-sync", "arrayswap",
                                        "scalar", cores=2))
    vector.reset_stats()
    vec = identity_surface(*run_once("flash-sync", "arrayswap",
                                     "vector", cores=2))
    assert vec == scalar
    assert vector.stats()["scalar_fallbacks"] == 1
    assert "multi-core flash-sync" in vector.last_fallback_reason()


def test_fused_loop_engages_on_dram_only():
    vector.reset_stats()
    run_once("dram-only", "arrayswap", "vector")
    stats = vector.stats()
    assert stats["fused_runs"] == 1
    assert stats["scalar_fallbacks"] == 0
    assert stats["batched_jobs"] > 0
    assert stats["batched_steps"] > 0


def test_job_epoch_loop_engages_on_flash_sync():
    vector.reset_stats()
    run_once("flash-sync", "arrayswap", "vector")
    stats = vector.stats()
    assert stats["job_epoch_runs"] == 1
    assert stats["hit_run_probes"] > 0


def test_truncated_final_job_matches_scalar_live_set():
    """The window cuts off one in-flight job; the vector path must
    leave exactly the job the scalar path leaves (it feeds the
    unfinished/inflight/backlog result fields)."""
    rs, res_s = run_once("dram-only", "arrayswap", "scalar")
    rv, res_v = run_once("dram-only", "arrayswap", "vector")
    assert res_s.unfinished_jobs == 1
    assert sorted(rs._live_jobs) == sorted(rv._live_jobs)
    assert res_v.unfinished_jobs == res_s.unfinished_jobs


# ------------------------------------------------------ fallback gates --


@pytest.mark.parametrize("workload_name", EVALUATED_WORKLOADS)
def test_open_loop_engages_bit_identical(workload_name):
    """Open-loop Poisson on DRAM-only runs the merged loop — same
    fingerprint and stats, including the censoring fields."""

    def arrivals():
        return PoissonArrivals(40.0 * US, seed=SEED + 1)

    rs, res_s = run_once("dram-only", workload_name, "scalar",
                         arrivals=arrivals())
    vector.reset_stats()
    rv, res_v = run_once("dram-only", workload_name, "vector",
                         arrivals=arrivals())
    assert identity_surface(rv, res_v) == identity_surface(rs, res_s)
    assert res_v.unfinished_jobs == res_s.unfinished_jobs
    assert res_v.response_p99_lower_bound_ns == \
        res_s.response_p99_lower_bound_ns
    stats = vector.stats()
    assert stats["open_loop_runs"] == 1
    assert stats["scalar_fallbacks"] == 0
    assert stats["merged_arrivals"] > 0


@pytest.mark.parametrize("make_arrivals", [
    lambda: MMPPArrivals(30.0 * US, 8.0 * US, mean_dwell_ns=60.0 * US,
                         burst_dwell_ns=25.0 * US, seed=SEED + 2),
    lambda: DiurnalArrivals(35.0 * US, 300.0 * US, seed=SEED + 3),
    lambda: TraceArrivals([12.0 * US] * 8, cycle=True),
], ids=["mmpp", "diurnal", "trace-cycle"])
@pytest.mark.parametrize("cores", [1, 2], ids=["1core", "2core"])
def test_open_loop_arrival_modes_engage_bit_identical(make_arrivals,
                                                      cores):
    """Every batchable arrival process, single- and multi-core, runs
    the merged loop bit-identically (gap_block draw replay)."""
    scalar = identity_surface(*run_once("dram-only", "arrayswap",
                                        "scalar", cores=cores,
                                        arrivals=make_arrivals()))
    vector.reset_stats()
    vec = identity_surface(*run_once("dram-only", "arrayswap",
                                     "vector", cores=cores,
                                     arrivals=make_arrivals()))
    assert vec == scalar
    stats = vector.stats()
    assert stats["scalar_fallbacks"] == 0
    assert stats["open_loop_runs" if cores == 1 else
                 "multi_core_runs"] == 1


def test_open_loop_flash_sync_engages_job_epoch_bit_identical():
    """Single-core open-loop Flash-Sync rides the job-epoch loop (the
    park/wake protocol mirrors the scalar idle path)."""

    def arrivals():
        return PoissonArrivals(60.0 * US, seed=SEED + 1)

    scalar = identity_surface(*run_once("flash-sync", "arrayswap",
                                        "scalar", arrivals=arrivals()))
    vector.reset_stats()
    vec = identity_surface(*run_once("flash-sync", "arrayswap",
                                     "vector", arrivals=arrivals()))
    assert vec == scalar
    stats = vector.stats()
    assert stats["job_epoch_runs"] == 1
    assert stats["scalar_fallbacks"] == 0


def test_trace_exhaustion_falls_back_bit_identical():
    """A trace that runs dry mid-window ends the arrival stream inside
    what would be an epoch; classify routes it to the scalar path."""
    from repro.workloads.arrival import TraceArrivals

    vector.reset_stats()

    def arrivals():
        # Exhausts partway through the measurement window.
        return TraceArrivals([25.0 * US] * 12)

    scalar = identity_surface(*run_once("dram-only", "arrayswap",
                                        "scalar", arrivals=arrivals()))
    vec = identity_surface(*run_once("dram-only", "arrayswap",
                                     "vector", arrivals=arrivals()))
    assert vec == scalar
    assert vector.stats()["scalar_fallbacks"] == 1
    assert "open-loop" in vector.last_fallback_reason()


def test_fault_plan_falls_back_bit_identical():
    vector.reset_stats()
    scalar = identity_surface(*run_once("flash-sync", "arrayswap",
                                        "scalar", faults=True))
    vec = identity_surface(*run_once("flash-sync", "arrayswap",
                                     "vector", faults=True))
    assert vec == scalar
    assert vector.stats()["scalar_fallbacks"] == 1
    assert "fault plan" in vector.last_fallback_reason()


def test_tracer_falls_back():
    from repro.obs import tracer as tracer_mod

    vector.reset_stats()
    tracer = tracer_mod.Tracer()
    tracer_mod.enable(tracer)
    try:
        run_once("dram-only", "arrayswap", "vector")
    finally:
        tracer_mod.disable()
    assert vector.stats()["scalar_fallbacks"] == 1
    assert "tracing" in vector.last_fallback_reason()


def test_multiplexed_modes_fall_back():
    vector.reset_stats()
    run_once("astriflash", "arrayswap", "vector")
    assert vector.stats()["scalar_fallbacks"] == 1
    assert "multiplexes" in vector.last_fallback_reason()


# --------------------------------------------------- gap_block protocol --


@pytest.mark.parametrize("make_arrivals", [
    lambda: PoissonArrivals(40.0 * US, seed=11),
    lambda: MMPPArrivals(30.0 * US, 8.0 * US, mean_dwell_ns=60.0 * US,
                         burst_dwell_ns=25.0 * US, seed=12, streams=2),
    lambda: DiurnalArrivals(35.0 * US, 300.0 * US, seed=13, streams=2),
    lambda: TraceArrivals([5.0 * US, 7.0 * US, 11.0 * US], cycle=True),
], ids=["poisson", "mmpp", "diurnal", "trace-cycle"])
def test_gap_block_matches_sequential_gaps(make_arrivals):
    """gap_block(n) returns exactly the next n next_gap_ns values, in
    mixed block sizes and interleaved with scalar calls."""
    scalar = make_arrivals()
    blocked = make_arrivals()
    expected, produced = [], []
    for size in (1, 7, 64, 3):
        expected.extend(scalar.next_gap_ns() for _ in range(size))
        produced.extend(blocked.gap_block(size))
    expected.extend(scalar.next_gap_ns() for _ in range(5))
    if hasattr(blocked, "gap_sync"):
        blocked.gap_sync()
    produced.extend(blocked.next_gap_ns() for _ in range(5))
    assert produced == expected


def test_trace_gap_block_exhausts_short():
    """A finite trace returns a short (then empty) block and marks
    itself exhausted, mirroring next_gap_ns returning None."""
    trace = TraceArrivals([1.0, 2.0, 3.0])
    assert trace.gap_block(2) == [1.0, 2.0]
    assert not trace.exhausted
    assert trace.gap_block(4) == [3.0]
    assert trace.exhausted
    assert trace.gap_block(4) == []
    assert trace.next_gap_ns() is None


def test_mmpp_gap_block_preserves_state_machine():
    """Blocked draws replay the dwell/transition bookkeeping exactly
    (state, transitions) alongside the gap values."""
    scalar = MMPPArrivals(20.0 * US, 4.0 * US, mean_dwell_ns=30.0 * US,
                          burst_dwell_ns=10.0 * US, seed=21)
    blocked = MMPPArrivals(20.0 * US, 4.0 * US, mean_dwell_ns=30.0 * US,
                           burst_dwell_ns=10.0 * US, seed=21)
    gaps = [scalar.next_gap_ns() for _ in range(200)]
    assert blocked.gap_block(200) == gaps
    assert blocked.state == scalar.state
    assert blocked.transitions == scalar.transitions


# ------------------------------------------------------ backend choice --


class TestResolveBackend:
    def test_default_is_scalar(self, monkeypatch):
        monkeypatch.delenv(vector.ENV_VAR, raising=False)
        assert vector.resolve_backend() == "scalar"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(vector.ENV_VAR, "vector")
        assert vector.resolve_backend() == "vector"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(vector.ENV_VAR, "vector")
        assert vector.resolve_backend("scalar") == "scalar"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            vector.resolve_backend("simd")

    def test_env_run_is_bit_identical(self, monkeypatch):
        monkeypatch.delenv(vector.ENV_VAR, raising=False)
        scalar = identity_surface(*run_once("dram-only", "tatp",
                                            "scalar"))
        monkeypatch.setenv(vector.ENV_VAR, "vector")
        vec = identity_surface(*run_once("dram-only", "tatp", None))
        assert vec == scalar


# -------------------------------------------------- batched primitives --


class TestBatchedRandom:
    def test_matches_python_stream(self):
        reference = random.Random(123)
        expected = [reference.random() for _ in range(1000)]
        bridged = BatchedRandom(random.Random(123), block=64)
        produced = []
        for size in (1, 7, 64, 128, 300, 500):
            produced.extend(bridged.take(size).tolist())
        assert produced == expected[:len(produced)]

    def test_sync_lands_python_rng_on_consumed_position(self):
        rng = random.Random(9)
        bridged = BatchedRandom(rng, block=32)
        served = bridged.take(50)
        bridged.sync()
        reference = random.Random(9)
        for value in served.tolist():
            assert reference.random() == value
        # After sync the two streams continue in lockstep.
        assert rng.random() == reference.random()

    def test_take_larger_than_block(self):
        reference = random.Random(5)
        expected = [reference.random() for _ in range(500)]
        bridged = BatchedRandom(random.Random(5), block=16)
        assert bridged.take(500).tolist() == expected

    def test_uniform_block_advances_python_stream(self):
        rng = random.Random(77)
        block = uniform_block(rng, 10)
        reference = random.Random(77)
        assert block.tolist() == [reference.random() for _ in range(10)]
        assert rng.random() == reference.random()


def test_zipf_sample_block_matches_scalar_stream():
    scalar = ZipfianGenerator(4096, 1.6, seed=3)
    expected = [scalar.sample() for _ in range(400)]
    batched = ZipfianGenerator(4096, 1.6, seed=3)
    produced = list(batched.sample_block(150))
    produced += [batched.sample() for _ in range(50)]  # interleave
    produced += list(batched.sample_block(200))
    assert produced == expected
    assert all(isinstance(page, int) and not isinstance(page, np.integer)
               for page in produced)


def test_lookup_many_matches_scalar_lookups():
    def fresh():
        config = make_config("flash-sync")
        config.scale.dataset_pages = 512
        from repro.core.machine import Machine

        return Machine(config)

    pages = [i % 96 for i in range(64)]
    writes = [i % 3 == 0 for i in range(64)]

    scalar_machine = fresh()
    vector_machine = fresh()
    for machine in (scalar_machine, vector_machine):
        machine.dram_cache.warm(range(48))

    org_s = scalar_machine.dram_cache.organization
    org_v = vector_machine.dram_cache.organization
    hits = 0
    for page, write in zip(pages, writes):
        if not org_s.lookup(page, write):
            break
        hits += 1
    assert org_v.lookup_many(pages, writes) == hits
    assert org_s.dump_state() != org_v.dump_state()  # missing probe differs
    # Replaying the miss through the scalar probe reconverges the state.
    org_v.lookup(pages[hits], writes[hits])
    assert org_s.dump_state() == org_v.dump_state()


def test_plane_of_many_matches_plane_of():
    config = make_config("flash-sync")
    config.scale.dataset_pages = 256
    from repro.core.machine import Machine

    machine = Machine(config)
    ftl = machine.flash.ftl
    pages = list(range(0, 256, 3))
    assert ftl.plane_of_many(pages) == [ftl.plane_of(p) for p in pages]
    assert ftl.plane_of_many([]) == []


def test_read_many_matches_sequential_reads():
    def run_reads(batched: bool):
        config = make_config("flash-sync")
        config.scale.dataset_pages = 256
        from repro.core.machine import Machine

        machine = Machine(config)
        engine = machine.engine
        pages = [7, 19, 7, 130, 64]
        if batched:
            signals = machine.flash.read_many(pages)
        else:
            signals = [machine.flash.read(page) for page in pages]
        engine.run()
        done = [(signal.value.logical_page, signal.value.plane_index,
                 signal.value.complete_time) for signal in signals]
        return done, engine.events_executed

    assert run_reads(True) == run_reads(False)


class TestAdvanceBatch:
    def test_advances_clock_and_event_tally(self):
        engine = Engine()
        before = engine.events_executed
        engine.advance_batch(125.0, 40)
        assert engine.now == 125.0
        assert engine.events_executed - before == 40

    def test_rejects_backward_time(self):
        engine = Engine()
        engine.advance_batch(50.0, 1)
        with pytest.raises(Exception):
            engine.advance_batch(25.0, 1)

    def test_rejects_negative_events(self):
        engine = Engine()
        with pytest.raises(Exception):
            engine.advance_batch(10.0, -1)


# ------------------------------------------------------- kernel bench --


class TestKernelBench:
    def test_bench_kernel_compares_backends(self):
        bench = perf.bench_kernel(scale=TINY, repeat=1,
                                  shapes=("fused",))
        assert [entry.backend for entry in bench.entries] == \
            ["scalar", "vector"]
        assert bench.bit_identical is True
        assert bench.speedup is not None and bench.speedup > 0.0
        scalar, vec = bench.entries
        assert scalar.events_executed == vec.events_executed > 0
        assert scalar.state_fingerprint == vec.state_fingerprint
        assert vec.vector_stats["fused_runs"] >= 1
        assert scalar.vector_stats == {}

    def test_single_backend_has_no_identity_verdict(self):
        bench = perf.bench_kernel(scale=TINY, backends=("vector",),
                                  repeat=1, shapes=("fused",))
        assert bench.bit_identical is None
        assert bench.speedup is None
        assert len(bench.entries) == 1

    def test_every_shape_cell_engages_its_loop_kind(self):
        bench = perf.bench_kernel(scale=TINY, repeat=1)
        assert [cell.shape for cell in bench.shapes] == \
            list(perf.KERNEL_BENCH_SHAPES)
        assert bench.bit_identical is True
        expected_kind = {"fused": "fused_runs",
                         "flash-sync": "job_epoch_runs",
                         "open-loop": "open_loop_runs",
                         "multi-core": "multi_core_runs"}
        for name, stat in expected_kind.items():
            cell = bench.shape(name)
            assert cell.bit_identical is True, name
            assert cell.speedup is not None and cell.speedup > 0.0
            vec = cell.entry("vector")
            assert vec.vector_stats[stat] >= 1, name
            assert vec.vector_stats["scalar_fallbacks"] == 0, name
            assert vec.fallback_reasons == {}, name
        open_vec = bench.shape("open-loop").entry("vector")
        assert open_vec.vector_stats["merged_arrivals"] > 0
        # The top level mirrors the first shape (fused).
        assert bench.entries == bench.shape("fused").entries
        assert bench.speedup == bench.shape("fused").speedup

    def test_shapes_filter_and_unknown_shape(self):
        bench = perf.bench_kernel(scale=TINY, repeat=1,
                                  shapes=("multi-core",))
        assert [cell.shape for cell in bench.shapes] == ["multi-core"]
        assert bench.entries == bench.shapes[0].entries
        assert bench.shapes[0].num_cores == 2
        with pytest.raises(Exception):
            perf.bench_kernel(scale=TINY, shapes=("bogus",))
        with pytest.raises(Exception):
            perf.bench_kernel(scale=TINY, shapes=())

    def test_json_round_trip_carries_schema_stamp(self, tmp_path):
        bench = perf.bench_kernel(scale=TINY, repeat=1)
        path = tmp_path / "BENCH_kernel.json"
        bench.write_json(str(path))
        data = json.loads(path.read_text())
        assert data["schema_version"] == perf.KERNEL_BENCH_SCHEMA_VERSION
        assert {entry["backend"] for entry in data["entries"]} == \
            {"scalar", "vector"}
        assert data["bit_identical"] is True
        assert [cell["shape"] for cell in data["shapes"]] == \
            list(perf.KERNEL_BENCH_SHAPES)
        for cell in data["shapes"]:
            assert cell["bit_identical"] is True, cell["shape"]

    def test_invalid_repeat_raises(self):
        with pytest.raises(Exception):
            perf.bench_kernel(scale=TINY, repeat=0)

    def test_cli_bench_kernel_writes_json(self, tmp_path, capsys,
                                          monkeypatch):
        # Shrink the bench so the CLI test stays fast.
        monkeypatch.setattr(perf, "KERNEL_BENCH_WINDOW_FACTOR", 0.25)
        out = tmp_path / "BENCH_kernel.json"
        assert main(["bench-kernel", "--compare", "--repeat", "1",
                     "--shape", "fused", "--shape", "open-loop",
                     "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "speedup" in captured
        assert "bit-identical   True" in captured
        data = json.loads(out.read_text())
        assert len(data["entries"]) == 2
        assert [cell["shape"] for cell in data["shapes"]] == \
            ["fused", "open-loop"]


# --------------------------------------------------- profile warm wall --


def test_profile_excludes_warm_wall(monkeypatch):
    """events/s must be computed over the kernel wall, not warm time."""
    import time as time_mod

    from repro.core import runner as runner_mod
    from repro.harness import EXPERIMENTS

    def fake_experiment(scale="quick", jobs=1):
        start = time_mod.perf_counter()
        while time_mod.perf_counter() - start < 0.02:
            pass
        runner_mod._WALL_TOTALS["warm_seconds"] += 0.02

    monkeypatch.setitem(EXPERIMENTS, "warmy", fake_experiment)
    report = perf.profile_experiment("warmy", top=1)
    assert report.warm_wall_seconds == pytest.approx(0.02)
    assert report.wall_seconds < 0.02  # warm time subtracted out
    assert report.backend == "scalar"
    assert report.schema_version == perf.PROFILE_SCHEMA_VERSION


def test_profile_backend_env_is_restored(monkeypatch):
    from repro.harness import EXPERIMENTS

    monkeypatch.setitem(EXPERIMENTS, "noop", lambda scale, jobs: None)
    monkeypatch.setenv(vector.ENV_VAR, "scalar")
    perf.profile_experiment("noop", top=1, backend="vector")
    assert os.environ[vector.ENV_VAR] == "scalar"


# ----------------------------------------------------- numpy contract --


def test_numpy_meets_declared_lower_bound():
    """pyproject declares numpy>=1.22 (RandomState MT19937 bridge and
    sliceable memoryview semantics the backend relies on)."""
    major, minor = (int(part) for part in
                    np.__version__.split(".")[:2])
    assert (major, minor) >= (1, 22)
