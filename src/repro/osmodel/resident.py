"""OS-managed resident-set (physical memory) bookkeeping.

Under OS-Swap the DRAM is not a hardware cache: the kernel tracks which
pages are resident, picks victims with an LRU-approximating policy, and
swaps against flash.  Functionally this mirrors the DRAM-cache
organization but is fully associative (the OS can place any page in any
frame) and is guarded by kernel locks, modelled in
:mod:`repro.osmodel.paging`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.stats import CounterSet


class ResidentSetManager:
    """Fully-associative LRU resident set of ``capacity`` page frames."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ConfigurationError("resident set needs at least one frame")
        self.capacity = capacity_pages
        self._resident: "OrderedDict[int, bool]" = OrderedDict()  # page -> dirty
        self.stats = CounterSet("resident-set")

    def __len__(self) -> int:
        return len(self._resident)

    def lookup(self, page: int, is_write: bool = False) -> bool:
        """Check residency; hits touch LRU and may set the dirty bit."""
        if page in self._resident:
            self._resident.move_to_end(page)
            if is_write:
                self._resident[page] = True
            self.stats.add("hits")
            return True
        self.stats.add("faults")
        return False

    def is_resident(self, page: int) -> bool:
        return page in self._resident

    def insert(self, page: int, dirty: bool = False
               ) -> Optional[Tuple[int, bool]]:
        """Map a faulted-in page; returns the evicted ``(page, dirty)``
        if a frame had to be reclaimed."""
        victim: Optional[Tuple[int, bool]] = None
        if page in self._resident:
            self._resident.move_to_end(page)
            if dirty:
                self._resident[page] = True
            return None
        if len(self._resident) >= self.capacity:
            victim = self._resident.popitem(last=False)
            self.stats.add("evictions")
            if victim[1]:
                self.stats.add("dirty_evictions")
        self._resident[page] = dirty
        self.stats.add("insertions")
        return victim

    # -- warm-state snapshot (repro.snapshot) ---------------------------------

    def dump_state(self) -> dict:
        """Picklable dump: the ``(page, dirty)`` pairs in LRU order
        (OrderedDict insertion order *is* the eviction order) plus the
        stats counters."""
        return {
            "capacity": self.capacity,
            "resident": [(page, dirty)
                         for page, dirty in self._resident.items()],
            "stats": self.stats.as_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` dump bit-identically."""
        if state["capacity"] != self.capacity:
            raise ConfigurationError(
                f"warm-state capacity mismatch: snapshot has "
                f"{state['capacity']} frames, resident set has "
                f"{self.capacity}"
            )
        self._resident.clear()
        for page, dirty in state["resident"]:
            self._resident[page] = dirty
        self.stats.restore(state["stats"])

    def fault_ratio(self) -> float:
        total = self.stats["hits"] + self.stats["faults"]
        if total == 0:
            return 0.0
        return self.stats["faults"] / total

    def warm(self, pages) -> None:
        """Pre-populate frames (experiment warmup)."""
        for page in pages:
            self.insert(page)
