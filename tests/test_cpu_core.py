"""Tests for the core cost model and miss-handling registers."""

import pytest

from repro.config import CoreConfig
from repro.cpu import CoreModel, MissHandlingRegisters
from repro.errors import ProtocolError


class TestMissHandlingRegisters:
    def test_handler_install_requires_privilege(self):
        regs = MissHandlingRegisters()
        with pytest.raises(ProtocolError):
            regs.install_handler(0x1000, privileged=False)
        regs.install_handler(0x1000, privileged=True)
        assert regs.handler_address == 0x1000

    def test_invalid_handler_address_rejected(self):
        regs = MissHandlingRegisters()
        with pytest.raises(ProtocolError):
            regs.install_handler(0, privileged=True)

    def test_resume_register_user_writable(self):
        regs = MissHandlingRegisters()
        regs.set_resume(0x2000, forward_progress=True)
        assert regs.resume_pc == 0x2000
        assert regs.forward_progress

    def test_forward_progress_cleared_on_retire(self):
        regs = MissHandlingRegisters()
        regs.set_resume(0x2000, forward_progress=True)
        regs.retire_resuming_instruction()
        assert not regs.forward_progress
        assert regs.resume_pc == 0x2000  # PC stays until cleared

    def test_clear_resume(self):
        regs = MissHandlingRegisters()
        regs.set_resume(0x2000)
        regs.clear_resume()
        assert regs.resume_pc is None


class TestCoreModel:
    def test_flush_penalty_scales_with_occupancy(self):
        core = CoreModel(0, CoreConfig())
        low = core.flush_penalty_ns(rob_occupancy=16)
        high = core.flush_penalty_ns(rob_occupancy=128)
        assert high == pytest.approx(8 * low)

    def test_flush_penalty_default_is_half_window(self):
        config = CoreConfig()
        core = CoreModel(0, config)
        expected = (config.rob_entries / 2) * config.flush_cycles_per_rob_entry \
            * config.cycle_ns
        assert core.flush_penalty_ns() == pytest.approx(expected)

    def test_flush_penalty_clamped(self):
        core = CoreModel(0, CoreConfig())
        assert core.flush_penalty_ns(rob_occupancy=-5) == 0.0
        assert core.flush_penalty_ns(rob_occupancy=10_000) == \
            core.flush_penalty_ns(rob_occupancy=CoreConfig().rob_entries)

    def test_ideal_core_has_zero_flush_penalty(self):
        core = CoreModel(0, CoreConfig(flush_cycles_per_rob_entry=0.0))
        assert core.flush_penalty_ns(rob_occupancy=128) == 0.0

    def test_miss_signal_links_back_to_instruction(self):
        core = CoreModel(0, CoreConfig())
        core.send_request(page=10, rob_seq=3)
        core.send_request(page=20, rob_seq=4)
        assert core.receive_miss_signal(20) == 4
        core.receive_data(10)
        assert len(core.mshrs) == 0

    def test_miss_signal_without_request_raises(self):
        core = CoreModel(0, CoreConfig())
        with pytest.raises(ProtocolError):
            core.receive_miss_signal(99)
