"""Per-core user-level threading library (Sec. IV-D).

`ThreadLibrary` owns the bounded pool of worker-thread contexts for one
core, the scheduler, and the handler-address installation handshake
with the core's miss-handling registers.  It is the software half of
the switch-on-miss co-design; the core loop in
:mod:`repro.core.runner` drives it.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.config.system import UltConfig
from repro.cpu.core import MissHandlingRegisters
from repro.errors import ConfigurationError
from repro.stats import CounterSet
from repro.ult.scheduler import UltScheduler, make_scheduler
from repro.ult.thread import ThreadState, UserThread

# Virtual address where the scheduler's miss handler is linked; any
# nonzero value works for the model, the OS validates it on install.
SCHEDULER_HANDLER_VA = 0x7F00_0000


class ThreadLibrary:
    """Thread pool + scheduler for one physical core."""

    def __init__(self, core_id: int, config: UltConfig,
                 registers: Optional[MissHandlingRegisters] = None) -> None:
        if config.threads_per_core < 1:
            raise ConfigurationError("need at least one worker thread")
        self.core_id = core_id
        self.config = config
        self.scheduler: UltScheduler = make_scheduler(config)
        self._threads: List[UserThread] = [
            UserThread(tid, core_id) for tid in range(config.threads_per_core)
        ]
        self._free: List[UserThread] = list(self._threads)
        self.stats = CounterSet(f"ult{core_id}")
        if registers is not None:
            self.install_handler(registers)

    # -- handler installation (Sec. IV-C2) --------------------------------------

    def install_handler(self, registers: MissHandlingRegisters) -> None:
        """System call: validate and install the scheduler handler
        address into the privileged register."""
        registers.install_handler(SCHEDULER_HANDLER_VA, privileged=True)
        self.stats.add("handler_installs")

    # -- job admission -------------------------------------------------------------

    @property
    def free_contexts(self) -> int:
        return len(self._free)

    @property
    def in_flight(self) -> int:
        return len(self._threads) - len(self._free)

    def can_admit(self) -> bool:
        return bool(self._free)

    def admit(self, job: Any, now: float) -> UserThread:
        """Bind a job from the global queue to a free context."""
        if not self._free:
            raise ConfigurationError("no free thread contexts")
        thread = self._free.pop()
        thread.bind(job, now)
        self.scheduler.add_new(thread)
        self.stats.add("admitted")
        return thread

    # -- lifecycle events -------------------------------------------------------------

    def on_miss(self, thread: UserThread, page: int, now: float) -> None:
        """Running thread halted by a miss signal: park it pending."""
        thread.halt_on_miss(page, now)
        self.scheduler.add_pending(thread)
        self.scheduler.note_miss()
        self.stats.add("miss_halts")

    def on_data_ready(self, thread: UserThread, now: float) -> None:
        """Queue-pair notification: the thread's page arrived."""
        if thread.state is ThreadState.PENDING:
            thread.data_arrived(now)
            self.stats.add("data_notifications")

    def on_finish(self, thread: UserThread) -> Any:
        """Job ran to completion: recycle the context."""
        job = thread.finish()
        self._free.append(thread)
        self.stats.add("completed")
        return job

    # -- dispatch -------------------------------------------------------------

    def pick_next(self, now: float, avg_flash_response_ns: float
                  ) -> Optional[UserThread]:
        thread = self.scheduler.pick_next(now, avg_flash_response_ns)
        if thread is not None:
            self.stats.add("dispatches")
        return thread

    @property
    def switch_latency_ns(self) -> float:
        return self.config.switch_latency_ns
