"""Figure 10: 99th-percentile tail latency vs load (TATP).

Open-loop Poisson arrivals; the paper sweeps the mean inter-arrival
time and plots p99 response latency (normalized to the DRAM-only
average service time) against achieved throughput (normalized to the
DRAM-only maximum).  Shape: AstriFlash's p99 is higher at low load
(requests that touch flash), converges as queueing dominates, and
matches the DRAM-only tail at only a few percent lower load.

The saturation run pins the axis normalizations; after it, every
(load, config) point is independent and fans out through
:mod:`repro.harness.parallel`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.common import ExperimentResult, resolve_scale
from repro.harness.parallel import RunSpec, poisson, run_spec, run_specs

LOAD_POINTS: Sequence[float] = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.98)

#: Config presets this figure compares (also drives ``repro loadgen``
#: and the flash-backed subset drives ``repro chaos``).
CONFIGS: Sequence[str] = ("dram-only", "astriflash")


def run(scale="quick", seed: int = 42, workload_name: str = "tatp",
        load_points: Sequence[float] = LOAD_POINTS,
        jobs: Optional[int] = None,
        snapshots: Optional[bool] = None,
        snapshot_dir=None) -> ExperimentResult:
    """Regenerate Figure 10's two curves."""
    scale = resolve_scale(scale)
    # DRAM-only saturation throughput defines the x-axis normalization;
    # its mean service time defines the y-axis normalization.
    saturation = run_spec(
        RunSpec("dram-only", workload_name, scale, seed=seed), jobs=jobs,
        snapshots=snapshots, snapshot_dir=snapshot_dir,
    )
    max_rate = saturation.throughput_jobs_per_s
    service_norm = saturation.service_mean_ns

    result = ExperimentResult(
        experiment="fig10",
        title=(f"Fig. 10: p99 latency (x DRAM-only avg service) vs load "
               f"({workload_name})"),
        columns=["offered_load", "dram_only_tput", "dram_only_p99",
                 "astriflash_tput", "astriflash_p99"],
        notes=("Paper: AstriFlash at ~93% load matches the DRAM-only "
               "p99 at ~96% load."),
    )
    points = [(load, config_name)
              for load in load_points
              for config_name in CONFIGS]

    def load_arrivals(load: float):
        # Offered load is an *aggregate* fraction of the DRAM-only
        # saturation rate; each core runs its own arrival stream, so
        # the per-core mean gap is num_cores / aggregate_rate (the
        # convention documented in repro.workloads.arrival).
        aggregate_qps = load * max_rate
        per_core_interarrival_ns = scale.num_cores / aggregate_qps * 1e9
        return poisson(per_core_interarrival_ns, seed=seed + 1)

    specs = [
        RunSpec(config_name, workload_name, scale, seed=seed,
                arrivals=load_arrivals(load))
        for load, config_name in points
    ]
    outcomes = dict(zip(points, run_specs(specs, jobs=jobs,
                                          snapshots=snapshots,
                                          snapshot_dir=snapshot_dir)))
    for load in load_points:
        row = [load]
        for config_name in CONFIGS:
            outcome = outcomes[(load, config_name)]
            row.append(outcome.throughput_jobs_per_s / max_rate)
            row.append(outcome.response_p99_ns / service_norm)
        result.add_row(*row)
    return result
