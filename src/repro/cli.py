"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments``                 — list the regenerable paper artifacts
* ``run <experiment> [--scale]``  — regenerate one figure/table
* ``run-all [--scale]``           — regenerate everything
* ``trace-run <experiment>``      — traced run -> Chrome trace JSON
* ``report [--telemetry]``        — full report (+ tail attribution)
* ``bench-sweep``                 — sweep wall time, snapshots off vs on
* ``bench-kernel``                — batch-execution kernel, scalar vs vector
* ``chaos <experiment>``          — fault-injection degradation curves
* ``writes [exp]``                — admission-policy WA/lifetime sweeps
* ``loadgen <experiment>``        — QPS sweeps and SLO knee curves
* ``cache clean``                 — wipe or LRU-prune ``.repro_cache/``
* ``simulate``                    — one ad-hoc simulation run
* ``workloads`` / ``configs``     — list registries
* ``history``                     — list/filter the run ledger
* ``diff <A> <B>``                — per-metric deltas between two runs
* ``regress --baseline FILE``     — pass/fail gate for CI
* ``dashboard``                   — static HTML observatory page

Sweep commands accept ``--no-snapshot`` / ``--snapshot-dir PATH`` to
control warm-state snapshot reuse (default: on, under the result-cache
directory); the flags set the ``REPRO_SNAPSHOT`` / ``REPRO_SNAPSHOT_DIR``
environment the harness reads.

Every measuring verb (``report``, ``profile``, ``bench-kernel``,
``bench-sweep``, ``chaos``, ``writes``, ``loadgen``, ``simulate``)
appends a
:class:`repro.metrics.RunRecord` to ``.repro_runs/ledger.jsonl``
(``$REPRO_RUNS_DIR`` overrides the directory, ``REPRO_LEDGER=0``
disables); appends are best-effort and never fail the verb.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.config import EVALUATED_CONFIG_NAMES, make_config
from repro.jsonutil import dumps as json_dumps
from repro.core import Runner
from repro.harness import EXPERIMENTS, run_experiment
from repro.units import US
from repro.workloads import (
    EVALUATED_WORKLOADS,
    PoissonArrivals,
    make_workload,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AstriFlash (HPCA 2023) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("experiments",
                        help="list regenerable paper artifacts")
    commands.add_parser("workloads", help="list workloads")
    commands.add_parser("configs", help="list system configurations")

    jobs_help = ("worker processes for independent simulations "
                 "(default: $REPRO_JOBS or 1 = in-process)")

    def add_snapshot_flags(sub) -> None:
        sub.add_argument("--no-snapshot", action="store_true",
                         help="disable warm-state snapshot reuse "
                              "(rebuild datasets and re-warm caches "
                              "for every run)")
        sub.add_argument("--snapshot-dir", default=None, metavar="PATH",
                         help="snapshot directory (default: "
                              "$REPRO_SNAPSHOT_DIR or "
                              ".repro_cache/snapshots)")

    run_parser = commands.add_parser("run", help="regenerate one artifact")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", default="quick",
                            choices=("quick", "full"))
    run_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)
    add_snapshot_flags(run_parser)

    all_parser = commands.add_parser("run-all",
                                     help="regenerate every artifact")
    all_parser.add_argument("--scale", default="quick",
                            choices=("quick", "full"))
    all_parser.add_argument("--jobs", type=int, default=None, help=jobs_help)
    add_snapshot_flags(all_parser)

    report_parser = commands.add_parser(
        "report", help="regenerate everything into a report file "
                       "(tables + ASCII charts)")
    report_parser.add_argument("--scale", default="quick",
                               choices=("quick", "full"))
    report_parser.add_argument("--out", default="repro_report.txt")
    report_parser.add_argument("--jobs", type=int, default=None,
                               help=jobs_help)
    report_parser.add_argument("--telemetry", action="store_true",
                               help="also run traced simulations and "
                                    "append the tail-latency attribution "
                                    "(Table-2-style component breakdown)")
    report_parser.add_argument("--writes", action="store_true",
                               help="also run the write-path sweep and "
                                    "append the WA/lifetime panel "
                                    "(admission policies x write ratio)")
    add_snapshot_flags(report_parser)

    trace_parser = commands.add_parser(
        "trace-run", help="regenerate one artifact with request-lifecycle "
                          "tracing; writes Chrome trace-event JSON for "
                          "Perfetto / chrome://tracing")
    trace_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    trace_parser.add_argument("--scale", default="quick",
                              choices=("quick", "full"))
    trace_parser.add_argument("--out", default="trace.json",
                              help="Chrome trace-event JSON output path")
    trace_parser.add_argument("--sample", type=int, default=1,
                              help="trace one request in N (default 1 = "
                                   "every request)")
    trace_parser.add_argument("--telemetry-out", default=None,
                              metavar="CSV",
                              help="also write the time-series telemetry "
                                   "(MSR/queues/busy) as CSV")
    trace_parser.add_argument("--telemetry-interval-us", type=float,
                              default=5.0,
                              help="telemetry sampling period in "
                                   "simulated us (0 disables; default 5)")

    profile_parser = commands.add_parser(
        "profile", help="regenerate one artifact under cProfile and "
                        "report hotspots + kernel events/sec")
    profile_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    profile_parser.add_argument("--scale", default="quick",
                                choices=("quick", "full"))
    profile_parser.add_argument("--top", type=int, default=15,
                                help="hotspot rows to report (default 15)")
    profile_parser.add_argument("--json", dest="json_out", default=None,
                                metavar="PATH",
                                help="also write the report as JSON")
    profile_parser.add_argument("--backend", default=None,
                                choices=("scalar", "vector"),
                                help="execution backend for the profiled "
                                     "runs (default: $REPRO_BACKEND or "
                                     "scalar)")

    kernel_parser = commands.add_parser(
        "bench-kernel", help="time the batch-execution kernel per "
                             "backend (scalar vs vector; writes "
                             "BENCH_kernel.json for CI)")
    kernel_parser.add_argument("--scale", default="quick",
                               choices=("quick", "full"))
    kernel_parser.add_argument("--backend", default=None,
                               choices=("scalar", "vector"),
                               help="bench a single backend (default: "
                                    "both, with bit-identity check)")
    kernel_parser.add_argument("--compare", action="store_true",
                               help="bench both backends and print the "
                                    "vector/scalar speedup ratio "
                                    "(the default when --backend is "
                                    "not given)")
    kernel_parser.add_argument("--repeat", type=int, default=3,
                               help="timed runs per backend; the best "
                                    "wall is reported (default 3)")
    kernel_parser.add_argument("--shape", action="append", default=None,
                               choices=("fused", "flash-sync",
                                        "open-loop", "multi-core"),
                               help="bench only this run shape (repeat "
                                    "the flag for several; default: all "
                                    "four shapes)")
    kernel_parser.add_argument("--json", dest="json_out", default=None,
                               metavar="PATH",
                               help="also write the bench as JSON "
                                    "(e.g. BENCH_kernel.json for CI)")

    sweep_parser = commands.add_parser(
        "bench-sweep", help="time one sweep with snapshots off vs on "
                            "(the harness-level bench series; writes "
                            "BENCH_sweep.json for CI)")
    sweep_parser.add_argument("experiment", nargs="?", default="fig1",
                              choices=sorted(EXPERIMENTS))
    sweep_parser.add_argument("--scale", default="quick",
                              choices=("quick", "full"))
    sweep_parser.add_argument("--json", dest="json_out", default=None,
                              metavar="PATH",
                              help="also write the bench as JSON "
                                   "(e.g. BENCH_sweep.json for CI)")

    chaos_parser = commands.add_parser(
        "chaos", help="sweep injected flash fault rates (RBER) and "
                      "report throughput/p99 degradation curves per "
                      "preset; writes BENCH_chaos.json for CI")
    chaos_parser.add_argument("experiment", nargs="?", default="fig9",
                              choices=sorted(EXPERIMENTS))
    chaos_parser.add_argument("--scale", default="quick",
                              choices=("quick", "full"))
    chaos_parser.add_argument("--rber-sweep", default=None,
                              metavar="P0,P1,...",
                              help="comma-separated RBER sweep points "
                                   "(default 0,2e-3,4e-3,8e-3; 0 = "
                                   "faults-disabled baseline)")
    chaos_parser.add_argument("--workload", default=None,
                              choices=EVALUATED_WORKLOADS,
                              help="workload to sweep (default: tatp "
                                   "when the scale includes it)")
    chaos_parser.add_argument("--fault-seed", type=int, default=0xF1A5,
                              help="fault-plan RNG seed (fixed seed => "
                                   "identical curves)")
    chaos_parser.add_argument("--jobs", type=int, default=None,
                              help=jobs_help)
    chaos_parser.add_argument("--backend", default=None,
                              choices=("scalar", "vector"),
                              help="execution backend for the sweep "
                                   "(default: $REPRO_BACKEND or vector; "
                                   "unsupported cells fall back to "
                                   "scalar, bit-identically)")
    chaos_parser.add_argument("--json", dest="json_out", default=None,
                              metavar="PATH",
                              help="also write the curves as JSON "
                                   "(e.g. BENCH_chaos.json for CI)")
    add_snapshot_flags(chaos_parser)

    writes_parser = commands.add_parser(
        "writes", help="sweep DRAM->flash admission policies and KV "
                       "SET ratios over the write-enabled presets; "
                       "reports write amplification and P/E lifetime "
                       "per policy; writes BENCH_writes.json for CI")
    writes_parser.add_argument("experiment", nargs="?", default="kv",
                               help="experiment tag recorded in the "
                                    "bench payload (default: kv)")
    writes_parser.add_argument("--scale", default="quick",
                               choices=("quick", "full"))
    writes_parser.add_argument("--write-ratio-sweep", default=None,
                               metavar="R0,R1,...",
                               help="comma-separated SET ratios in "
                                    "(0, 1] (default 0.5)")
    writes_parser.add_argument("--policies", default=None,
                               metavar="P0,P1,...",
                               help="admission policies to sweep "
                                    "(subset of write-through,"
                                    "write-back,readiness; default all "
                                    "three)")
    writes_parser.add_argument("--presets", default=None,
                               metavar="C0,C1,...",
                               help="write-enabled config presets to "
                                    "sweep (default astriflash-writes,"
                                    "flash-sync-writes)")
    writes_parser.add_argument("--seed", type=int, default=42)
    writes_parser.add_argument("--jobs", type=int, default=None,
                               help=jobs_help)
    writes_parser.add_argument("--backend", default=None,
                               choices=("scalar", "vector"),
                               help="execution backend for the sweep "
                                    "(write-enabled cells always fall "
                                    "back to scalar, recorded under "
                                    "the 'writes' fallback reason)")
    writes_parser.add_argument("--json", dest="json_out", nargs="?",
                               const="BENCH_writes.json", default=None,
                               metavar="PATH",
                               help="also write the sweep as JSON "
                                    "(bare flag: BENCH_writes.json)")
    add_snapshot_flags(writes_parser)

    loadgen_parser = commands.add_parser(
        "loadgen", help="sweep offered load (QPS) per config preset "
                        "and report latency-vs-load knee curves with "
                        "sustained-QPS-under-SLO; writes "
                        "BENCH_loadgen.json for CI")
    loadgen_parser.add_argument("experiment", nargs="?", default="fig10",
                                choices=sorted(EXPERIMENTS))
    loadgen_parser.add_argument("--scale", default="quick",
                                choices=("quick", "full"))
    loadgen_parser.add_argument("--qps-sweep", nargs="?",
                                const=None, default=None,
                                metavar="LO:HI:N",
                                help="offered-load grid; endpoints with "
                                     "an 'x' suffix are fractions of the "
                                     "DRAM-only saturation throughput "
                                     "(default 0.3x:0.95x:5)")
    loadgen_parser.add_argument("--slo-us", type=float, default=None,
                                help="p99 response-latency SLO in us "
                                     "(default: 40x the DRAM-only mean "
                                     "service time)")
    loadgen_parser.add_argument("--workload", default=None,
                                choices=EVALUATED_WORKLOADS,
                                help="workload to sweep (default: tatp "
                                     "when the scale includes it)")
    loadgen_parser.add_argument("--arrival", default="poisson",
                                choices=("poisson", "mmpp", "diurnal"),
                                help="arrival process shape (aggregate "
                                     "rate; converted to per-core "
                                     "streams internally)")
    loadgen_parser.add_argument("--rber", type=float, default=0.0,
                                help="also inject flash faults at this "
                                     "RBER on flash-backed presets "
                                     "(composes with `repro chaos` "
                                     "semantics; default 0 = clean)")
    loadgen_parser.add_argument("--fault-seed", type=int, default=0xF1A5,
                                help="fault-plan RNG seed (fixed seed "
                                     "=> identical curves)")
    loadgen_parser.add_argument("--backlog-threshold", type=float,
                                default=0.05, metavar="FRAC",
                                help="censor cells whose unfinished-job "
                                     "backlog exceeds this fraction of "
                                     "offered requests (default 0.05)")
    loadgen_parser.add_argument("--refine-evals", type=int, default=4,
                                help="extra bisection simulations per "
                                     "preset to sharpen the knee "
                                     "(0 = grid-only; default 4)")
    loadgen_parser.add_argument("--seed", type=int, default=42)
    loadgen_parser.add_argument("--jobs", type=int, default=None,
                                help=jobs_help)
    loadgen_parser.add_argument("--backend", default=None,
                                choices=("scalar", "vector"),
                                help="execution backend for the sweep "
                                     "(default: $REPRO_BACKEND or "
                                     "vector; unsupported cells fall "
                                     "back to scalar, bit-identically)")
    loadgen_parser.add_argument("--json", dest="json_out", nargs="?",
                                const="BENCH_loadgen.json", default=None,
                                metavar="PATH",
                                help="also write the knee curves as "
                                     "JSON (bare flag: "
                                     "BENCH_loadgen.json)")
    add_snapshot_flags(loadgen_parser)

    cache_parser = commands.add_parser(
        "cache", help="manage the result/snapshot cache directory")
    cache_commands = cache_parser.add_subparsers(dest="cache_command",
                                                 required=True)
    clean_parser = cache_commands.add_parser(
        "clean", help="delete cached results and snapshots (all of "
                      "them, or LRU-prune to a byte cap)")
    clean_parser.add_argument("--max-bytes", type=int, default=None,
                              metavar="N",
                              help="keep the most recently used entries "
                                   "up to N bytes instead of deleting "
                                   "everything")
    clean_parser.add_argument("--dir", dest="cache_dir", default=None,
                              metavar="PATH",
                              help="cache directory (default: "
                                   "$REPRO_CACHE_DIR or .repro_cache)")

    sim_parser = commands.add_parser("simulate", help="one ad-hoc run")
    sim_parser.add_argument("--config", default="astriflash",
                            choices=EVALUATED_CONFIG_NAMES)
    sim_parser.add_argument("--workload", default="tatp",
                            choices=EVALUATED_WORKLOADS)
    sim_parser.add_argument("--cores", type=int, default=2)
    sim_parser.add_argument("--dataset-pages", type=int, default=8192)
    sim_parser.add_argument("--zipf", type=float, default=1.7)
    sim_parser.add_argument("--measurement-us", type=float, default=3000.0)
    sim_parser.add_argument("--interarrival-us", type=float, default=None,
                            help="open-loop Poisson arrivals with this "
                                 "*aggregate* mean inter-arrival time "
                                 "(machine-wide; converted to per-core "
                                 "streams internally; default: closed "
                                 "loop)")
    sim_parser.add_argument("--seed", type=int, default=42)
    sim_parser.add_argument("--backend", default=None,
                            choices=("scalar", "vector"),
                            help="execution backend (default: "
                                 "$REPRO_BACKEND or scalar)")

    ledger_help = ("ledger file (default: $REPRO_RUNS_DIR/ledger.jsonl "
                   "or .repro_runs/ledger.jsonl)")

    history_parser = commands.add_parser(
        "history", help="list the run ledger (every measuring verb "
                        "appends one record per invocation)")
    history_parser.add_argument("--verb", default="",
                                help="filter by CLI verb")
    history_parser.add_argument("--experiment", default="",
                                help="filter by experiment")
    history_parser.add_argument("--preset", default="",
                                help="filter by config preset")
    history_parser.add_argument("--workload", default="",
                                help="filter by workload")
    history_parser.add_argument("--backend", default="",
                                help="filter by backend")
    history_parser.add_argument("--last", type=int, default=None,
                                metavar="N",
                                help="show only the newest N records")
    history_parser.add_argument("--ledger", default=None, metavar="PATH",
                                help=ledger_help)
    history_parser.add_argument("--json", dest="json_out",
                                action="store_true",
                                help="emit the records as JSON")

    diff_parser = commands.add_parser(
        "diff", help="per-metric deltas between two runs (ledger "
                     "index, record-id prefix, or bench JSON path)")
    diff_parser.add_argument("baseline",
                             help="baseline run: ledger index (-1 = "
                                  "newest), record-id prefix, or JSON "
                                  "file")
    diff_parser.add_argument("current", help="current run (same forms)")
    diff_parser.add_argument("--threshold", type=float, default=None,
                             metavar="FRAC",
                             help="relative-change noise threshold "
                                  "(default 0.05)")
    diff_parser.add_argument("--all", dest="show_all",
                             action="store_true",
                             help="also list within-noise metrics")
    diff_parser.add_argument("--ledger", default=None, metavar="PATH",
                             help=ledger_help)
    diff_parser.add_argument("--json", dest="json_out",
                             action="store_true",
                             help="emit the diff as JSON")

    regress_parser = commands.add_parser(
        "regress", help="machine-readable pass/fail against a committed "
                        "baseline (exit 0 pass, 1 regression, 2 error)")
    regress_parser.add_argument("--baseline", required=True,
                                metavar="PATH",
                                help="baseline file: a ledger-record "
                                     "dump or any BENCH_*/PROFILE_* "
                                     "JSON (policies ride along)")
    regress_parser.add_argument("--current", default=None, metavar="PATH",
                                help="run to gate (default: the newest "
                                     "ledger record matching the "
                                     "baseline's verb)")
    regress_parser.add_argument("--threshold", type=float, default=None,
                                metavar="FRAC",
                                help="relative-change noise threshold "
                                     "(default 0.05)")
    regress_parser.add_argument("--ledger", default=None, metavar="PATH",
                                help=ledger_help)
    regress_parser.add_argument("--json", dest="json_out", default=None,
                                metavar="PATH",
                                help="also write the verdict as JSON")

    dash_parser = commands.add_parser(
        "dashboard", help="render the ledger + BENCH_*.json files as a "
                          "self-contained static HTML page (inline SVG, "
                          "no external dependencies)")
    dash_parser.add_argument("--out", default="report.html",
                             help="output HTML path (default "
                                  "report.html)")
    dash_parser.add_argument("--ledger", default=None, metavar="PATH",
                             help=ledger_help)
    dash_parser.add_argument("--bench", nargs="*", default=None,
                             metavar="PATH",
                             help="bench JSON files to render (default: "
                                  "scan the working directory for "
                                  "BENCH_*.json / PROFILE_*.json)")
    return parser


def _apply_snapshot_flags(args: argparse.Namespace) -> None:
    """Translate --no-snapshot/--snapshot-dir into the environment the
    harness (and its worker processes) reads."""
    if getattr(args, "no_snapshot", False):
        os.environ["REPRO_SNAPSHOT"] = "0"
    if getattr(args, "snapshot_dir", None):
        os.environ["REPRO_SNAPSHOT_DIR"] = args.snapshot_dir


def _append_ledger(verb: str, **fields) -> None:
    """Best-effort run-ledger append: the ledger is observability, so
    an IO failure (read-only checkout, full disk) warns and moves on
    instead of failing the verb that did the real work."""
    try:
        from repro.metrics import append_record, ledger_enabled, make_record

        if not ledger_enabled():
            return
        append_record(make_record(verb, **fields))
    except Exception as exc:  # noqa: BLE001 - deliberately broad
        print(f"ledger: append failed ({exc})", file=sys.stderr)


def _warn_vector_fallback(requested, fallbacks: int,
                          reasons=None) -> None:
    """One-line stderr warning when a requested ``--backend vector``
    run silently fell back to the scalar engine."""
    from repro.sim.vector import resolve_backend

    if resolve_backend(requested) != "vector" or fallbacks <= 0:
        return
    if reasons:
        detail = "; ".join(f"{reason} x{count}" for reason, count
                           in sorted(dict(reasons).items()))
    else:
        from repro.sim.vector import last_fallback_reason
        detail = last_fallback_reason() or "unsupported run shape"
    print(f"warning: vector backend fell back to scalar for "
          f"{fallbacks} run(s): {detail}", file=sys.stderr)


def cmd_experiments() -> int:
    for name in EXPERIMENTS:
        print(name)
    return 0


def cmd_workloads() -> int:
    for name in EVALUATED_WORKLOADS:
        print(name)
    return 0


def cmd_configs() -> int:
    for name in EVALUATED_CONFIG_NAMES:
        print(name)
    return 0


def cmd_run(experiment: str, scale: str, jobs: Optional[int]) -> int:
    result = run_experiment(experiment, scale=scale, jobs=jobs)
    print(result.format_table())
    return 0


def cmd_run_all(scale: str, jobs: Optional[int]) -> int:
    for name in EXPERIMENTS:
        print(run_experiment(name, scale=scale, jobs=jobs).format_table())
        print()
    return 0


def cmd_report(scale: str, out: str, jobs: Optional[int],
               telemetry: bool = False, writes: bool = False) -> int:
    import time

    from repro.harness.report import generate
    from repro.sim.engine import total_events_executed

    events_before = total_events_executed()
    wall_start = time.perf_counter()
    results = generate(
        EXPERIMENTS, scale=scale, jobs=jobs, out=out,
        header=(f"AstriFlash reproduction report (scale={scale}) — "
                "every paper table/figure regenerated"),
    )
    wall_seconds = time.perf_counter() - wall_start
    events = total_events_executed() - events_before
    print(f"wrote {out}")
    from repro.metrics import metrics_from_experiments

    metrics, fingerprint = metrics_from_experiments(results)
    _append_ledger(
        "report", experiment=",".join(EXPERIMENTS), scale=scale,
        metrics=metrics, fingerprint=fingerprint,
        wall_seconds=wall_seconds,
        events_per_second=(events / wall_seconds
                           if events and wall_seconds > 0 else 0.0),
        artifacts=[out],
    )
    if telemetry:
        breakdown = _telemetry_breakdown(scale)
        print()
        print(breakdown)
        with open(out, "a", encoding="utf-8") as handle:
            handle.write("\nTail-latency attribution "
                         "(traced, sampled requests)\n")
            handle.write("-" * 58 + "\n")
            handle.write(breakdown + "\n")
    if writes:
        from repro.writes import run_writes

        panel = run_writes(scale=scale, jobs=jobs).format_text()
        print()
        print(panel)
        with open(out, "a", encoding="utf-8") as handle:
            handle.write("\nWrite path: WA and lifetime per "
                         "admission policy\n")
            handle.write("-" * 58 + "\n")
            handle.write(panel + "\n")
    return 0


def _telemetry_breakdown(scale: str) -> str:
    """Traced runs of the paper's headline designs -> Table-2-style
    per-percentile component breakdown."""
    from repro.harness.parallel import RunSpec
    from repro.obs import attribute, format_attribution, trace_specs

    specs = [
        RunSpec("astriflash", "tatp", scale),
        RunSpec("flash-sync", "tatp", scale),
        RunSpec("os-swap", "tatp", scale),
    ]
    tracer, _ = trace_specs(specs)
    return format_attribution(attribute(tracer.completed))


def cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.obs import (
        Tracer,
        attribute,
        format_attribution,
        trace_experiment,
        validate_chrome_trace,
        write_chrome_trace,
        write_telemetry_csv,
    )

    if args.sample < 1:
        print("trace-run: --sample must be >= 1", file=sys.stderr)
        return 2
    tracer = Tracer(
        sample_every=args.sample,
        telemetry_interval_ns=args.telemetry_interval_us * US,
    )
    tracer, result = trace_experiment(args.experiment, scale=args.scale,
                                      tracer=tracer)
    print(result.format_table())
    print()
    document = write_chrome_trace(tracer, args.out)
    summary = tracer.summary()
    print(f"trace: {args.out} ({len(document['traceEvents'])} events, "
          f"{summary['requests_traced']} of {summary['requests_seen']} "
          f"requests traced, {summary['dropped_events']} dropped)")
    if args.telemetry_out is not None:
        write_telemetry_csv(tracer.telemetry_rows, args.telemetry_out)
        print(f"telemetry: {args.telemetry_out} "
              f"({summary['telemetry_samples']} samples)")
    print()
    print(format_attribution(attribute(tracer.completed)))
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems[:10]:
            print(f"trace validation: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_profile(experiment: str, scale: str, top: int,
                json_out: Optional[str],
                backend: Optional[str] = None) -> int:
    from repro.perf import profile_experiment

    report = profile_experiment(experiment, scale=scale, top=top,
                                backend=backend)
    print(report.format_text())
    if json_out is not None:
        report.write_json(json_out)
        print(f"wrote {json_out}")
    _warn_vector_fallback(report.backend, report.scalar_fallbacks,
                          report.fallback_reasons)
    _append_ledger(
        "profile", experiment=experiment, scale=scale,
        preset=report.config_preset, backend=report.backend,
        metrics=report.key_metrics(),
        wall_seconds=report.wall_seconds,
        events_per_second=report.events_per_second,
        artifacts=[json_out] if json_out else [],
    )
    return 0


def cmd_bench_kernel(args: argparse.Namespace) -> int:
    from repro.perf import bench_kernel

    if args.backend is not None and not args.compare:
        backends = (args.backend,)
    else:
        backends = ("scalar", "vector")
    bench = bench_kernel(scale=args.scale, backends=backends,
                         repeat=args.repeat,
                         shapes=tuple(args.shape) if args.shape else None)
    print(bench.format_text())
    if args.json_out is not None:
        bench.write_json(args.json_out)
        print(f"wrote {args.json_out}")
    for shape in bench.shapes:
        for entry in shape.entries:
            if entry.backend == "vector":
                _warn_vector_fallback(
                    "vector",
                    entry.vector_stats.get("scalar_fallbacks", 0),
                    entry.fallback_reasons)
    fingerprint = bench.entries[0].state_fingerprint \
        if bench.entries else ""
    _append_ledger(
        "bench-kernel", scale=bench.scale, preset=bench.config_preset,
        workload=bench.workload,
        backend=",".join(entry.backend for entry in bench.entries),
        metrics=bench.key_metrics(), fingerprint=fingerprint,
        wall_seconds=sum(entry.wall_seconds for entry in bench.entries),
        events_per_second=(bench.entries[-1].events_per_second
                           if bench.entries else 0.0),
        artifacts=[args.json_out] if args.json_out else [],
    )
    if bench.bit_identical is False:
        print("bench-kernel: backends DIVERGED (fingerprints or "
              "deterministic results differ)", file=sys.stderr)
        return 1
    return 0


def cmd_bench_sweep(experiment: str, scale: str,
                    json_out: Optional[str]) -> int:
    from repro.perf import bench_sweep

    bench = bench_sweep(experiment, scale=scale)
    print(bench.format_text())
    if json_out is not None:
        bench.write_json(json_out)
        print(f"wrote {json_out}")
    _append_ledger(
        "bench-sweep", experiment=experiment, scale=scale,
        preset=bench.config_preset, metrics=bench.key_metrics(),
        wall_seconds=bench.wall_seconds_snapshots_off
        + bench.wall_seconds_snapshots_cold
        + bench.wall_seconds_snapshots_on,
        artifacts=[json_out] if json_out else [],
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import parse_rber_sweep, run_chaos

    rber_points = None
    if args.rber_sweep is not None:
        rber_points = parse_rber_sweep(args.rber_sweep)
    bench = run_chaos(
        args.experiment, scale=args.scale, rber_points=rber_points,
        fault_seed=args.fault_seed, workload=args.workload,
        jobs=args.jobs, backend=args.backend,
    )
    print(bench.format_text())
    if args.json_out is not None:
        bench.write_json(args.json_out)
        print(f"wrote {args.json_out}")
    if bench.execution.get("backend") == "vector":
        _warn_vector_fallback("vector",
                              bench.execution.get("scalar_cells", 0),
                              bench.execution.get("fallback_reasons"))
    _append_ledger(
        "chaos", experiment=args.experiment, scale=bench.scale,
        preset=bench.config_preset, workload=bench.workload,
        backend=bench.execution.get("backend", ""),
        seed=args.fault_seed, metrics=bench.key_metrics(),
        fingerprint=bench.fingerprint(),
        artifacts=[args.json_out] if args.json_out else [],
    )
    return 0


def cmd_writes(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.writes import parse_write_ratio_sweep, run_writes

    try:
        write_ratios = None
        if args.write_ratio_sweep is not None:
            write_ratios = parse_write_ratio_sweep(args.write_ratio_sweep)
        policies = None
        if args.policies is not None:
            policies = tuple(part.strip()
                             for part in args.policies.split(",")
                             if part.strip())
        presets = None
        if args.presets is not None:
            presets = tuple(part.strip()
                            for part in args.presets.split(",")
                            if part.strip())
        bench = run_writes(
            args.experiment, scale=args.scale, write_ratios=write_ratios,
            policies=policies, presets=presets, seed=args.seed,
            jobs=args.jobs, backend=args.backend,
        )
    except ReproError as exc:
        print(f"writes: {exc}", file=sys.stderr)
        return 2
    print(bench.format_text())
    if args.json_out is not None:
        bench.write_json(args.json_out)
        print(f"wrote {args.json_out}")
    if bench.execution.get("backend") == "vector":
        _warn_vector_fallback("vector",
                              bench.execution.get("scalar_cells", 0),
                              bench.execution.get("fallback_reasons"))
    _append_ledger(
        "writes", experiment=args.experiment, scale=bench.scale,
        preset=bench.config_preset, workload=bench.workload,
        backend=bench.execution.get("backend", ""),
        seed=bench.seed, metrics=bench.key_metrics(),
        fingerprint=bench.fingerprint(),
        artifacts=[args.json_out] if args.json_out else [],
    )
    if not bench.policy_order_ok:
        print("writes: admission-policy WA ordering violated "
              "(expected write-through >= write-back >= readiness on "
              "flash_writes_per_app_write)", file=sys.stderr)
        return 1
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.loadgen import run_loadgen

    bench = run_loadgen(
        args.experiment, scale=args.scale, qps_sweep=args.qps_sweep,
        slo_us=args.slo_us, workload=args.workload,
        arrival=args.arrival, rber=args.rber,
        fault_seed=args.fault_seed, seed=args.seed,
        backlog_threshold=args.backlog_threshold,
        refine_evals=args.refine_evals, jobs=args.jobs,
        backend=args.backend,
    )
    print(bench.format_text())
    if args.json_out is not None:
        bench.write_json(args.json_out)
        print(f"wrote {args.json_out}")
    if bench.execution.get("backend") == "vector":
        _warn_vector_fallback("vector",
                              bench.execution.get("scalar_cells", 0),
                              bench.execution.get("fallback_reasons"))
    _append_ledger(
        "loadgen", experiment=args.experiment, scale=bench.scale,
        preset=bench.config_preset, workload=bench.workload,
        backend=bench.execution.get("backend", ""),
        seed=bench.seed, metrics=bench.key_metrics(),
        fingerprint=bench.fingerprint(),
        artifacts=[args.json_out] if args.json_out else [],
    )
    return 0


def cmd_cache_clean(max_bytes: Optional[int],
                    cache_dir: Optional[str]) -> int:
    from pathlib import Path

    from repro.harness.parallel import default_cache_dir
    from repro.snapshot import clear_cache, prune_cache

    directory = Path(cache_dir) if cache_dir else default_cache_dir()
    if not directory.is_dir():
        print(f"cache: {directory} does not exist; nothing to clean")
        return 0
    if max_bytes is None:
        files, freed = clear_cache(directory)
        print(f"cache: removed {files} files ({freed:,} bytes) "
              f"from {directory}")
    else:
        files, freed = prune_cache(directory, max_bytes=max_bytes)
        print(f"cache: pruned {files} LRU files ({freed:,} bytes) from "
              f"{directory}; capped at {max_bytes:,} bytes")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = make_config(args.config)
    config.num_cores = args.cores
    config.scale.dataset_pages = args.dataset_pages
    config.scale.measurement_ns = args.measurement_us * US
    workload = make_workload(args.workload, args.dataset_pages,
                             seed=args.seed, zipf_s=args.zipf)
    arrivals = None
    if args.interarrival_us is not None:
        # --interarrival-us is the *aggregate* (machine-wide) mean gap;
        # the runner spawns one arrival stream per core, so each
        # stream's mean is cores times larger (the per-core convention
        # documented in repro.workloads.arrival).  Before this
        # conversion the CLI silently offered `cores`x the requested
        # load while fig10/table2 used the per-core convention.
        arrivals = PoissonArrivals(args.interarrival_us * US * args.cores,
                                   seed=args.seed + 1)
    from repro.sim import vector

    fallbacks_before = vector.stats().get("scalar_fallbacks", 0)
    reasons_before = vector.fallback_reasons()
    runner = Runner(config, workload, arrivals=arrivals,
                    backend=args.backend)
    result = runner.run()
    print(result.describe())
    fallbacks = (vector.stats().get("scalar_fallbacks", 0)
                 - fallbacks_before)
    reasons = {
        reason: count - reasons_before.get(reason, 0)
        for reason, count in vector.fallback_reasons().items()
        if count > reasons_before.get(reason, 0)
    }
    _warn_vector_fallback(args.backend, fallbacks, reasons)
    try:
        from repro.metrics import machine_metrics
        resolved = vector.resolve_backend(args.backend)
        metrics = result.metrics(backend=resolved)
        metrics.merge(machine_metrics(
            runner.machine, preset=args.config,
            workload=args.workload, backend=resolved))
        _append_ledger(
            "simulate", preset=args.config, workload=args.workload,
            backend=resolved, seed=args.seed,
            metrics=metrics.as_dict(),
            fingerprint=runner.machine.state_fingerprint(),
            wall_seconds=result.wall_seconds,
            events_per_second=result.events_per_second,
        )
    except Exception as exc:  # noqa: BLE001 - observability only
        print(f"ledger: append failed ({exc})", file=sys.stderr)
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    from repro.metrics import filter_records, ledger_path, read_ledger

    path = ledger_path(args.ledger)
    records = filter_records(
        read_ledger(path), verb=args.verb, experiment=args.experiment,
        preset=args.preset, workload=args.workload,
        backend=args.backend, last=args.last,
    )
    if args.json_out:
        print(json_dumps([record.to_dict() for record in records]))
        return 0
    if not records:
        print(f"ledger: no matching records in {path}")
        return 0
    print(f"ledger: {path} ({len(records)} matching records)")
    header = (f"  {'id':>12}  {'timestamp':>20}  {'verb':<12}  "
              f"{'experiment':<12}  {'preset':<16}  {'workload':<10}  "
              f"{'events/s':>12}")
    print(header)
    for record in records:
        events = (f"{record.events_per_second:,.0f}"
                  if record.events_per_second else "-")
        print(f"  {record.record_id:>12}  {record.timestamp:>20}  "
              f"{record.verb:<12}  {record.experiment[:12]:<12}  "
              f"{record.preset[:16]:<16}  {record.workload:<10}  "
              f"{events:>12}")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.metrics import (
        DEFAULT_THRESHOLD,
        diff_records,
        ledger_path,
        read_ledger,
        select_record,
    )

    from repro.errors import ReproError

    ledger = read_ledger(ledger_path(args.ledger))
    try:
        baseline = select_record(ledger, args.baseline)
        current = select_record(ledger, args.current)
    except ReproError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    report = diff_records(baseline, current, threshold=threshold)
    if args.json_out:
        print(json_dumps(report.to_json_dict()))
    else:
        print(report.format_text(show_all=args.show_all))
    return 1 if report.regressions else 0


def cmd_regress(args: argparse.Namespace) -> int:
    from repro.metrics import DEFAULT_THRESHOLD, ledger_path, run_regress

    from repro.errors import ReproError

    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    try:
        report = run_regress(
            args.baseline, current_path=args.current,
            ledger=ledger_path(args.ledger), threshold=threshold,
        )
    except ReproError as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2
    print(report.format_text())
    if args.json_out is not None:
        with open(args.json_out, "w") as handle:
            handle.write(json_dumps(report.to_json_dict()) + "\n")
        print(f"wrote {args.json_out}")
    return 0 if report.passed else 1


def cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.metrics import render_dashboard

    out = render_dashboard(args.out, ledger=args.ledger,
                           bench_paths=args.bench)
    print(f"wrote {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        return cmd_experiments()
    if args.command == "workloads":
        return cmd_workloads()
    if args.command == "configs":
        return cmd_configs()
    _apply_snapshot_flags(args)
    if args.command == "run":
        return cmd_run(args.experiment, args.scale, args.jobs)
    if args.command == "run-all":
        return cmd_run_all(args.scale, args.jobs)
    if args.command == "report":
        return cmd_report(args.scale, args.out, args.jobs, args.telemetry,
                          args.writes)
    if args.command == "bench-sweep":
        return cmd_bench_sweep(args.experiment, args.scale, args.json_out)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "writes":
        return cmd_writes(args)
    if args.command == "loadgen":
        return cmd_loadgen(args)
    if args.command == "cache":
        return cmd_cache_clean(args.max_bytes, args.cache_dir)
    if args.command == "trace-run":
        return cmd_trace_run(args)
    if args.command == "profile":
        return cmd_profile(args.experiment, args.scale, args.top,
                           args.json_out, args.backend)
    if args.command == "bench-kernel":
        return cmd_bench_kernel(args)
    if args.command == "simulate":
        return cmd_simulate(args)
    if args.command == "history":
        return cmd_history(args)
    if args.command == "diff":
        return cmd_diff(args)
    if args.command == "regress":
        return cmd_regress(args)
    if args.command == "dashboard":
        return cmd_dashboard(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
