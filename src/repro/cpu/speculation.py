"""Switch-on-miss speculation sandbox (Sec. IV-C4, Fig. 7).

A DRAM-cache miss can hit a *committed* store that already left the ROB
and sits in the Store Buffer.  Existing speculation mechanisms cannot
rewind past retirement, so AstriFlash extends ASO-style post-retirement
speculation: the rename-map snapshot of every store is retained until
the store leaves the SB, and physical registers displaced by younger
retired instructions are not freed until the covering store completes.

:class:`SpeculativeCore` is a functional model of exactly that
machinery.  It executes an abstract instruction stream (ALU / load /
store micro-ops with destination registers and memory pages) through
rename -> ROB -> retire -> SB, and supports:

* ``abort_load(seq)``   — a DRAM-cache miss on a load still in the ROB:
  squash it and everything younger by unwinding renames.
* ``abort_store(seq)``  — a miss on a committed store in the SB: squash
  the whole ROB, abort the store and all younger SB stores, restore the
  store's map snapshot and reclaim every speculative register.

The model maintains hard invariants (no double frees, mapped registers
always allocated) that the test suite checks exhaustively, including
with property-based random streams.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config.system import CoreConfig
from repro.cpu.registers import MapTable, PhysicalRegisterFile
from repro.cpu.rob import (
    InstructionKind,
    ReorderBuffer,
    RobEntry,
    StoreBuffer,
    StoreBufferEntry,
)
from repro.errors import ProtocolError
from repro.stats import CounterSet


class _Window:
    """Registers associated with one store's speculative window."""

    __slots__ = ("allocated", "displaced")

    def __init__(self) -> None:
        # New physical registers of *retired* instructions in this
        # window (reverted and freed if the window aborts).
        self.allocated: List[int] = []
        # Old physical registers displaced by retired instructions;
        # freed only when the covering store completes.
        self.displaced: List[int] = []


class SpeculativeCore:
    """Functional rename/ROB/SB pipeline with post-retirement aborts."""

    def __init__(self, config: Optional[CoreConfig] = None) -> None:
        self.config = config or CoreConfig()
        total_registers = (
            self.config.base_physical_registers
            + self.config.store_buffer_entries
            * self.config.registers_per_speculative_store
        )
        self.prf = PhysicalRegisterFile(total_registers)
        self.map_table = MapTable(self.config.architectural_registers, self.prf)
        self.rob = ReorderBuffer(self.config.rob_entries)
        self.store_buffer = StoreBuffer(self.config.store_buffer_entries)
        self._windows: Dict[int, _Window] = {}  # store seq -> window
        # Map snapshots for stores still in the ROB (promoted to the
        # SB entry at retire time).
        self._snapshots: Dict[int, List[int]] = {}
        self._next_seq = 0
        self.stats = CounterSet("speculative-core")

    # -- front end --------------------------------------------------------------

    def fetch(self, kind: str, dest_arch_reg: Optional[int] = None,
              page: Optional[int] = None) -> RobEntry:
        """Rename and allocate one micro-op into the ROB.

        Stores carry no destination register (ARM-style) and take a
        map-table snapshot for the post-retirement abort path.
        """
        if kind == InstructionKind.STORE:
            if dest_arch_reg is not None:
                raise ProtocolError("stores do not write registers")
            if page is None:
                raise ProtocolError("stores need a memory page")
        if kind == InstructionKind.LOAD and page is None:
            raise ProtocolError("loads need a memory page")

        seq = self._next_seq
        self._next_seq += 1
        new_preg = old_preg = None
        if dest_arch_reg is not None:
            new_preg, old_preg = self.map_table.rename(dest_arch_reg)
        entry = RobEntry(seq, kind, dest_arch_reg, new_preg, old_preg, page)
        if kind == InstructionKind.STORE:
            # Snapshot taken after all older renames: restoring it
            # rewinds the core to just before this store.
            self._windows[seq] = _Window()
            self._snapshots[seq] = self.map_table.snapshot()
        self.rob.allocate(entry)
        self.stats.add("fetched")
        return entry

    def complete(self, seq: int) -> None:
        """Mark a micro-op's execution as finished."""
        for entry in self.rob.entries():
            if entry.seq == seq:
                entry.completed = True
                return
        raise ProtocolError(f"complete of unknown instruction {seq}")

    # -- retirement --------------------------------------------------------------

    def retire(self) -> RobEntry:
        """Retire the ROB head.

        Non-store instructions free (or defer) their displaced
        register; stores move into the Store Buffer with their snapshot.
        """
        entry = self.rob.retire_head()
        if entry.kind == InstructionKind.STORE:
            snapshot = self._snapshots.pop(entry.seq)
            self.store_buffer.push(
                StoreBufferEntry(entry.seq, entry.page, snapshot, [])
            )
            self.stats.add("stores_retired")
            return entry

        youngest_store = self._youngest_sb_seq()
        if entry.dest_arch_reg is not None:
            if youngest_store is None:
                # Nothing speculative in flight: conventional free.
                if entry.old_preg is not None:
                    self.prf.free(entry.old_preg)
            else:
                window = self._windows[youngest_store]
                window.allocated.append(entry.new_preg)
                if entry.old_preg is not None:
                    window.displaced.append(entry.old_preg)
        self.stats.add("retired")
        return entry

    def _youngest_sb_seq(self) -> Optional[int]:
        entries = self.store_buffer.entries()
        return entries[-1].seq if entries else None

    # -- store completion -----------------------------------------------------------

    def complete_store(self) -> StoreBufferEntry:
        """The oldest SB store's write reached the memory system.

        Its speculative window is no longer abortable: displaced
        registers become dead and are freed.
        """
        entry = self.store_buffer.complete_head()
        window = self._windows.pop(entry.seq)
        for reg in window.displaced:
            self.prf.free(reg)
        # Registers in window.allocated stay live (they are in the map
        # or will be displaced by younger windows).
        self.stats.add("stores_completed")
        return entry

    # -- abort paths ------------------------------------------------------------------

    def abort_load(self, seq: int) -> int:
        """DRAM-cache miss on a load still in the ROB.

        Squashes ``seq`` and everything younger by unwinding renames
        youngest-first.  Returns the resume PC (the load's seq).
        """
        squashed = self.rob.flush_from(seq)
        self._unwind_rob_entries(squashed)
        self.stats.add("load_aborts")
        return seq

    def abort_store(self, seq: int) -> int:
        """DRAM-cache miss on a committed store in the SB (the ASO
        extension).  Returns the resume PC (the store's seq)."""
        # 1. The entire ROB is younger than any SB store: squash it.
        squashed = self.rob.flush_all()
        self._unwind_rob_entries(squashed)
        # 2. Abort the store and all younger SB stores, youngest first.
        aborted = self.store_buffer.abort_from(seq)
        restore_snapshot: Optional[List[int]] = None
        for sb_entry in aborted:
            window = self._windows.pop(sb_entry.seq)
            for reg in window.allocated:
                self.prf.free(reg)
            # Displaced registers become live again after the snapshot
            # restore below: drop the deferred frees.
            restore_snapshot = sb_entry.map_snapshot
        if restore_snapshot is None:
            raise ProtocolError("abort_store found nothing to abort")
        self.map_table.restore(restore_snapshot)
        self.stats.add("store_aborts")
        return seq

    def _unwind_rob_entries(self, squashed_youngest_first: List[RobEntry]) -> None:
        for entry in squashed_youngest_first:
            if entry.kind == InstructionKind.STORE:
                self._snapshots.pop(entry.seq, None)
                self._windows.pop(entry.seq, None)
            if entry.new_preg is not None:
                # Undo the rename: the old mapping becomes current again.
                self.map_table.undo_rename(entry.dest_arch_reg, entry.old_preg)
                self.prf.free(entry.new_preg)

    # -- invariants ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if the rename state is inconsistent (test hook)."""
        mapped = set(self.map_table.snapshot())
        if len(mapped) != self.map_table.num_arch_registers:
            raise ProtocolError("two architectural registers share a physical one")
        for reg in mapped:
            if not self.prf.is_allocated(reg):
                raise ProtocolError(f"mapped register {reg} is on the free list")
        for window in self._windows.values():
            for reg in window.allocated + window.displaced:
                if not self.prf.is_allocated(reg):
                    raise ProtocolError(
                        f"window register {reg} is on the free list"
                    )

    def quiesced_register_count(self) -> int:
        """Expected PRF occupancy when nothing is in flight."""
        return self.map_table.num_arch_registers
