"""Red-black tree workload (microbenchmark suite, Sec. V-A).

A complete red-black tree (insert, search, delete, with the classic
CLRS rebalancing) whose nodes live on pages from a spread heap, so a
lookup's root-to-leaf pointer chase produces the page trace the paper's
RBT microbenchmark stresses: little spatial locality, long dependent
chains.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import Job, Step, Workload
from repro.workloads.pagedheap import SpreadHeap
from repro.workloads.zipf import ZipfianGenerator

RED = "red"
BLACK = "black"


class _Node:
    __slots__ = ("key", "page", "color", "left", "right", "parent")

    def __init__(self, key: int, page: int) -> None:
        self.key = key
        self.page = page
        self.color = RED
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None


class RedBlackTree:
    """Classic red-black tree with page-path search."""

    def __init__(self, node_heap: SpreadHeap) -> None:
        self._heap = node_heap
        self.root: Optional[_Node] = None
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    # -- search -----------------------------------------------------------------

    def search(self, key: int) -> Tuple[Optional[int], List[int]]:
        """(node page or None, page path root->node)."""
        pages: List[int] = []
        node = self.root
        while node is not None:
            pages.append(node.page)
            if key == node.key:
                return node.page, pages
            node = node.left if key < node.key else node.right
        return None, pages

    def _find_node(self, key: int) -> Optional[_Node]:
        node = self.root
        while node is not None and node.key != key:
            node = node.left if key < node.key else node.right
        return node

    # -- rotations -----------------------------------------------------------------

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # -- insert ------------------------------------------------------------------

    def insert(self, key: int) -> bool:
        """Insert ``key``; False if it already existed."""
        parent = None
        node = self.root
        while node is not None:
            parent = node
            if key == node.key:
                return False
            node = node.left if key < node.key else node.right
        fresh = _Node(key, self._heap.allocate().page)
        fresh.parent = parent
        if parent is None:
            self.root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        return True

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent is not None and z.parent.color == RED:
            grandparent = z.parent.parent
            if grandparent is None:
                break
            if z.parent is grandparent.left:
                uncle = grandparent.right
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    z = grandparent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grandparent.left
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    z = grandparent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self.root.color = BLACK

    # -- delete ------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove ``key``; False if absent.  CLRS delete with fixup."""
        z = self._find_node(key)
        if z is None:
            return False
        self._size -= 1

        def transplant(u: _Node, v: Optional[_Node]) -> None:
            if u.parent is None:
                self.root = v
            elif u is u.parent.left:
                u.parent.left = v
            else:
                u.parent.right = v
            if v is not None:
                v.parent = u.parent

        y = z
        y_original_color = y.color
        fix_node: Optional[_Node] = None
        fix_parent: Optional[_Node] = None
        if z.left is None:
            fix_node = z.right
            fix_parent = z.parent
            transplant(z, z.right)
        elif z.right is None:
            fix_node = z.left
            fix_parent = z.parent
            transplant(z, z.left)
        else:
            y = z.right
            while y.left is not None:
                y = y.left
            y_original_color = y.color
            fix_node = y.right
            if y.parent is z:
                fix_parent = y
            else:
                fix_parent = y.parent
                transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_original_color == BLACK:
            self._delete_fixup(fix_node, fix_parent)
        return True

    def _delete_fixup(self, x: Optional[_Node],
                      parent: Optional[_Node]) -> None:
        while x is not self.root and (x is None or x.color == BLACK):
            if parent is None:
                break
            if x is parent.left:
                w = parent.right
                if w is not None and w.color == RED:
                    w.color = BLACK
                    parent.color = RED
                    self._rotate_left(parent)
                    w = parent.right
                if w is None:
                    x, parent = parent, parent.parent
                    continue
                w_left_black = w.left is None or w.left.color == BLACK
                w_right_black = w.right is None or w.right.color == BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x, parent = parent, parent.parent
                else:
                    if w_right_black:
                        if w.left is not None:
                            w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = parent.right
                    w.color = parent.color
                    parent.color = BLACK
                    if w.right is not None:
                        w.right.color = BLACK
                    self._rotate_left(parent)
                    x = self.root
                    parent = None
            else:
                w = parent.left
                if w is not None and w.color == RED:
                    w.color = BLACK
                    parent.color = RED
                    self._rotate_right(parent)
                    w = parent.left
                if w is None:
                    x, parent = parent, parent.parent
                    continue
                w_left_black = w.left is None or w.left.color == BLACK
                w_right_black = w.right is None or w.right.color == BLACK
                if w_left_black and w_right_black:
                    w.color = RED
                    x, parent = parent, parent.parent
                else:
                    if w_left_black:
                        if w.right is not None:
                            w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = parent.left
                    w.color = parent.color
                    parent.color = BLACK
                    if w.left is not None:
                        w.left.color = BLACK
                    self._rotate_right(parent)
                    x = self.root
                    parent = None
        if x is not None:
            x.color = BLACK

    # -- validation ------------------------------------------------------------------

    def check_invariants(self) -> int:
        """Validate BST order, red-red, and black-height; returns the
        black height.  Raises AssertionError on violation."""
        if self.root is not None:
            assert self.root.color == BLACK, "root must be black"

        def walk(node: Optional[_Node], low, high) -> int:
            if node is None:
                return 1
            assert low is None or node.key > low, "BST order violated"
            assert high is None or node.key < high, "BST order violated"
            if node.color == RED:
                for child in (node.left, node.right):
                    assert child is None or child.color == BLACK, \
                        "red node with red child"
            left_height = walk(node.left, low, node.key)
            right_height = walk(node.right, node.key, high)
            assert left_height == right_height, "black-height mismatch"
            return left_height + (1 if node.color == BLACK else 0)

        return walk(self.root, None, None)

    def depth_of(self, key: int) -> int:
        _, pages = self.search(key)
        return len(pages)


class RbtWorkload(Workload):
    """Zipfian lookups/updates with pointer chasing (the paper's RBT)."""

    name = "rbtree"
    rob_occupancy = 40.0  # dependent chains keep the window small

    def __init__(self, dataset_pages: int, seed: int = 42,
                 num_keys: Optional[int] = None, zipf_s: float = 1.55,
                 ops_per_job: int = 4, compute_ns: float = 120.0,
                 write_fraction: float = 0.05) -> None:
        super().__init__(dataset_pages, seed)
        if num_keys is None:
            num_keys = min(1 << 15, max(1024, dataset_pages))
        self.num_keys = num_keys
        self.ops_per_job = ops_per_job
        self.compute_ns = compute_ns
        self.write_fraction = write_fraction

        self.tree = RedBlackTree(SpreadHeap(0, dataset_pages, num_keys))
        build_rng = random.Random(seed)
        keys = list(range(num_keys))
        build_rng.shuffle(keys)  # randomized insert order balances pages
        for key in keys:
            self.tree.insert(key)
        self._zipf = ZipfianGenerator(num_keys, zipf_s, seed=seed + 1,
                                         permute=False)

    def _steps_for_job(self, job_id: int) -> Iterator[Step]:
        for _ in range(self.ops_per_job):
            key = self._zipf.sample()
            node_page, path = self.tree.search(key)
            if node_page is None:
                raise WorkloadError(f"key {key} missing from tree")
            is_write = self._rng.random() < self.write_fraction
            for page in path[:-1]:
                yield Step(self._compute(self.compute_ns), page)
            yield Step(self._compute(self.compute_ns), path[-1],
                       is_write=is_write)
