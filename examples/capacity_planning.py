#!/usr/bin/env python
"""Capacity planning: how much DRAM does a flash-backed service need?

Walks the Sec. II-A methodology end to end for a hypothetical service:

1. sweep the DRAM-to-flash ratio and measure the miss ratio of the
   DRAM tier on a real workload trace (LRU at page granularity);
2. apply Equation 1 to translate miss ratios into flash bandwidth and
   check the result against a PCIe Gen5 budget;
3. apply the cost model to report the memory-cost reduction vs an
   all-DRAM deployment (the paper's 20x claim at 3%).

Usage:  python examples/capacity_planning.py
"""

from repro.analytic import (
    PCIE_GEN5_BANDWIDTH_GBPS,
    cost_reduction_factor,
    flash_bandwidth_total_gbps,
)
from repro.harness.fig1 import lru_miss_ratio, workload_trace
from repro.harness.common import QUICK

NUM_CORES = 64
FRACTIONS = (0.01, 0.02, 0.03, 0.05, 0.10)
WORKLOAD = "silo"


def main() -> None:
    print(f"Tracing the '{WORKLOAD}' workload "
          f"({QUICK.dataset_pages} dataset pages)...")
    trace = workload_trace(WORKLOAD, QUICK, num_steps=80_000, seed=7)

    print(f"\n{'DRAM %':>7} {'miss':>7} {'flash BW (GB/s)':>16} "
          f"{'fits PCIe5':>11} {'memory-cost cut':>16}")
    chosen = None
    for fraction in FRACTIONS:
        capacity = max(1, int(QUICK.dataset_pages * fraction))
        miss = lru_miss_ratio(trace, capacity)
        bandwidth = flash_bandwidth_total_gbps(miss, NUM_CORES)
        fits = bandwidth <= PCIE_GEN5_BANDWIDTH_GBPS
        reduction = cost_reduction_factor(dram_fraction=fraction)
        print(f"{fraction:7.0%} {miss:7.2%} {bandwidth:16.1f} "
              f"{'yes' if fits else 'NO':>11} {reduction:15.1f}x")
        if chosen is None and fits:
            chosen = (fraction, miss, bandwidth, reduction)

    if chosen:
        fraction, miss, bandwidth, reduction = chosen
        print(f"\nRecommendation: provision DRAM at {fraction:.0%} of the "
              f"dataset.")
        print(f"  steady-state miss ratio  {miss:.2%}")
        print(f"  flash bandwidth needed   {bandwidth:.1f} GB/s "
              f"for {NUM_CORES} cores (PCIe Gen5 budget: "
              f"{PCIE_GEN5_BANDWIDTH_GBPS:.0f} GB/s)")
        print(f"  memory cost reduction    {reduction:.1f}x vs all-DRAM")


if __name__ == "__main__":
    main()
